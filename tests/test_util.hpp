#pragma once
/// \file test_util.hpp
/// \brief Minimal assert-style harness: CHECK records failures and the
///        test main returns nonzero if any fired. No framework
///        dependency, so tier-1 needs nothing beyond the toolchain.

#include <cstdio>

#include "sparse/csr.hpp"

namespace i2a::test {
inline int failures = 0;

/// Bitwise CSR equality — the byte-identical bar every determinism and
/// differential suite holds the engines to (shape, row pointer, columns,
/// and values, compared exactly; no tolerance anywhere).
template <typename T>
bool csr_bitwise_equal(const sparse::Csr<T>& a, const sparse::Csr<T>& b) {
  return a.nrows() == b.nrows() && a.ncols() == b.ncols() &&
         a.row_ptr() == b.row_ptr() && a.cols() == b.cols() &&
         a.vals() == b.vals();
}

}  // namespace i2a::test

#define CHECK(cond)                                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::printf("CHECK failed at %s:%d: %s\n", __FILE__, __LINE__,      \
                  #cond);                                                 \
      ++i2a::test::failures;                                              \
    }                                                                     \
  } while (0)

#define CHECK_EQ(a, b)                                                    \
  do {                                                                    \
    if (!((a) == (b))) {                                                  \
      std::printf("CHECK_EQ failed at %s:%d: %s == %s\n", __FILE__,       \
                  __LINE__, #a, #b);                                      \
      ++i2a::test::failures;                                              \
    }                                                                     \
  } while (0)

#define TEST_MAIN_RESULT()                                                \
  (i2a::test::failures == 0                                               \
       ? (std::printf("OK\n"), 0)                                         \
       : (std::printf("%d check(s) FAILED\n", i2a::test::failures), 1))
