/// \file test_contracts.cpp
/// \brief The correctness-tooling layer itself, tested: the contract
///        macros fire (and stay quiet) as specified, the kernel-boundary
///        checks catch a hand-corrupted CSR at the boundary where it
///        enters, and the concept hierarchy classifies every shipped
///        pair the way DESIGN.md §8 says it does.
///
/// This TU forces contracts on and switches violations from abort to
/// throw *before any i2a include* — the per-TU escape hatch contract.hpp
/// documents — so a fired check is an observable exception instead of a
/// dead process.

#ifndef I2A_CHECK_INVARIANTS
#define I2A_CHECK_INVARIANTS 1
#endif
#ifndef I2A_CONTRACT_VIOLATION_THROWS
#define I2A_CONTRACT_VIOLATION_THROWS 1
#endif

#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "algebra/any_pair.hpp"
#include "algebra/concepts.hpp"
#include "algebra/non_examples.hpp"
#include "algebra/pairs.hpp"
#include "graph/graph.hpp"
#include "sparse/csr.hpp"
#include "sparse/merge.hpp"
#include "sparse/spgemm.hpp"
#include "stream/adjacency_builder.hpp"
#include "util/contract.hpp"
#include "test_util.hpp"

using namespace i2a;

static_assert(I2A_CONTRACTS_ENABLED,
              "this TU defines I2A_CHECK_INVARIANTS before including i2a");

// ---------------------------------------------------------------------------
// Concept hierarchy, pinned at compile time.

// Every paper pair satisfies the full semiring contract (undeclared laws
// default to true — the Table I convention).
static_assert(algebra::Semiring<algebra::PlusTimes<double>>);
static_assert(algebra::Semiring<algebra::MaxTimes<double>>);
static_assert(algebra::Semiring<algebra::MinTimes<double>>);
static_assert(algebra::Semiring<algebra::MaxPlus<double>>);
static_assert(algebra::Semiring<algebra::MinPlus<double>>);
static_assert(algebra::Semiring<algebra::MaxMin<double>>);
static_assert(algebra::Semiring<algebra::MinMax<double>>);
static_assert(algebra::Semiring<algebra::OrAndU8>);
static_assert(algebra::ConformingPair<algebra::PlusTimes<double>>);
static_assert(algebra::ConformingPair<algebra::MinPlus<double>>);
// Type erasure cannot carry compile-time law declarations; AnyPairD must
// pass so the sweep's uniform driver keeps compiling.
static_assert(algebra::Semiring<algebra::AnyPairD>);

// The Section III non-examples land exactly where their declared broken
// law puts them.
static_assert(algebra::Semiring<algebra::SignedPlusTimes<double>> &&
              !algebra::ConformingPair<algebra::SignedPlusTimes<double>>);
static_assert(algebra::Semiring<algebra::GaloisF2> &&
              !algebra::ConformingPair<algebra::GaloisF2>);
static_assert(algebra::Semiring<algebra::BitsetUnionIntersect> &&
              !algebra::ConformingPair<algebra::BitsetUnionIntersect>);
// max.+ on [0,∞): 0 is not an annihilator, so it is not even a Semiring
// — the kernels reject it at the signature (tests/compile_fail pins the
// rejection itself).
static_assert(algebra::CommutativeMonoidAdd<algebra::MaxPlusNonNeg<double>> &&
              !algebra::Semiring<algebra::MaxPlusNonNeg<double>>);

// Structural failures: missing members or wrong signatures never reach
// the law layer.
namespace {
struct MissingMul {
  using value_type = double;
  static constexpr std::string_view name() { return "no ⊗"; }
  double zero() const { return 0.0; }
  double one() const { return 1.0; }
  double add(double a, double b) const { return a + b; }
};
struct WrongAddType {
  using value_type = double;
  static constexpr std::string_view name() { return "⊕ → void"; }
  double zero() const { return 0.0; }
  double one() const { return 1.0; }
  void add(double, double) const {}
  double mul(double a, double b) const { return a * b; }
};
/// PlusTimes with the ⊕-inverse hook — what a deletion-capable pair will
/// look like per the ROADMAP tombstone item.
struct PlusTimesSub {
  using value_type = double;
  static constexpr std::string_view name() { return "+.* (invertible)"; }
  double zero() const { return 0.0; }
  double one() const { return 1.0; }
  double add(double a, double b) const { return a + b; }
  double sub(double a, double b) const { return a - b; }
  double mul(double a, double b) const { return a * b; }
};
}  // namespace
static_assert(!algebra::AlgebraPair<MissingMul>);
static_assert(!algebra::AlgebraPair<WrongAddType>);
static_assert(!algebra::AlgebraPair<int>);

// InvertibleAdd is the deletion gate: on for the toy `sub` pair, off for
// every shipped pair (none has inverses exposed — min/max never will).
static_assert(algebra::InvertibleAdd<PlusTimesSub>);
static_assert(!algebra::InvertibleAdd<algebra::PlusTimes<double>>);
static_assert(!algebra::InvertibleAdd<algebra::MinPlus<double>>);

// ---------------------------------------------------------------------------
// Runtime contract mechanics.

namespace {

void test_macro_mechanics() {
  // A failed check throws ContractViolation carrying kind, location and
  // message; a passing check is silent and evaluates its condition once.
  bool threw = false;
  try {
    I2A_ASSERT(1 + 1 == 3, "arithmetic is broken");
  } catch (const util::ContractViolation& e) {
    threw = true;
    const std::string what = e.what();
    CHECK(what.find("invariant") != std::string::npos);
    CHECK(what.find("arithmetic is broken") != std::string::npos);
    CHECK(what.find("test_contracts.cpp") != std::string::npos);
  }
  CHECK(threw);
  threw = false;
  try {
    I2A_EXPECTS(false, "pre");
  } catch (const util::ContractViolation& e) {
    threw = true;
    CHECK(std::string(e.what()).find("precondition") != std::string::npos);
  }
  CHECK(threw);
  threw = false;
  try {
    I2A_ENSURES(false, "post");
  } catch (const util::ContractViolation& e) {
    threw = true;
    CHECK(std::string(e.what()).find("postcondition") != std::string::npos);
  }
  CHECK(threw);

  int evaluations = 0;
  I2A_ASSERT([&] { return ++evaluations; }(), "evaluated once");
  CHECK_EQ(evaluations, 1);
  // ContractViolation is a library-bug signal, distinct from the
  // argument-validation exceptions kernels throw unconditionally.
  static_assert(std::is_base_of_v<std::logic_error, util::ContractViolation>);
  static_assert(
      !std::is_base_of_v<std::invalid_argument, util::ContractViolation>);
}

/// A structurally corrupt CSR: row 0's columns are out of order. The raw
/// constructor accepts it (it only sizes-checks); the kernel boundaries
/// must not.
sparse::Csr<double> unsorted_csr() {
  return sparse::Csr<double>(2, 3, {0, 2, 3}, {1, 0, 2}, {1.0, 2.0, 3.0});
}

template <typename Fn>
bool violates(Fn&& fn) {
  try {
    fn();
  } catch (const util::ContractViolation&) {
    return true;
  }
  return false;
}

void test_kernel_boundaries_reject_corruption() {
  const algebra::PlusTimes<double> p;
  const auto bad = unsorted_csr();
  CHECK(!bad.is_canonical());
  const auto good = sparse::Csr<double>(3, 2, {0, 1, 2, 2}, {0, 1},
                                        {1.0, 1.0, });
  CHECK(good.is_canonical());

  // Each entry point that assumes canonical input fires its I2A_EXPECTS
  // at the boundary — not an out-of-bounds read three kernels later.
  CHECK(violates([&] { (void)sparse::spgemm(p, bad, good); }));
  // good (3×2) · bad (2×3): dims agree, so the check reaches operand B.
  CHECK(violates([&] { (void)sparse::spgemm(p, good, bad); }));
  CHECK(violates([&] { (void)sparse::spgemm_at_b(p, bad, bad); }));
  CHECK(violates([&] { (void)sparse::transpose(bad); }));
  CHECK(violates([&] {
    const auto a = unsorted_csr();
    const auto b = unsorted_csr();
    (void)sparse::merge(p, a, b);
  }));
  // Dimension agreement is a precondition too.
  CHECK(violates([&] { (void)sparse::spgemm(p, good, good); }));
}

void test_clean_paths_stay_quiet() {
  // With every check active, the ordinary pipeline must run silently:
  // the postconditions are supposed to hold.
  const algebra::PlusTimes<double> p;
  graph::Graph g(4);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  g.add_edge(0, 1, 5.0);  // parallel edge
  g.add_edge(3, 3, 1.0);  // self-loop
  const auto a = graph::build_adjacency(g, p);
  CHECK(a.is_canonical());
  CHECK_EQ(a.nnz(), 3);
  const auto at = sparse::transpose(a);
  CHECK(at.is_canonical());
  const auto sq = sparse::spgemm(p, a, a);
  CHECK(sq.is_canonical());
  const auto m = sparse::merge(p, a, a);
  CHECK_EQ(m.at(0, 1, 0.0), 2.0 * a.at(0, 1, 0.0));

  stream::AdjacencyBuilder<algebra::PlusTimes<double>> builder(4, p);
  builder.ingest(std::vector<graph::Edge>{{0, 1, 1.0}});
  builder.ingest(std::vector<graph::Edge>{{0, 1, 1.0}});  // forces a carry
  builder.ingest(std::vector<graph::Edge>{{2, 3, 1.0}});
  CHECK_EQ(builder.adjacency().nnz(), 2);
}

}  // namespace

int main() {
  test_macro_mechanics();
  test_kernel_boundaries_reject_corruption();
  test_clean_paths_stay_quiet();
  return TEST_MAIN_RESULT();
}
