/// \file test_construction_differential.cpp
/// \brief The sort-free assembly engine must be indistinguishable from
///        the stable-sort reference: `Csr::from_coo` vs
///        `Csr::from_coo_reference` across every `DupPolicy`, on inputs
///        with heavy duplicates, shuffled order, empty rows, and empty
///        matrices — serial and under pools {1, 4}, compared bitwise
///        (both fold a (row, col) group's duplicates in push order, so
///        even FP kSum must agree bit for bit). The direct incidence
///        assembly is likewise pinned to the old COO + reference path.

#include <cstdint>
#include <utility>
#include <vector>

#include "algebra/pairs.hpp"
#include "graph/generators.hpp"
#include "graph/incidence.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include "test_util.hpp"

using namespace i2a;

namespace {

/// Byte-identical: full-precision == on every component vector.
bool identical(const sparse::Csr<double>& a, const sparse::Csr<double>& b) {
  return i2a::test::csr_bitwise_equal(a, b);
}

constexpr sparse::DupPolicy kPolicies[] = {
    sparse::DupPolicy::kSum, sparse::DupPolicy::kKeepFirst,
    sparse::DupPolicy::kKeepLast, sparse::DupPolicy::kMax,
    sparse::DupPolicy::kMin};

/// Check new engine == reference for one COO recipe, across every policy
/// and pool size (reference is serial-only by design). `make` builds a
/// fresh buffer per call because assembly consumes it.
template <typename MakeCoo>
void check_against_reference(const MakeCoo& make) {
  util::ThreadPool pool1(1), pool4(4);
  for (const auto policy : kPolicies) {
    const auto ref = sparse::Csr<double>::from_coo_reference(make(), policy);
    CHECK(identical(sparse::Csr<double>::from_coo(make(), policy), ref));
    CHECK(identical(sparse::Csr<double>::from_coo(make(), policy, &pool1),
                    ref));
    CHECK(identical(sparse::Csr<double>::from_coo(make(), policy, &pool4),
                    ref));
    CHECK(ref.is_canonical());
  }
}

void test_heavy_duplicates() {
  // 12x9 grid, 900 entries: every cell collides many times over, random
  // full-precision reals so fold-order slips would flip bits.
  check_against_reference([] {
    util::Xoshiro256 rng(101);
    sparse::Coo<double> coo(12, 9);
    coo.reserve(900);
    for (int k = 0; k < 900; ++k) {
      coo.push(rng.between(0, 11), rng.between(0, 8), rng.uniform(-5.0, 5.0));
    }
    return coo;
  });
}

void test_shuffled_order() {
  // Entries generated row-major then Fisher–Yates shuffled: exercises
  // the scatter on maximally out-of-order input, duplicates included.
  check_against_reference([] {
    util::Xoshiro256 rng(202);
    sparse::Coo<double> coo(40, 33);
    coo.reserve(700);
    for (int k = 0; k < 700; ++k) {
      coo.push(rng.between(0, 39), rng.between(0, 32), rng.uniform(0.1, 9.9));
    }
    auto& e = coo.entries();
    util::Xoshiro256 shuf(203);
    for (std::size_t i = e.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(shuf.between(0, static_cast<index_t>(i) - 1));
      std::swap(e[i - 1], e[j]);
    }
    return coo;
  });
}

void test_empty_rows_and_tail() {
  // Tall matrix, entries confined to a few interior rows: leading,
  // interior, and trailing empty rows all get correct (equal) pointers.
  check_against_reference([] {
    util::Xoshiro256 rng(303);
    sparse::Coo<double> coo(64, 8);
    coo.reserve(120);
    const index_t rows[] = {5, 6, 31, 62};
    for (int k = 0; k < 120; ++k) {
      coo.push(rows[rng.between(0, 3)], rng.between(0, 7),
               rng.uniform(0.5, 2.5));
    }
    return coo;
  });
}

void test_empty_and_tiny_matrices() {
  check_against_reference([] { return sparse::Coo<double>(0, 0); });
  check_against_reference([] { return sparse::Coo<double>(17, 23); });
  check_against_reference([] {
    sparse::Coo<double> coo(1, 1);
    coo.push(0, 0, 4.5);
    return coo;
  });
  // One row, all entries duplicated onto two columns in push order the
  // policies must respect.
  check_against_reference([] {
    sparse::Coo<double> coo(1, 4);
    const double vals[] = {3.0, -1.0, 2.0, 7.0, -4.0, 0.5};
    for (int k = 0; k < 6; ++k) coo.push(0, k % 2, vals[k]);
    return coo;
  });
}

void test_already_sorted_fast_path() {
  // Strictly increasing, duplicate-free input takes the zero-copy exit;
  // it must still equal the reference exactly.
  check_against_reference([] {
    sparse::Coo<double> coo(10, 10);
    for (index_t r = 0; r < 10; ++r) {
      for (index_t c = r % 3; c < 10; c += 3) {
        coo.push(r, c, static_cast<double>(r * 10 + c) + 0.25);
      }
    }
    return coo;
  });
}

/// The old incidence assembly, reconstructed as an oracle: stage through
/// COO, assemble with the reference engine.
template <typename Draw>
graph::IncidencePair<double> incidence_via_reference(const graph::Graph& g,
                                                     const Draw& draw) {
  sparse::Coo<double> out(g.num_edges(), g.num_vertices());
  sparse::Coo<double> in(g.num_edges(), g.num_vertices());
  const auto& edges = g.edges();
  for (index_t e = 0; e < g.num_edges(); ++e) {
    out.push(e, edges[static_cast<std::size_t>(e)].src, draw(e, true));
    in.push(e, edges[static_cast<std::size_t>(e)].dst, draw(e, false));
  }
  return graph::IncidencePair<double>{
      sparse::Csr<double>::from_coo_reference(std::move(out),
                                              sparse::DupPolicy::kKeepFirst),
      sparse::Csr<double>::from_coo_reference(std::move(in),
                                              sparse::DupPolicy::kKeepFirst)};
}

void test_incidence_direct_vs_reference() {
  util::ThreadPool pool1(1), pool4(4);
  util::Xoshiro256 rng(404);
  const algebra::PlusTimes<double> p;
  for (int t = 0; t < 10; ++t) {
    // Multigraphs with parallel edges, self-loops, isolated vertices —
    // plus the empty graph and the edgeless graph.
    const auto g = t == 0 ? graph::Graph(0)
                   : t == 1
                       ? graph::Graph(5)
                       : graph::gen::random_multigraph(
                             rng.between(2, 12), rng.between(1, 40), rng.next());
    const auto unit = [](index_t, bool) { return 1.0; };
    const auto ref = incidence_via_reference(g, unit);
    for (util::ThreadPool* pool :
         {static_cast<util::ThreadPool*>(nullptr), &pool1, &pool4}) {
      const auto inc = graph::incidence_arrays(g, p, pool);
      CHECK(identical(inc.eout, ref.eout));
      CHECK(identical(inc.ein, ref.ein));
      CHECK(inc.eout.is_canonical() && inc.ein.is_canonical());
    }
  }
}

void test_weighted_incidence_direct_vs_reference() {
  util::ThreadPool pool4(4);
  util::Xoshiro256 rng(505);
  const algebra::MinPlus<double> p;
  for (int t = 0; t < 5; ++t) {
    auto g = graph::gen::random_multigraph(rng.between(2, 10),
                                           rng.between(1, 30), rng.next());
    graph::gen::randomize_weights(g, 0.25, 4.0, rng.next());
    const auto& edges = g.edges();
    const auto draw = [&](index_t e, bool is_out) {
      return is_out ? p.one() : edges[static_cast<std::size_t>(e)].weight;
    };
    const auto ref = incidence_via_reference(g, draw);
    const auto serial = graph::weighted_incidence_arrays(g, p);
    const auto pooled = graph::weighted_incidence_arrays(g, p, &pool4);
    CHECK(identical(serial.eout, ref.eout));
    CHECK(identical(serial.ein, ref.ein));
    CHECK(identical(pooled.eout, ref.eout));
    CHECK(identical(pooled.ein, ref.ein));
  }
}

void test_coo_reserve() {
  sparse::Coo<double> coo(4, 4);
  coo.reserve(16);
  const auto cap = coo.entries().capacity();
  CHECK(cap >= 16);
  for (int k = 0; k < 16; ++k) coo.push(k % 4, k / 4, 1.0);
  CHECK_EQ(coo.entries().capacity(), cap);  // no reallocation after reserve
  CHECK_EQ(coo.nnz(), 16u);
}

}  // namespace

int main() {
  test_heavy_duplicates();
  test_shuffled_order();
  test_empty_rows_and_tail();
  test_empty_and_tiny_matrices();
  test_already_sorted_fast_path();
  test_incidence_direct_vs_reference();
  test_weighted_incidence_direct_vs_reference();
  test_coo_reserve();
  return TEST_MAIN_RESULT();
}
