/// \file test_assoc_array.cpp
/// \brief Keyed associative arrays: explode, selection semantics
///        (including the prefix-inclusive range upper bound), the keyed
///        product, and structural invariants of the music dataset.

#include <string>

#include "algebra/any_pair.hpp"
#include "algebra/pairs.hpp"
#include "core/associative_array.hpp"
#include "core/multiply.hpp"
#include "core/printing.hpp"
#include "core/selection.hpp"
#include "d4m/explode.hpp"
#include "d4m/music_dataset.hpp"
#include "test_util.hpp"

using namespace i2a;

namespace {

void test_from_triples_sorts_and_dedups() {
  using core::KeyedTriple;
  const auto a = core::AssocArrayD::from_triples(
      {
          {"r2", "cB", 1.0},
          {"r1", "cA", 2.0},
          {"r1", "cA", 5.0},  // duplicate, kSum default
          {"r1", "cB", 3.0},
      });
  CHECK_EQ(a.nrows(), 2);
  CHECK_EQ(a.ncols(), 2);
  CHECK_EQ(a.nnz(), 3);
  CHECK_EQ(a.row_keys()[0], std::string("r1"));
  CHECK_EQ(a.col_keys()[1], std::string("cB"));
  const auto t = a.triples();
  CHECK_EQ(t[0].val, 7.0);  // r1/cA summed
}

void test_explode() {
  const auto e = d4m::explode({
      {"row1", "Genre", "Pop"},
      {"row1", "Writer", "A"},
      {"row1", "Writer", "B"},  // multi-valued field: two nonzeros
      {"row2", "Genre", "Rock"},
  });
  CHECK_EQ(e.nrows(), 2);
  CHECK_EQ(e.ncols(), 4);
  CHECK_EQ(e.nnz(), 4);
  CHECK_EQ(e.col_keys()[0], std::string("Genre|Pop"));
  CHECK_EQ(e.col_keys()[2], std::string("Writer|A"));
}

void test_selection_range_semantics() {
  const auto e = d4m::music_incidence_array();
  const auto genres = core::select(e, ":", "Genre|A : Genre|Z");
  CHECK_EQ(genres.ncols(), 3);
  CHECK_EQ(genres.nnz(), 22);  // one genre per track
  // Prefix-inclusive upper bound: Writer|Zedd must survive 'Writer|Z'.
  const auto writers = core::select(e, ":", "Writer|A : Writer|Z");
  CHECK_EQ(writers.ncols(), 12);
  CHECK(core::AssocArrayD::find_key(writers.col_keys(), "Writer|Zedd") >= 0);
  // Exact-key and row selection.
  const auto one = core::select(e, "Sugar", "Genre|Pop");
  CHECK_EQ(one.nnz(), 1);
  const auto none = core::select(e, "Sugar", "Genre|Rock");
  CHECK_EQ(none.nnz(), 0);
}

void test_music_structure() {
  const auto e = d4m::music_incidence_array();
  CHECK_EQ(e.nrows(), 22);
  CHECK_EQ(e.ncols(), 31);
  CHECK_EQ(e.nnz(), 134);
  CHECK(!core::figure_string(e).empty());
}

void test_keyed_product() {
  // Tiny hand product: two tracks, one shared genre, two writers.
  using core::KeyedTriple;
  const auto e1 = core::AssocArrayD::from_triples({
      {"t1", "Genre|Pop", 1.0},
      {"t2", "Genre|Pop", 1.0},
  });
  const auto e2 = core::AssocArrayD::from_triples({
      {"t1", "Writer|A", 1.0},
      {"t2", "Writer|A", 1.0},
      {"t2", "Writer|B", 1.0},
  });
  const auto plus = core::multiply_at_b(algebra::PlusTimes<double>{}, e1, e2);
  CHECK_EQ(plus.nnz(), 2);
  CHECK_EQ(plus.data().at(0, 0, 0.0), 2.0);  // Pop x A: both tracks
  CHECK_EQ(plus.data().at(0, 1, 0.0), 1.0);  // Pop x B: t2 only
  // The type-erased pair goes through the same templated path.
  const auto erased = core::multiply_at_b(
      algebra::AnyPairD::from(algebra::MaxPlus<double>{}), e1, e2);
  CHECK_EQ(erased.data().at(0, 0, 0.0), 2.0);  // max(1+1, 1+1)
}

}  // namespace

int main() {
  test_from_triples_sorts_and_dedups();
  test_explode();
  test_selection_range_semantics();
  test_music_structure();
  test_keyed_product();
  return TEST_MAIN_RESULT();
}
