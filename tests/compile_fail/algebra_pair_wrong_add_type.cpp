// MUST NOT COMPILE — negative compile test for `AlgebraPair`.
// ⊕ exists but returns void, so `{ p.add(v, v) } -> convertible_to<T>`
// fails; the pair is rejected at spgemm's signature.

#include <string_view>

#include "sparse/csr.hpp"
#include "sparse/spgemm.hpp"

struct WrongAddType {
  using value_type = double;
  static constexpr std::string_view name() { return "void-add"; }
  double zero() const { return 0.0; }
  double one() const { return 1.0; }
  void add(double, double) const {}
  double mul(double a, double b) const { return a * b; }
};

int main() {
  const WrongAddType p;
  const i2a::sparse::Csr<double> a(1, 1, {0, 1}, {0}, {1.0});
  const auto c = i2a::sparse::spgemm(p, a, a);
  return c.nnz() == 1 ? 0 : 1;
}
