// Positive control for the thread-safety negative cases: the same
// vocabulary used *correctly* must compile warning-clean under Clang
// `-Wthread-safety -Werror=thread-safety`. This exercises every
// primitive the serving core relies on — scoped acquire/release via
// MutexLock, mid-scope unlock()/relock() (the backpressure stall
// shape), try_lock with I2A_TRY_ACQUIRE, CondVar::wait under
// I2A_REQUIRES, a private _locked helper called from a locked scope,
// and I2A_EXCLUDES on the public entry points. If this control fails,
// the rejections reported for ts_guarded_unlocked / ts_requires_uncalled
// are meaningless (the toolchain, not the analysis, is broken).

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Channel {
 public:
  void push(int v) I2A_EXCLUDES(mu_) {
    i2a::util::MutexLock lock(mu_);
    value_ = v;
    full_ = true;
    lock.unlock();
    cv_.notify_all();
  }

  int pop() I2A_EXCLUDES(mu_) {
    i2a::util::MutexLock lock(mu_);
    while (!full_) cv_.wait(mu_);
    full_ = false;
    return take_locked();
  }

  bool try_peek(int& out) I2A_EXCLUDES(mu_) {
    if (!mu_.try_lock()) return false;
    out = value_;
    mu_.unlock();
    return true;
  }

  // The wait-then-work shape: release mid-scope, notify unlocked,
  // reacquire, keep working — all four MutexLock transitions.
  void reset() I2A_EXCLUDES(mu_) {
    i2a::util::MutexLock lock(mu_);
    full_ = false;
    lock.unlock();
    cv_.notify_all();
    lock.lock();
    value_ = 0;
  }

 private:
  int take_locked() I2A_REQUIRES(mu_) { return value_; }

  i2a::util::Mutex mu_;
  i2a::util::CondVar cv_;
  int value_ I2A_GUARDED_BY(mu_) = 0;
  bool full_ I2A_GUARDED_BY(mu_) = false;
};

}  // namespace

int main() {
  Channel ch;
  ch.push(42);
  int out = 0;
  const bool peeked = ch.try_peek(out);
  const int v = ch.pop();
  ch.reset();
  return (peeked && out == 42 && v == 42) ? 0 : 1;
}
