// MUST NOT COMPILE — negative compile test for `Semiring`.
// MaxPlusNonNeg declares `mul_annihilates = false` (its zero fails to
// ⊗-annihilate — the Section III non-example), so it is a commutative
// ⊕-monoid but not a semiring, and the SpGEMM entry point rejects it at
// compile time. Its only supported route stays the unconstrained dense
// full-semantics baseline.

#include "algebra/non_examples.hpp"
#include "sparse/csr.hpp"
#include "sparse/spgemm.hpp"

int main() {
  const i2a::algebra::MaxPlusNonNeg<double> p;
  const i2a::sparse::Csr<double> a(1, 1, {0, 1}, {0}, {1.0});
  const auto c = i2a::sparse::spgemm(p, a, a);
  return c.nnz() == 1 ? 0 : 1;
}
