// MUST NOT COMPILE — negative compile test for `AlgebraPair`.
// A pair with no ⊗ at all fails the structural concept, so spgemm has no
// viable overload: the error names the concept at the call, not a member
// access pages deep inside the engine. Registered by
// tests/CMakeLists.txt as a configure-time try_compile that must fail.

#include <string_view>

#include "sparse/csr.hpp"
#include "sparse/spgemm.hpp"

struct MissingMul {
  using value_type = double;
  static constexpr std::string_view name() { return "no-mul"; }
  double zero() const { return 0.0; }
  double one() const { return 1.0; }
  double add(double a, double b) const { return a + b; }
};

int main() {
  const MissingMul p;
  const i2a::sparse::Csr<double> a(1, 1, {0, 1}, {0}, {1.0});
  const auto c = i2a::sparse::spgemm(p, a, a);
  return c.nnz() == 1 ? 0 : 1;
}
