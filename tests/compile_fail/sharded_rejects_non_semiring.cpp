// MUST NOT COMPILE — negative compile test for `Semiring` on the
// sharded serving layer. ShardedBuilder routes batches into per-shard
// AdjacencyBuilders and fuses their snapshots with a cross-run ⊕-fold,
// so it carries the same class-level constraint: naming the
// specialization with a non-semiring pair is ill-formed.

#include "algebra/non_examples.hpp"
#include "stream/sharded_builder.hpp"

int main() {
  i2a::stream::ShardedBuilder<i2a::algebra::MaxPlusNonNeg<double>> sharded(
      4, 2, i2a::algebra::MaxPlusNonNeg<double>{});
  return sharded.num_shards() == 2 ? 0 : 1;
}
