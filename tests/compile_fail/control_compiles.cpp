// MUST COMPILE — the positive control for the compile-fail suite.
// Identical shape to the negative cases but with a conforming pair, so a
// toolchain or include-path breakage (which would make *everything* fail
// to compile) cannot masquerade as seven passing negative tests.

#include "algebra/pairs.hpp"
#include "sparse/csr.hpp"
#include "sparse/merge.hpp"
#include "sparse/spgemm.hpp"
#include "stream/sharded_builder.hpp"

int main() {
  const i2a::algebra::PlusTimes<double> p;
  const i2a::sparse::Csr<double> a(1, 1, {0, 1}, {0}, {2.0});
  const auto c = i2a::sparse::spgemm(p, a, a);
  const auto m = i2a::sparse::merge(p, c, c);
  // Same shape as sharded_rejects_non_semiring, conforming pair: the
  // sharded serving surface must be nameable and snapshot-servable.
  i2a::stream::ShardedBuilder<i2a::algebra::PlusTimes<double>> sharded(4, 2,
                                                                       p);
  const auto snap = sharded.snapshot();
  return m.nnz() == 1 && snap.materialize().nnz() == 0 ? 0 : 1;
}
