// MUST COMPILE — the positive control for the compile-fail suite.
// Identical shape to the negative cases but with a conforming pair, so a
// toolchain or include-path breakage (which would make *everything* fail
// to compile) cannot masquerade as six passing negative tests.

#include "algebra/pairs.hpp"
#include "sparse/csr.hpp"
#include "sparse/merge.hpp"
#include "sparse/spgemm.hpp"

int main() {
  const i2a::algebra::PlusTimes<double> p;
  const i2a::sparse::Csr<double> a(1, 1, {0, 1}, {0}, {2.0});
  const auto c = i2a::sparse::spgemm(p, a, a);
  const auto m = i2a::sparse::merge(p, c, c);
  return m.nnz() == 1 ? 0 : 1;
}
