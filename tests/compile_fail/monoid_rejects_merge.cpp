// MUST NOT COMPILE — negative compile test for `CommutativeMonoidAdd`.
// A pair that *declares* a non-commutative ⊕ cannot enter the k-way
// merge: the ladder regroups the fold across batches, which is only
// sound for an associative-commutative ⊕ (merge's requires-clause).

#include <string_view>

#include "sparse/csr.hpp"
#include "sparse/merge.hpp"

struct LeftBiasedAdd {
  using value_type = double;
  static constexpr bool add_commutative = false;  // declared violation
  static constexpr std::string_view name() { return "left-biased"; }
  double zero() const { return 0.0; }
  double one() const { return 1.0; }
  double add(double a, double) const { return a; }
  double mul(double a, double b) const { return a * b; }
};

int main() {
  const LeftBiasedAdd p;
  const i2a::sparse::Csr<double> a(1, 1, {0, 1}, {0}, {1.0});
  const auto c = i2a::sparse::merge(p, a, a);
  return c.nnz() == 1 ? 0 : 1;
}
