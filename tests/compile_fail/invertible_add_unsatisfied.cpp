// MUST NOT COMPILE — negative compile test for `InvertibleAdd`.
// No shipped pair exposes a ⊕-inverse (`sub`), so asserting the deletion
// gate on PlusTimes is a static error. When the ROADMAP tombstone work
// lands an invertible pair, it gets its own positive assertion in
// test_contracts.cpp; this case pins that the gate is not vacuously true.

#include "algebra/concepts.hpp"
#include "algebra/pairs.hpp"

static_assert(
    i2a::algebra::InvertibleAdd<i2a::algebra::PlusTimes<double>>,
    "PlusTimes has no sub(): this assertion must fail to compile");

int main() { return 0; }
