// Negative thread-safety case: calling an `I2A_REQUIRES(mu)` function
// without holding `mu`. Under Clang `-Wthread-safety
// -Werror=thread-safety` this TU must be REJECTED — the REQUIRES
// contract is what keeps `pop_error_locked` / `pending_merges_locked` /
// `plan_task_locked` callable only from locked scopes, so a compiling
// version of this file means those contracts are unenforced. Checked at
// configure time by tests/CMakeLists.txt, Clang configurations only.

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace {

struct Queue {
  i2a::util::Mutex mu;
  int depth I2A_GUARDED_BY(mu) = 0;

  int drain_locked() I2A_REQUIRES(mu) {
    const int d = depth;
    depth = 0;
    return d;
  }
};

}  // namespace

int main() {
  Queue q;
  return q.drain_locked();  // caller does not hold q.mu — must not compile
}
