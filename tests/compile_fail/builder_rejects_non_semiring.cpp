// MUST NOT COMPILE — negative compile test for `Semiring` on the
// streaming layer. AdjacencyBuilder's per-batch delta is a full ⊕.⊗
// product and the ladder regroups the ⊕-fold, so the class template
// itself carries the constraint: naming the specialization with a
// non-semiring pair is ill-formed.

#include "algebra/non_examples.hpp"
#include "stream/adjacency_builder.hpp"

int main() {
  i2a::stream::AdjacencyBuilder<i2a::algebra::MaxPlusNonNeg<double>> builder(
      4, i2a::algebra::MaxPlusNonNeg<double>{});
  return builder.num_vertices() == 4 ? 0 : 1;
}
