// Negative thread-safety case: writing an `I2A_GUARDED_BY` member
// without holding its mutex. Under Clang `-Wthread-safety
// -Werror=thread-safety` this TU must be REJECTED — if it compiles, the
// annotation vocabulary (util/thread_annotations.hpp) has stopped
// expanding to real attributes and the whole-tree thread-safety leg is
// proving nothing. Checked at configure time by tests/CMakeLists.txt,
// Clang configurations only (the macros are no-ops elsewhere).

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace {

struct Counter {
  i2a::util::Mutex mu;
  int value I2A_GUARDED_BY(mu) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.value = 1;  // unlocked write to guarded state — must not compile
  return c.value;
}
