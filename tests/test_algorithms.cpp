/// \file test_algorithms.cpp
/// \brief The downstream algorithm suite on small hand-checkable graphs:
///        BFS levels, Bellman–Ford vs APSP, transitive closure, PageRank
///        sanity, and the masked/unmasked triangle agreement.

#include <cmath>
#include <limits>
#include <stdexcept>

#include "algebra/pairs.hpp"
#include "graph/generators.hpp"
#include "graph/incidence.hpp"
#include "graph/algorithms/apsp.hpp"
#include "graph/algorithms/bfs.hpp"
#include "graph/algorithms/pagerank.hpp"
#include "graph/algorithms/sssp.hpp"
#include "graph/algorithms/triangles.hpp"
#include "test_util.hpp"

using namespace i2a;

namespace {

void test_bfs() {
  // Path 0→1→2→3 plus a shortcut 0→2; vertex 4 unreachable.
  graph::Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 2);
  const auto a = graph::build_adjacency(g, algebra::PlusTimes<double>{});
  const auto lv = graph::bfs_levels(a, 0, 0.0);
  CHECK_EQ(lv[0], 0);
  CHECK_EQ(lv[1], 1);
  CHECK_EQ(lv[2], 1);  // via the shortcut
  CHECK_EQ(lv[3], 2);
  CHECK_EQ(lv[4], -1);
}

void test_sssp_and_apsp_agree() {
  graph::Graph g = graph::gen::erdos_renyi(24, 0.2, 17);
  graph::gen::randomize_weights(g, 0.5, 3.0, 18);
  const algebra::MinPlus<double> p;
  const auto a =
      graph::adjacency_array(p, graph::weighted_incidence_arrays(g, p));
  const auto all = graph::apsp(a);
  for (index_t src = 0; src < 4; ++src) {
    const auto d = graph::sssp_bellman_ford(a, src);
    CHECK(!d.has_negative_cycle);  // nonnegative weights
    for (index_t v = 0; v < a.nrows(); ++v) {
      if (src == v) continue;  // APSP diagonal is pinned to 0
      const double x = d.dist[static_cast<std::size_t>(v)];
      const double y = all.at(src, v);
      CHECK(x == y || std::abs(x - y) <= 1e-9 * std::max(1.0, std::abs(x)));
    }
  }
}

void test_transitive_closure() {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto a = graph::build_adjacency(g, algebra::PlusTimes<double>{});
  const auto r = graph::transitive_closure(a, 0.0);
  CHECK_EQ(r.at(0, 2), 1);  // two-hop path
  CHECK_EQ(r.at(0, 3), 0);
  CHECK_EQ(r.at(2, 0), 0);
}

void test_pagerank() {
  // Star into vertex 2: it must rank highest; ranks must sum to ~1.
  graph::Graph g(4);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(3, 2);
  g.add_edge(2, 0);
  const auto a = graph::build_adjacency(g, algebra::PlusTimes<double>{});
  const auto r = graph::pagerank(a, 0.85, 1e-10, 100);
  double sum = 0.0;
  for (const double x : r) sum += x;
  CHECK(std::abs(sum - 1.0) < 1e-6);
  CHECK(r[2] > r[0] && r[2] > r[1] && r[2] > r[3]);
}

void test_triangles() {
  // Two triangles sharing the edge 0-1: {0,1,2} and {0,1,3}; vertex 4
  // dangles off a non-triangle edge.
  graph::Graph und(5);
  const std::pair<int, int> edges[] = {{0, 1}, {0, 2}, {1, 2},
                                       {0, 3}, {1, 3}, {3, 4}};
  for (const auto& [u, v] : edges) {
    und.add_edge(u, v);
    und.add_edge(v, u);
  }
  const auto a = graph::build_adjacency(und, algebra::MaxTimes<double>{});
  CHECK_EQ(graph::count_triangles(a), 2u);
  CHECK_EQ(graph::count_triangles_masked(a), 2u);

  // Random symmetric graphs: masked and unmasked must always agree.
  util::Xoshiro256 rng(77);
  for (int t = 0; t < 10; ++t) {
    const auto base = graph::gen::random_multigraph(10, 25, rng.next());
    graph::Graph sym(base.num_vertices());
    for (const auto& e : base.edges()) {
      if (e.src == e.dst) continue;
      sym.add_edge(e.src, e.dst);
      sym.add_edge(e.dst, e.src);
    }
    const auto s = graph::build_adjacency(sym, algebra::MaxTimes<double>{});
    CHECK_EQ(graph::count_triangles(s), graph::count_triangles_masked(s));
  }
}

void test_sssp_negative_cycle() {
  // 0 →(1) 1 →(-3) 2 →(1) 1 closes a negative cycle; 2 →(1) 3 hangs off
  // it; vertex 4 is unreachable. Without detection the n-1 rounds leave
  // plausible-looking finite garbage at 1, 2, 3.
  constexpr double inf = std::numeric_limits<double>::infinity();
  graph::Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, -3.0);
  g.add_edge(2, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const algebra::MinPlus<double> p;
  const auto a =
      graph::adjacency_array(p, graph::weighted_incidence_arrays(g, p));
  const auto d = graph::sssp_bellman_ford(a, 0);
  CHECK(d.has_negative_cycle);
  CHECK_EQ(d.dist[0], 0.0);  // the source itself sits before the cycle
  CHECK_EQ(d.dist[1], -inf);
  CHECK_EQ(d.dist[2], -inf);
  CHECK_EQ(d.dist[3], -inf);  // downstream of the cycle: poisoned too
  CHECK_EQ(d.dist[4], inf);   // unreachable stays +inf

  // A negative cycle that the source cannot reach must not fire: 0 →(1) 1
  // is clean, 2 ⇄ 3 is negative but disconnected from 0.
  graph::Graph h(4);
  h.add_edge(0, 1, 1.0);
  h.add_edge(2, 3, -2.0);
  h.add_edge(3, 2, 1.0);
  const auto b =
      graph::adjacency_array(p, graph::weighted_incidence_arrays(h, p));
  const auto e = graph::sssp_bellman_ford(b, 0);
  CHECK(!e.has_negative_cycle);
  CHECK_EQ(e.dist[1], 1.0);
  CHECK_EQ(e.dist[2], inf);

  // A stored +inf entry is the min.+ zero element, not an edge
  // (Definition I.5): the -inf flood must not poison through it.
  sparse::Coo<double> coo(5, 5);
  coo.push(0, 1, 1.0);
  coo.push(1, 2, -3.0);
  coo.push(2, 1, 1.0);
  coo.push(1, 4, inf);  // explicit zero element: 4 stays unreachable
  const auto c = sparse::Csr<double>::from_coo(std::move(coo),
                                               sparse::DupPolicy::kMin);
  const auto f = graph::sssp_bellman_ford(c, 0);
  CHECK(f.has_negative_cycle);
  CHECK_EQ(f.dist[1], -inf);
  CHECK_EQ(f.dist[2], -inf);
  CHECK_EQ(f.dist[4], inf);
}

void test_source_validation() {
  graph::Graph g(3);
  g.add_edge(0, 1);
  const auto a = graph::build_adjacency(g, algebra::PlusTimes<double>{});
  bool threw = false;
  try {
    (void)graph::sssp_bellman_ford(a, 3);
  } catch (const std::out_of_range&) {
    threw = true;
  }
  CHECK(threw);
  threw = false;
  try {
    (void)graph::sssp_bellman_ford(a, -1);
  } catch (const std::out_of_range&) {
    threw = true;
  }
  CHECK(threw);
  threw = false;
  try {
    (void)graph::bfs_levels(a, 3, 0.0);
  } catch (const std::out_of_range&) {
    threw = true;
  }
  CHECK(threw);
  threw = false;
  try {
    (void)graph::bfs_levels(a, -1, 0.0);
  } catch (const std::out_of_range&) {
    threw = true;
  }
  CHECK(threw);
}

void test_triangles_with_self_loops() {
  // One triangle {0,1,2} plus self-loops at 0 and 2. With diagonal
  // entries kept in the pattern, 0's loop manufactures spurious closed
  // walks (c.at(i,i) terms and inflated |N(i) ∩ N(j)| whenever i and j
  // are adjacent) — the regression both counters used to hit.
  graph::Graph g(3);
  const std::pair<int, int> sides[] = {{0, 1}, {1, 2}, {0, 2}};
  for (const auto& [u, v] : sides) {
    g.add_edge(u, v);
    g.add_edge(v, u);
  }
  g.add_edge(0, 0);
  g.add_edge(2, 2);
  const auto a = graph::build_adjacency(g, algebra::MaxTimes<double>{});
  CHECK_EQ(graph::count_triangles(a), 1u);
  CHECK_EQ(graph::count_triangles_masked(a), 1u);

  // Self-loops alone make no triangles at all.
  graph::Graph h(2);
  h.add_edge(0, 0);
  h.add_edge(1, 1);
  h.add_edge(0, 1);
  h.add_edge(1, 0);
  const auto b = graph::build_adjacency(h, algebra::MaxTimes<double>{});
  CHECK_EQ(graph::count_triangles(b), 0u);
  CHECK_EQ(graph::count_triangles_masked(b), 0u);

  // Random symmetric graphs *with loops kept*: the counters must agree
  // with each other and with the loop-stripped copy of the same graph.
  util::Xoshiro256 rng(123);
  for (int t = 0; t < 10; ++t) {
    const auto base = graph::gen::random_multigraph(10, 30, rng.next());
    graph::Graph withloops(base.num_vertices());
    graph::Graph noloops(base.num_vertices());
    for (const auto& e : base.edges()) {
      if (e.src == e.dst) {
        withloops.add_edge(e.src, e.dst);
        continue;
      }
      withloops.add_edge(e.src, e.dst);
      withloops.add_edge(e.dst, e.src);
      noloops.add_edge(e.src, e.dst);
      noloops.add_edge(e.dst, e.src);
    }
    const auto wl = graph::build_adjacency(withloops, algebra::MaxTimes<double>{});
    const auto nl = graph::build_adjacency(noloops, algebra::MaxTimes<double>{});
    const auto expected = graph::count_triangles(nl);
    CHECK_EQ(graph::count_triangles(wl), expected);
    CHECK_EQ(graph::count_triangles_masked(wl), expected);
    CHECK_EQ(graph::count_triangles_masked(nl), expected);
  }
}

void test_explicit_zero_entries_are_not_edges() {
  // A stored entry whose value equals the zero element is not an edge
  // (Definition I.5); pagerank and the triangle counters must agree
  // with the validators on that.
  sparse::Coo<double> with_zero(3, 3);
  with_zero.push(0, 1, 1.0);
  with_zero.push(1, 0, 1.0);
  with_zero.push(1, 2, 0.0);  // explicit zero: not an edge
  const auto a = sparse::Csr<double>::from_coo(std::move(with_zero));
  sparse::Coo<double> without(3, 3);
  without.push(0, 1, 1.0);
  without.push(1, 0, 1.0);
  const auto b = sparse::Csr<double>::from_coo(std::move(without));
  const auto ra = graph::pagerank(a, 0.85, 1e-12, 200);
  const auto rb = graph::pagerank(b, 0.85, 1e-12, 200);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    CHECK(std::abs(ra[i] - rb[i]) < 1e-12);
  }

  // Triangle {0,1,2} with one side stored as an explicit zero: no
  // triangle under the pattern rule.
  sparse::Coo<double> tri(3, 3);
  const std::pair<int, int> sides[] = {{0, 1}, {1, 2}, {0, 2}};
  for (const auto& [u, v] : sides) {
    const double w = (u == 0 && v == 2) ? 0.0 : 1.0;
    tri.push(u, v, w);
    tri.push(v, u, w);
  }
  const auto t = sparse::Csr<double>::from_coo(std::move(tri));
  CHECK_EQ(graph::count_triangles(t), 0u);
  CHECK_EQ(graph::count_triangles_masked(t), 0u);
}

}  // namespace

int main() {
  test_bfs();
  test_sssp_and_apsp_agree();
  test_transitive_closure();
  test_pagerank();
  test_triangles();
  test_triangles_with_self_loops();
  test_sssp_negative_cycle();
  test_source_validation();
  test_explicit_zero_entries_are_not_edges();
  return TEST_MAIN_RESULT();
}
