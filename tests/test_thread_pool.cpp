/// \file test_thread_pool.cpp
/// \brief The ThreadPool contract, pinned: construction edge cases
///        (0/1/N threads), the chunk decomposition `num_chunks`
///        predicts, exception propagation semantics, nested-submission
///        serialization, concurrent callers sharing one pool, repeated
///        teardown, and the `submit` background-task contract — run
///        exactly once, inline when workerless, drained (not dropped) at
///        destruction, serialized when fanning back into the pool, and
///        escaped task exceptions routed to the pluggable submit error
///        handler (default slot + `take_submit_error`, custom sinks,
///        throwing-handler containment) — plus the streaming builder's
///        background-compaction lifecycle built on it: tasks outliving
///        destroyed snapshots and builders, and a failed background
///        merge surfacing exactly once from `drain()` or the next
///        `ingest()` (peeking through `snapshot().pending_error()`). The
///        whole file is TSan-clean by design — the TSan CI leg runs it
///        as the pool's race-detection stress — and leak-free under the
///        ASan leg (detached tasks own their state via shared_ptr).

#include <atomic>
#include <cstddef>
#include <exception>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "algebra/pairs.hpp"
#include "core/types.hpp"
#include "graph/graph.hpp"
#include "graph/incidence.hpp"
#include "stream/adjacency_builder.hpp"
#include "util/thread_pool.hpp"
#include "test_util.hpp"

using namespace i2a;

namespace {

void test_construction_edge_cases() {
  // 0 and 1 both mean "no workers, caller does everything".
  util::ThreadPool p0(0);
  CHECK_EQ(p0.size(), 1u);
  util::ThreadPool p1(1);
  CHECK_EQ(p1.size(), 1u);
  util::ThreadPool p4(4);
  CHECK_EQ(p4.size(), 4u);
  // A pool that never receives work must tear down cleanly (workers are
  // parked in cv_.wait when stop is signalled).
  { util::ThreadPool idle(8); }
}

void test_num_chunks_predicts_decomposition() {
  util::ThreadPool pool(4);
  CHECK_EQ(pool.num_chunks(0), 0);
  CHECK_EQ(pool.num_chunks(-3), 0);
  CHECK_EQ(pool.num_chunks(1), 1);
  for (index_t n : {2, 3, 4, 5, 7, 8, 9, 63, 64, 65, 1000}) {
    const index_t predicted = pool.num_chunks(n);
    CHECK(predicted >= 1 && predicted <= 4);
    // Observe the actual decomposition: every chunk id in [0, predicted)
    // exactly once, ranges disjoint and covering [0, n) in id order.
    std::vector<std::atomic<int>> seen(static_cast<std::size_t>(predicted));
    std::vector<index_t> begins(static_cast<std::size_t>(predicted), -1);
    std::vector<index_t> ends(static_cast<std::size_t>(predicted), -1);
    pool.parallel_for_chunks(n, [&](index_t c, index_t lo, index_t hi) {
      CHECK(c >= 0 && c < predicted);
      seen[static_cast<std::size_t>(c)].fetch_add(1);
      begins[static_cast<std::size_t>(c)] = lo;
      ends[static_cast<std::size_t>(c)] = hi;
    });
    index_t covered = 0;
    for (index_t c = 0; c < predicted; ++c) {
      CHECK_EQ(seen[static_cast<std::size_t>(c)].load(), 1);
      CHECK_EQ(begins[static_cast<std::size_t>(c)], covered);
      CHECK(ends[static_cast<std::size_t>(c)] >
            begins[static_cast<std::size_t>(c)]);
      covered = ends[static_cast<std::size_t>(c)];
    }
    CHECK_EQ(covered, n);
  }
  // Single-threaded pools always use one chunk.
  util::ThreadPool serial(1);
  for (index_t n : {1, 2, 100}) CHECK_EQ(serial.num_chunks(n), 1);
}

void test_parallel_for_coverage() {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    for (const index_t n : {0, 1, 3, 7, 8, 9, 1000}) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
      pool.parallel_for(n, [&](index_t lo, index_t hi) {
        for (index_t i = lo; i < hi; ++i) {
          hits[static_cast<std::size_t>(i)].fetch_add(1);
        }
      });
      for (index_t i = 0; i < n; ++i) {
        CHECK_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
      }
    }
  }
}

void test_exception_propagation() {
  util::ThreadPool pool(4);
  // A worker-chunk exception reaches the caller; every non-throwing
  // chunk still runs to completion before the rethrow (the join drains
  // first).
  std::atomic<int> completed{0};
  bool threw = false;
  try {
    pool.parallel_for_chunks(1000, [&](index_t c, index_t, index_t) {
      if (c == 2) throw std::runtime_error("chunk 2");
      completed.fetch_add(1);
    });
  } catch (const std::runtime_error& e) {
    threw = true;
    CHECK_EQ(std::string(e.what()), std::string("chunk 2"));
  }
  CHECK(threw);
  CHECK_EQ(completed.load(), static_cast<int>(pool.num_chunks(1000)) - 1);

  // The caller's own chunk (id 0) throwing must also wait for the
  // workers before propagating.
  completed.store(0);
  threw = false;
  try {
    pool.parallel_for_chunks(1000, [&](index_t c, index_t, index_t) {
      if (c == 0) throw std::runtime_error("chunk 0");
      completed.fetch_add(1);
    });
  } catch (const std::runtime_error&) {
    threw = true;
  }
  CHECK(threw);
  CHECK_EQ(completed.load(), static_cast<int>(pool.num_chunks(1000)) - 1);

  // Every chunk throwing: exactly one exception propagates (the first
  // recorded), the rest are swallowed, nothing crashes.
  threw = false;
  try {
    pool.parallel_for(1000, [&](index_t, index_t) {
      throw std::runtime_error("all");
    });
  } catch (const std::runtime_error&) {
    threw = true;
  }
  CHECK(threw);

  // The pool is fully reusable after an exception.
  std::atomic<index_t> sum{0};
  pool.parallel_for(100, [&](index_t lo, index_t hi) {
    index_t s = 0;
    for (index_t i = lo; i < hi; ++i) s += i;
    sum.fetch_add(s);
  });
  CHECK_EQ(sum.load(), 4950);
}

void test_nested_submission_serializes() {
  util::ThreadPool pool(4);
  // A parallel_for_chunks issued from inside a running chunk must not
  // deadlock (FIFO queue, no stealing — see the header contract); it
  // runs its whole range serially as chunk 0.
  std::atomic<index_t> total{0};
  std::atomic<int> nested_calls{0};
  std::atomic<int> nested_max_chunk{0};
  pool.parallel_for_chunks(8, [&](index_t, index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) {
      pool.parallel_for_chunks(100, [&](index_t c, index_t nlo, index_t nhi) {
        nested_calls.fetch_add(1);
        int cur = nested_max_chunk.load();
        while (static_cast<index_t>(cur) < c &&
               !nested_max_chunk.compare_exchange_weak(
                   cur, static_cast<int>(c))) {
        }
        total.fetch_add(nhi - nlo);
      });
    }
  });
  CHECK_EQ(total.load(), 800);
  // Serialized: one invocation per nested call, always chunk 0.
  CHECK_EQ(nested_calls.load(), 8);
  CHECK_EQ(nested_max_chunk.load(), 0);
  // After the nested region, a top-level call parallelizes again.
  CHECK(pool.num_chunks(1000) > 1);
  std::atomic<int> chunks_seen{0};
  pool.parallel_for_chunks(1000, [&](index_t, index_t, index_t) {
    chunks_seen.fetch_add(1);
  });
  CHECK_EQ(chunks_seen.load(), static_cast<int>(pool.num_chunks(1000)));
}

void test_concurrent_callers() {
  // Multiple threads drive one pool at once: each call owns its join
  // state, so per-caller results stay independent and complete. This is
  // the TSan stress for enqueue/worker_loop/JoinState.
  util::ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr int kRounds = 25;
  std::vector<index_t> results(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&pool, &results, t] {
      index_t local = 0;
      for (int round = 0; round < kRounds; ++round) {
        std::atomic<index_t> sum{0};
        pool.parallel_for(500, [&](index_t lo, index_t hi) {
          index_t s = 0;
          for (index_t i = lo; i < hi; ++i) s += i + t;
          sum.fetch_add(s);
        });
        local += sum.load();
      }
      results[static_cast<std::size_t>(t)] = local;
    });
  }
  for (auto& th : callers) th.join();
  for (int t = 0; t < kCallers; ++t) {
    const index_t expect = kRounds * (500 * 499 / 2 + 500 * t);
    CHECK_EQ(results[static_cast<std::size_t>(t)], expect);
  }
}

void test_exception_under_contention() {
  // Concurrent callers where some chunks throw: every caller receives
  // its own exception (or its own clean result), never a neighbor's.
  util::ThreadPool pool(4);
  constexpr int kCallers = 4;
  std::vector<int> caught(kCallers, 0);
  std::vector<int> clean(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&pool, &caught, &clean, t] {
      for (int round = 0; round < 20; ++round) {
        const bool thrower = (round + t) % 2 == 0;
        try {
          pool.parallel_for_chunks(64, [&](index_t c, index_t, index_t) {
            if (thrower && c == 1) throw t;  // caller id as payload
          });
          clean[static_cast<std::size_t>(t)] += thrower ? 0 : 1;
        } catch (const int id) {
          if (id == t) caught[static_cast<std::size_t>(t)] += 1;
        }
      }
    });
  }
  for (auto& th : callers) th.join();
  for (int t = 0; t < kCallers; ++t) {
    CHECK_EQ(caught[static_cast<std::size_t>(t)], 10);
    CHECK_EQ(clean[static_cast<std::size_t>(t)], 10);
  }
}

void test_repeated_teardown() {
  // Construct → work → destroy in a tight loop: the destructor's
  // stop/notify/join handshake runs while workers are at every stage of
  // their loop. TSan checks the handshake; the CHECKs pin liveness.
  for (int round = 0; round < 50; ++round) {
    util::ThreadPool pool(4);
    std::atomic<index_t> sum{0};
    pool.parallel_for(64, [&](index_t lo, index_t hi) {
      sum.fetch_add(hi - lo);
    });
    CHECK_EQ(sum.load(), 64);
  }
  for (int round = 0; round < 50; ++round) {
    util::ThreadPool pool(3);  // teardown with nothing ever enqueued
  }
}

void test_submit_basics() {
  // A submitted task runs exactly once.
  util::ThreadPool pool(4);
  std::atomic<int> ran{0};
  pool.submit([&] { ran.fetch_add(1); });
  while (ran.load() == 0) std::this_thread::yield();
  CHECK_EQ(ran.load(), 1);

  // Workerless pool: the task runs inline, before submit returns.
  util::ThreadPool serial(1);
  int inline_ran = 0;
  serial.submit([&] { inline_ran = 42; });
  CHECK_EQ(inline_ran, 42);

  // Destruction drains queued submissions instead of dropping them.
  std::atomic<int> drained{0};
  {
    util::ThreadPool p2(2);
    for (int i = 0; i < 64; ++i) {
      p2.submit([&] { drained.fetch_add(1); });
    }
  }
  CHECK_EQ(drained.load(), 64);

  // A task fanning back into its own pool serializes that region (same
  // FIFO-starvation argument as nested chunks): every nested invocation
  // is chunk 0.
  std::atomic<int> max_chunk{-1};
  std::atomic<bool> done{false};
  pool.submit([&] {
    pool.parallel_for_chunks(100, [&](index_t c, index_t, index_t) {
      int cur = max_chunk.load();
      while (static_cast<index_t>(cur) < c &&
             !max_chunk.compare_exchange_weak(cur, static_cast<int>(c))) {
      }
    });
    done.store(true);
  });
  while (!done.load()) std::this_thread::yield();
  CHECK_EQ(max_chunk.load(), 0);
}

void test_background_task_outlives_snapshot() {
  // Pin a snapshot, then trigger a background compaction over the very
  // runs it pins, and destroy the snapshot while the merge may still be
  // running. The refcounts must keep every run alive exactly as long as
  // someone needs it (ASan would flag the use-after-free, TSan the
  // unsynchronized handoff).
  const algebra::PlusTimes<double> p;
  util::ThreadPool pool(2);
  stream::AdjacencyBuilder<algebra::PlusTimes<double>> builder(
      8, p, stream::Weighting::kUnweighted, sparse::SpGemmAlgo::kAuto, &pool,
      stream::Compaction::kBackground);
  graph::Graph all(8);
  const std::vector<graph::Edge> batches[] = {
      {{0, 1, 1.0}}, {{1, 2, 1.0}}, {{2, 3, 1.0}}, {{0, 1, 1.0}}};
  for (int i = 0; i < 3; ++i) {
    builder.ingest(batches[i]);
    for (const auto& e : batches[i]) all.add_edge(e.src, e.dst, e.weight);
  }
  {
    const auto snap = builder.snapshot();  // pins the pre-compaction runs
    CHECK_EQ(snap.batches(), 3u);
    builder.ingest(batches[3]);  // schedules a merge over pinned runs
    for (const auto& e : batches[3]) all.add_edge(e.src, e.dst, e.weight);
  }  // snapshot dies here, compaction possibly mid-flight
  builder.drain();
  CHECK(i2a::test::csr_bitwise_equal(builder.adjacency(),
                                     graph::build_adjacency(all, p)));
}

void test_builder_destroyed_with_task_in_flight() {
  // The builder may die before its compaction task runs: the task owns
  // the ladder via shared_ptr and the pool drains its queue at
  // destruction, so nothing dangles and nothing leaks (ASan leg).
  util::ThreadPool pool(2);
  {
    stream::AdjacencyBuilder<algebra::PlusTimes<double>> builder(
        8, {}, stream::Weighting::kUnweighted, sparse::SpGemmAlgo::kAuto,
        &pool, stream::Compaction::kBackground);
    for (index_t i = 0; i < 6; ++i) {
      builder.ingest(std::vector<graph::Edge>{{i % 7, i % 7 + 1, 1.0}});
    }
  }  // builder destroyed, tasks possibly queued or running
}  // pool destructor drains the remaining tasks

void test_background_exception_surfaces() {
  // A background merge failure must not vanish: it is delivered exactly
  // once, through whichever of drain() / the next ingest() comes first,
  // the failed-merge ladder stays serviceable for further appends, and
  // an ingest that delivers the error does NOT consume its batch.
  struct Boom {};
  struct ThrowingPlusTimes {
    using value_type = double;
    static constexpr std::string_view name() { return "+.* (throwing)"; }
    double zero() const { return 0.0; }
    double one() const { return 1.0; }
    double add(double, double) const { throw Boom{}; }
    double mul(double a, double b) const { return a * b; }
  };
  util::ThreadPool pool(2);
  stream::AdjacencyBuilder<ThrowingPlusTimes> builder(
      3, ThrowingPlusTimes{}, stream::Weighting::kUnweighted,
      sparse::SpGemmAlgo::kAuto, &pool, stream::Compaction::kBackground);
  // Two batches with the same edge: staging never folds (one product per
  // entry), but the scheduled compaction folds (0,1) with (0,1) — Boom,
  // captured in the background task.
  builder.ingest(std::vector<graph::Edge>{{0, 1, 1.0}});
  builder.ingest(std::vector<graph::Edge>{{0, 1, 1.0}});
  // Channel 1: drain() settles the chain and rethrows the failure.
  bool threw = false;
  try {
    builder.drain();
  } catch (const Boom&) {
    threw = true;
  }
  CHECK(threw);
  builder.drain();  // delivered exactly once: a second drain is clean
  CHECK_EQ(builder.stats().compactions, 0u);
  // Channel 2: the next ingest(). Appending a third batch schedules
  // another doomed merge; snapshot() *peeks* the failure without
  // consuming it, which both proves the peek contract and lets the test
  // wait for the task deterministically.
  builder.ingest(std::vector<graph::Edge>{{1, 2, 1.0}});
  while (builder.snapshot().pending_error() == nullptr) {
    std::this_thread::yield();
  }
  CHECK(builder.snapshot().pending_error() != nullptr);  // peek ≠ consume
  threw = false;
  try {
    builder.ingest(std::vector<graph::Edge>{{2, 0, 1.0}});
  } catch (const Boom&) {
    threw = true;
  }
  CHECK(threw);
  CHECK_EQ(builder.stats().batches, 3u);  // the erroring ingest consumed nothing
  // Delivered: the same batch now ingests fine.
  builder.ingest(std::vector<graph::Edge>{{2, 0, 1.0}});
  CHECK_EQ(builder.stats().batches, 4u);
  // That ingest scheduled one more doomed merge. Destroying the builder
  // with its failure still queued would trip the destructor's
  // undelivered-error assert (see test_failpoints for that contract), so
  // acknowledge it explicitly before teardown.
  CHECK_EQ(builder.dismiss_pending_errors(), 1u);
}

void test_submit_error_default_slot() {
  // Workerless pool: submit runs inline, so capture order is
  // deterministic. The default handler keeps the FIRST escaped
  // exception; take_submit_error is poll-and-clear.
  util::ThreadPool pool(1);
  CHECK(pool.take_submit_error() == nullptr);
  pool.submit([] { throw std::runtime_error("boom-1"); });
  pool.submit([] { throw std::runtime_error("boom-2"); });  // slot taken
  std::exception_ptr err = pool.take_submit_error();
  CHECK(err != nullptr);
  bool matched = false;
  try {
    std::rethrow_exception(err);
  } catch (const std::runtime_error& e) {
    matched = std::string_view(e.what()) == "boom-1";
  }
  CHECK(matched);
  CHECK(pool.take_submit_error() == nullptr);  // cleared by the take
  pool.submit([] { throw std::runtime_error("boom-3"); });  // slot free again
  err = pool.take_submit_error();
  CHECK(err != nullptr);
}

void test_submit_error_worker_thread() {
  // Same slot contract when the task runs on an actual worker.
  util::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("worker-boom"); });
  std::exception_ptr err;
  while (!(err = pool.take_submit_error())) {
    std::this_thread::yield();
  }
  bool matched = false;
  try {
    std::rethrow_exception(err);
  } catch (const std::runtime_error& e) {
    matched = std::string_view(e.what()) == "worker-boom";
  }
  CHECK(matched);
}

void test_submit_error_custom_handler() {
  util::ThreadPool pool(1);
  std::vector<std::string> seen;
  pool.set_submit_error_handler([&seen](std::exception_ptr e) {
    try {
      std::rethrow_exception(e);
    } catch (const std::runtime_error& ex) {
      seen.emplace_back(ex.what());
    }
  });
  pool.submit([] { throw std::runtime_error("h1"); });
  pool.submit([] { throw std::runtime_error("h2"); });
  CHECK_EQ(seen.size(), 2u);  // handler sees EVERY escape, not just the first
  CHECK(seen[0] == "h1");
  CHECK(seen[1] == "h2");
  CHECK(pool.take_submit_error() == nullptr);  // handler bypasses the slot
  // A handler that breaks its no-throw contract is contained at the
  // boundary — no std::terminate, no escape into the worker loop.
  pool.set_submit_error_handler(
      [](std::exception_ptr) { throw std::logic_error("handler bug"); });
  pool.submit([] { throw std::runtime_error("h3"); });
  // nullptr restores the default capture-into-slot behavior.
  pool.set_submit_error_handler(nullptr);
  pool.submit([] { throw std::runtime_error("h4"); });
  std::exception_ptr err = pool.take_submit_error();
  CHECK(err != nullptr);
}

}  // namespace

int main() {
  test_construction_edge_cases();
  test_num_chunks_predicts_decomposition();
  test_parallel_for_coverage();
  test_exception_propagation();
  test_nested_submission_serializes();
  test_concurrent_callers();
  test_exception_under_contention();
  test_repeated_teardown();
  test_submit_basics();
  test_submit_error_default_slot();
  test_submit_error_worker_thread();
  test_submit_error_custom_handler();
  test_background_task_outlives_snapshot();
  test_builder_destroyed_with_task_in_flight();
  test_background_exception_surfaces();
  return TEST_MAIN_RESULT();
}
