/// \file test_stream.cpp
/// \brief Streaming differential suite: AdjacencyBuilder's maintained
///        array must be *byte-identical* to the oracle — concatenate all
///        batches and rebuild from scratch with `build_adjacency` /
///        `adjacency_array` — across batch sizes {1, 7, 1024}, pool
///        sizes {serial, 1, 4, 8}, and the min.+ / +.* / max.min
///        algebras, plus builder-specific edge cases (empty batches,
///        endpoint validation, ladder shape, prefix snapshots).
///
/// Weighted workloads draw integer weights so the +.* fold stays exact
/// in FP — any fold-order divergence shows up as a byte diff instead of
/// hiding inside reassociation noise; min/max folds are exact on any
/// doubles.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "algebra/pairs.hpp"
#include "graph/generators.hpp"
#include "graph/incidence.hpp"
#include "stream/adjacency_builder.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include "test_util.hpp"

using namespace i2a;

namespace {

using i2a::test::csr_bitwise_equal;

/// Shared stream workload: a dense-ish multigraph (parallel edges and
/// self-loops included — the paper's hard cases) with small-integer
/// weights.
graph::Graph stream_graph(index_t n, index_t m, std::uint64_t seed) {
  auto g = graph::gen::random_multigraph(n, m, seed);
  util::Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (auto& e : g.edges()) {
    e.weight = static_cast<double>(1 + rng.next() % 9);
  }
  return g;
}

/// Feed `g`'s edge list to a builder in `batch_size` slices and check the
/// final snapshot byte-equals the from-scratch oracle.
template <typename P>
void run_differential(const P& p, stream::Weighting weighting,
                      const graph::Graph& g, index_t batch_size,
                      util::ThreadPool* pool,
                      const sparse::Csr<typename P::value_type>& oracle) {
  stream::AdjacencyBuilder<P> builder(g.num_vertices(), p, weighting,
                                      sparse::SpGemmAlgo::kAuto, pool);
  const auto& edges = g.edges();
  for (std::size_t lo = 0; lo < edges.size();
       lo += static_cast<std::size_t>(batch_size)) {
    const std::size_t hi =
        std::min(edges.size(), lo + static_cast<std::size_t>(batch_size));
    builder.ingest(std::span<const graph::Edge>(edges.data() + lo, hi - lo));
  }
  CHECK_EQ(builder.stats().edges, edges.size());
  CHECK(csr_bitwise_equal(builder.adjacency(), oracle));
  // The ladder never holds more than log2(batches) + 1 live runs.
  const auto batches = static_cast<double>(builder.stats().batches);
  CHECK(builder.num_levels() <=
        static_cast<index_t>(std::log2(batches > 0 ? batches : 1)) + 1);
}

void test_streaming_differential() {
  const index_t n = 48;
  const index_t m = 1500;
  const auto g = stream_graph(n, m, 2026);

  // Serial oracles, built once per algebra with the batch path's exact
  // construction entry points.
  const algebra::PlusTimes<double> plus_times;
  const algebra::MinPlus<double> min_plus;
  const algebra::MaxMin<double> max_min;
  const auto oracle_pt = graph::build_adjacency(g, plus_times);
  const auto oracle_mp = graph::adjacency_array(
      min_plus, graph::weighted_incidence_arrays(g, min_plus));
  const auto oracle_mm = graph::adjacency_array(
      max_min, graph::weighted_incidence_arrays(g, max_min));

  const index_t batch_sizes[] = {1, 7, 1024};
  std::vector<std::unique_ptr<util::ThreadPool>> pools;
  pools.push_back(nullptr);  // serial
  for (const std::size_t t : {1u, 4u, 8u}) {
    pools.push_back(std::make_unique<util::ThreadPool>(t));
  }
  for (const index_t bs : batch_sizes) {
    for (const auto& pool : pools) {
      run_differential(plus_times, stream::Weighting::kUnweighted, g, bs,
                       pool.get(), oracle_pt);
      run_differential(min_plus, stream::Weighting::kWeighted, g, bs,
                       pool.get(), oracle_mp);
      run_differential(max_min, stream::Weighting::kWeighted, g, bs,
                       pool.get(), oracle_mm);
    }
  }
}

void test_prefix_snapshots() {
  // A snapshot after every batch must equal the rebuild of exactly the
  // edges ingested so far — the "maintained, not rebuilt" contract is
  // about *every* prefix, not just the final state.
  const auto g = stream_graph(32, 400, 4242);
  const algebra::MinPlus<double> p;
  util::ThreadPool pool(4);
  stream::AdjacencyBuilder<algebra::MinPlus<double>> builder(
      g.num_vertices(), p, stream::Weighting::kWeighted,
      sparse::SpGemmAlgo::kAuto, &pool);
  const auto& edges = g.edges();
  const std::size_t batch = 37;
  graph::Graph prefix(g.num_vertices());
  for (std::size_t lo = 0; lo < edges.size(); lo += batch) {
    const std::size_t hi = std::min(edges.size(), lo + batch);
    builder.ingest(std::span<const graph::Edge>(edges.data() + lo, hi - lo));
    for (std::size_t i = lo; i < hi; ++i) {
      prefix.add_edge(edges[i].src, edges[i].dst, edges[i].weight);
    }
    const auto oracle = graph::adjacency_array(
        p, graph::weighted_incidence_arrays(prefix, p));
    CHECK(csr_bitwise_equal(builder.adjacency(), oracle));
  }
}

void test_empty_and_tiny_batches() {
  const algebra::PlusTimes<double> p;
  stream::AdjacencyBuilder<algebra::PlusTimes<double>> builder(5, p);
  // Snapshot before any ingest: the all-n empty adjacency.
  const auto empty = builder.adjacency();
  CHECK_EQ(empty.nrows(), 5);
  CHECK_EQ(empty.ncols(), 5);
  CHECK_EQ(empty.nnz(), 0);
  // Empty batches are ⊕-identities: counted, but no ladder churn.
  builder.ingest(std::vector<graph::Edge>{});
  CHECK_EQ(builder.stats().batches, 1u);
  CHECK_EQ(builder.num_levels(), 0);
  builder.ingest(std::vector<graph::Edge>{{0, 1, 2.0}});
  builder.ingest(std::vector<graph::Edge>{});
  builder.ingest(std::vector<graph::Edge>{{1, 2, 3.0}, {0, 1, 1.0}});
  graph::Graph all(5);
  all.add_edge(0, 1, 2.0);
  all.add_edge(1, 2, 3.0);
  all.add_edge(0, 1, 1.0);
  CHECK(csr_bitwise_equal(builder.adjacency(), graph::build_adjacency(all, p)));
  CHECK_EQ(builder.stats().edges, 3u);
}

void test_ingest_validation() {
  const algebra::PlusTimes<double> p;
  stream::AdjacencyBuilder<algebra::PlusTimes<double>> builder(3, p);
  builder.ingest(std::vector<graph::Edge>{{0, 2, 1.0}});
  const auto before = builder.adjacency();
  const auto stats_before = builder.stats();
  // A batch with any out-of-range endpoint is rejected whole: no state
  // change, no partial ingest.
  for (const auto& bad : {graph::Edge{0, 3, 1.0}, graph::Edge{-1, 0, 1.0},
                          graph::Edge{3, 0, 1.0}, graph::Edge{0, -1, 1.0}}) {
    bool threw = false;
    try {
      builder.ingest(std::vector<graph::Edge>{{0, 1, 1.0}, bad});
    } catch (const std::out_of_range&) {
      threw = true;
    }
    CHECK(threw);
  }
  CHECK(csr_bitwise_equal(builder.adjacency(), before));
  CHECK_EQ(builder.stats().batches, stats_before.batches);
  CHECK_EQ(builder.stats().edges, stats_before.edges);
}

void test_stats_untouched_when_merge_throws() {
  // An operator pair whose ⊕ throws (supported at the merge layer) must
  // not leave stats claiming a batch the ladder never received.
  struct Boom {};
  struct ThrowingPlusTimes {
    using value_type = double;
    static constexpr std::string_view name() { return "+.* (throwing)"; }
    double zero() const { return 0.0; }
    double one() const { return 1.0; }
    double add(double, double) const { throw Boom{}; }
    double mul(double a, double b) const { return a * b; }
  };
  stream::AdjacencyBuilder<ThrowingPlusTimes> builder(3, ThrowingPlusTimes{});
  // Batch 1 lands at level 0 without ⊕ ever firing (distinct edges, no
  // compaction).
  builder.ingest(std::vector<graph::Edge>{{0, 1, 1.0}});
  CHECK_EQ(builder.stats().batches, 1u);
  // Batch 2 triggers the level-0 carry, whose merge folds (0,1) with
  // (0,1) and throws.
  bool threw = false;
  try {
    builder.ingest(std::vector<graph::Edge>{{0, 1, 1.0}});
  } catch (const Boom&) {
    threw = true;
  }
  CHECK(threw);
  CHECK_EQ(builder.stats().batches, 1u);
  CHECK_EQ(builder.stats().edges, 1u);
  CHECK_EQ(builder.stats().compactions, 0u);
}

void test_self_loops_and_parallel_edges_stream() {
  // The theorem's hard cases arriving incrementally: parallel edges
  // split across batches must still fold to one entry, and a self-loop
  // must land on the diagonal.
  const algebra::MinPlus<double> p;
  stream::AdjacencyBuilder<algebra::MinPlus<double>> builder(
      4, p, stream::Weighting::kWeighted);
  builder.ingest(std::vector<graph::Edge>{{0, 1, 5.0}, {2, 2, 1.0}});
  builder.ingest(std::vector<graph::Edge>{{0, 1, 3.0}});
  builder.ingest(std::vector<graph::Edge>{{0, 1, 8.0}});
  const auto a = builder.adjacency();
  CHECK_EQ(a.nnz(), 2);
  CHECK_EQ(a.at(0, 1, -1.0), 3.0);  // min over the three parallel edges
  CHECK_EQ(a.at(2, 2, -1.0), 1.0);  // self-loop on the diagonal
}

void test_concurrent_ingest_snapshot() {
  // The builder is thread-compatible: any thread may call it when a
  // mutex orders the handoff (the header contract). One writer ingests,
  // two readers snapshot under the same mutex, and a noise thread
  // drives the shared pool concurrently with the builder's own pool
  // use. Under the TSan CI leg this pins that external serialization
  // plus the pool's internal synchronization are sufficient
  // happens-before for cross-thread builder use — every snapshot must
  // still byte-equal the prefix oracle for its batch count.
  const auto g = stream_graph(32, 600, 7171);
  const algebra::MinPlus<double> p;
  const std::size_t batch = 15;
  const auto& edges = g.edges();

  // Prefix oracles, index k = number of batches ingested.
  std::vector<sparse::Csr<double>> oracles;
  {
    graph::Graph prefix(g.num_vertices());
    oracles.push_back(graph::adjacency_array(
        p, graph::weighted_incidence_arrays(prefix, p)));
    for (std::size_t lo = 0; lo < edges.size(); lo += batch) {
      const std::size_t hi = std::min(edges.size(), lo + batch);
      for (std::size_t i = lo; i < hi; ++i) {
        prefix.add_edge(edges[i].src, edges[i].dst, edges[i].weight);
      }
      oracles.push_back(graph::adjacency_array(
          p, graph::weighted_incidence_arrays(prefix, p)));
    }
  }

  util::ThreadPool pool(4);
  stream::AdjacencyBuilder<algebra::MinPlus<double>> builder(
      g.num_vertices(), p, stream::Weighting::kWeighted,
      sparse::SpGemmAlgo::kAuto, &pool);
  std::mutex mu;            // orders every builder call
  std::size_t batches_done = 0;  // guarded by mu
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (std::size_t lo = 0; lo < edges.size(); lo += batch) {
      const std::size_t hi = std::min(edges.size(), lo + batch);
      std::lock_guard<std::mutex> lock(mu);
      builder.ingest(
          std::span<const graph::Edge>(edges.data() + lo, hi - lo));
      ++batches_done;
    }
    done.store(true);
  });

  struct Observed {
    std::size_t k;
    sparse::Csr<double> snap;
  };
  std::vector<std::vector<Observed>> observed(2);
  std::vector<std::thread> readers;
  readers.reserve(observed.size());
  for (std::size_t t = 0; t < observed.size(); ++t) {
    readers.emplace_back([&, t] {
      do {
        Observed o;
        {
          std::lock_guard<std::mutex> lock(mu);
          o.k = batches_done;
          o.snap = builder.adjacency();
        }
        observed[t].push_back(std::move(o));
      } while (!done.load());
    });
  }
  std::thread noise([&] {  // independent pool traffic, no builder access
    while (!done.load()) {
      std::atomic<index_t> sum{0};
      pool.parallel_for(256, [&](index_t lo, index_t hi) {
        sum.fetch_add(hi - lo);
      });
      if (sum.load() != 256) std::abort();  // CHECK is main-thread-only
    }
  });
  writer.join();
  for (auto& r : readers) r.join();
  noise.join();

  for (const auto& per_reader : observed) {
    CHECK(!per_reader.empty());
    for (const auto& o : per_reader) {
      CHECK(o.k < oracles.size());
      CHECK(csr_bitwise_equal(o.snap, oracles[o.k]));
    }
  }
  CHECK(csr_bitwise_equal(builder.adjacency(), oracles.back()));
}

}  // namespace

int main() {
  test_streaming_differential();
  test_prefix_snapshots();
  test_empty_and_tiny_batches();
  test_ingest_validation();
  test_stats_untouched_when_merge_throws();
  test_self_loops_and_parallel_edges_stream();
  test_concurrent_ingest_snapshot();
  return TEST_MAIN_RESULT();
}
