/// \file test_spgemm_determinism.cpp
/// \brief The two-pass engine must be bit-deterministic: `spgemm` and the
///        fused `spgemm_at_b` return byte-identical CSR (row_ptr, cols,
///        vals) under pool sizes {1, 2, 8} and serially, for every
///        algorithm — on full-precision real values, where any change in
///        ⊕ fold order would flip result bits. Also stresses
///        `ThreadPool::parallel_for`: a throwing chunk propagates exactly
///        one exception and leaves the pool reusable, and the chunk-id
///        decomposition of `parallel_for_chunks` is a disjoint cover that
///        matches `num_chunks`.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "algebra/pairs.hpp"
#include "sparse/csr.hpp"
#include "sparse/spgemm.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include "test_util.hpp"

using namespace i2a;

namespace {

sparse::Csr<double> random_real_csr(index_t nr, index_t nc, int nnz,
                                    std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  sparse::Coo<double> coo(nr, nc);
  for (int k = 0; k < nnz; ++k) {
    coo.push(rng.between(0, nr - 1), rng.between(0, nc - 1),
             rng.uniform(0.1, 9.9));
  }
  return sparse::Csr<double>::from_coo(std::move(coo),
                                       sparse::DupPolicy::kKeepFirst);
}

/// Byte-identical: full-precision == on every component vector.
bool identical(const sparse::Csr<double>& a, const sparse::Csr<double>& b) {
  return i2a::test::csr_bitwise_equal(a, b);
}

constexpr sparse::SpGemmAlgo kAlgos[] = {
    sparse::SpGemmAlgo::kGustavson, sparse::SpGemmAlgo::kHash,
    sparse::SpGemmAlgo::kHeap, sparse::SpGemmAlgo::kAuto};

void test_spgemm_pool_size_invariance() {
  const auto a = random_real_csr(211, 147, 2600, 21);
  const auto b = random_real_csr(147, 189, 2600, 22);
  const algebra::PlusTimes<double> p;  // FP ⊕: fold order shows in the bits
  util::ThreadPool pool1(1), pool2(2), pool8(8);
  for (const auto algo : kAlgos) {
    const auto serial = sparse::spgemm(p, a, b, algo);
    CHECK(identical(sparse::spgemm(p, a, b, algo, &pool1), serial));
    CHECK(identical(sparse::spgemm(p, a, b, algo, &pool2), serial));
    CHECK(identical(sparse::spgemm(p, a, b, algo, &pool8), serial));
  }
}

void test_spgemm_at_b_pool_size_invariance() {
  const auto a = random_real_csr(300, 83, 2200, 31);  // tall incidence shape
  const auto b = random_real_csr(300, 97, 2200, 32);
  const algebra::MinPlus<double> p;
  util::ThreadPool pool1(1), pool2(2), pool8(8);
  const sparse::CscView<double> view(a);
  for (const auto algo : kAlgos) {
    const auto serial = sparse::spgemm_at_b(p, a, b, algo);
    CHECK(identical(sparse::spgemm_at_b(p, a, b, algo, &pool1), serial));
    CHECK(identical(sparse::spgemm_at_b(p, a, b, algo, &pool2), serial));
    CHECK(identical(sparse::spgemm_at_b(p, a, b, algo, &pool8), serial));
    // Prebuilt-view overload lands on the identical bytes too.
    CHECK(identical(sparse::spgemm_at_b(p, view, b, algo, &pool8), serial));
  }
}

void test_parallel_for_chunks_partition() {
  util::ThreadPool pool(8);
  const index_t n = 1000;
  const index_t nchunks = pool.num_chunks(n);
  CHECK(nchunks >= 1 && nchunks <= static_cast<index_t>(pool.size()));

  std::mutex mu;
  std::vector<std::pair<index_t, index_t>> ranges;  // by chunk id
  std::vector<int> seen(static_cast<std::size_t>(nchunks), 0);
  ranges.resize(static_cast<std::size_t>(nchunks), {-1, -1});
  pool.parallel_for_chunks(n, [&](index_t chunk, index_t begin, index_t end) {
    std::lock_guard<std::mutex> lock(mu);
    CHECK(chunk >= 0 && chunk < nchunks);
    ++seen[static_cast<std::size_t>(chunk)];
    ranges[static_cast<std::size_t>(chunk)] = {begin, end};
  });
  // Every chunk id fired exactly once and the ranges tile [0, n).
  index_t cursor = 0;
  for (index_t c = 0; c < nchunks; ++c) {
    CHECK_EQ(seen[static_cast<std::size_t>(c)], 1);
    CHECK_EQ(ranges[static_cast<std::size_t>(c)].first, cursor);
    cursor = ranges[static_cast<std::size_t>(c)].second;
  }
  CHECK_EQ(cursor, n);

  CHECK_EQ(pool.num_chunks(0), 0);
  CHECK_EQ(pool.num_chunks(1), 1);
}

void test_parallel_for_exception_propagation() {
  util::ThreadPool pool(8);
  // Every chunk throws; the caller must observe exactly one exception.
  std::atomic<int> thrown{0};
  int caught = 0;
  try {
    pool.parallel_for(64, [&](index_t, index_t) {
      ++thrown;
      throw std::runtime_error("chunk boom");
    });
  } catch (const std::runtime_error& e) {
    ++caught;
    CHECK_EQ(std::string(e.what()), std::string("chunk boom"));
  }
  CHECK_EQ(caught, 1);
  CHECK(thrown.load() > 1);  // several chunks really did throw

  // A single throwing chunk in the middle also surfaces.
  caught = 0;
  try {
    pool.parallel_for(64, [&](index_t begin, index_t) {
      if (begin > 0) throw std::runtime_error("middle boom");
    });
  } catch (const std::runtime_error&) {
    ++caught;
  }
  CHECK_EQ(caught, 1);

  // The pool stays fully usable afterwards.
  std::atomic<index_t> covered{0};
  pool.parallel_for(1000, [&](index_t begin, index_t end) {
    covered += end - begin;
  });
  CHECK_EQ(covered.load(), 1000);

  // And the engine still runs on it.
  const auto a = random_real_csr(60, 40, 300, 41);
  const auto b = random_real_csr(40, 50, 300, 42);
  const algebra::PlusTimes<double> p;
  CHECK(identical(sparse::spgemm(p, a, b, sparse::SpGemmAlgo::kAuto, &pool),
                  sparse::spgemm(p, a, b, sparse::SpGemmAlgo::kAuto)));
}

}  // namespace

int main() {
  test_spgemm_pool_size_invariance();
  test_spgemm_at_b_pool_size_invariance();
  test_parallel_for_chunks_partition();
  test_parallel_for_exception_propagation();
  return TEST_MAIN_RESULT();
}
