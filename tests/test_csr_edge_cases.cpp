/// \file test_csr_edge_cases.cpp
/// \brief CSR invariants the SpGEMM symbolic pass now relies on:
///        duplicate-policy handling in COO→CSR assembly, `transpose`
///        round-trips (and the `CscView` that mirrors it without copying
///        values), and `Csr::checked` rejecting out-of-order columns and
///        other malformed storage.

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/prng.hpp"
#include "test_util.hpp"

using namespace i2a;

namespace {

template <typename F>
bool throws_invalid_argument(F&& f) {
  try {
    f();
  } catch (const std::invalid_argument&) {
    return true;
  }
  return false;
}

sparse::Csr<double> random_csr(index_t nr, index_t nc, int nnz,
                               std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  sparse::Coo<double> coo(nr, nc);
  for (int k = 0; k < nnz; ++k) {
    coo.push(rng.between(0, nr - 1), rng.between(0, nc - 1),
             rng.uniform(0.5, 4.0));
  }
  return sparse::Csr<double>::from_coo(std::move(coo),
                                       sparse::DupPolicy::kKeepFirst);
}

void test_dup_policies() {
  // Three entries collide on (1, 2) in push order 3, 1, 2; one singleton
  // at (0, 0) checks non-duplicates are untouched by every policy.
  const auto make = [] {
    sparse::Coo<double> coo(3, 4);
    coo.push(0, 0, 7.0);
    coo.push(1, 2, 3.0);
    coo.push(1, 2, 1.0);
    coo.push(1, 2, 2.0);
    return coo;
  };
  const std::pair<sparse::DupPolicy, double> expect[] = {
      {sparse::DupPolicy::kSum, 6.0},      {sparse::DupPolicy::kKeepFirst, 3.0},
      {sparse::DupPolicy::kKeepLast, 2.0}, {sparse::DupPolicy::kMax, 3.0},
      {sparse::DupPolicy::kMin, 1.0},
  };
  for (const auto& [policy, want] : expect) {
    const auto csr = sparse::Csr<double>::from_coo(make(), policy);
    CHECK_EQ(csr.nnz(), 2);
    CHECK_EQ(csr.at(1, 2, 0.0), want);
    CHECK_EQ(csr.at(0, 0, 0.0), 7.0);
    CHECK(csr.is_canonical());
  }
}

void test_transpose_round_trip() {
  const auto a = random_csr(23, 31, 120, 7);
  const auto round = sparse::transpose(sparse::transpose(a));
  CHECK_EQ(round.nrows(), a.nrows());
  CHECK_EQ(round.ncols(), a.ncols());
  CHECK(round.row_ptr() == a.row_ptr());
  CHECK(round.cols() == a.cols());
  CHECK(round.vals() == a.vals());
  CHECK(sparse::transpose(a).is_canonical());

  // Degenerate shapes survive the round trip too.
  const sparse::Csr<double> empty;
  CHECK_EQ(sparse::transpose(empty).nnz(), 0);
  const auto rowless = random_csr(1, 9, 4, 8);
  CHECK(sparse::transpose(sparse::transpose(rowless)).cols() ==
        rowless.cols());
}

void test_csc_view_matches_transpose() {
  const auto a = random_csr(19, 26, 90, 9);
  const auto at = sparse::transpose(a);
  const sparse::CscView<double> view(a);
  CHECK_EQ(view.nrows(), at.nrows());
  CHECK_EQ(view.ncols(), at.ncols());
  for (index_t i = 0; i < at.nrows(); ++i) {
    const auto vc = view.row_cols(i);
    const auto tc = at.row_cols(i);
    CHECK_EQ(static_cast<index_t>(vc.size()), at.row_nnz(i));
    for (std::size_t k = 0; k < tc.size(); ++k) {
      CHECK_EQ(vc[k], tc[k]);
      CHECK_EQ(view.row_val(i, k), at.row_vals(i)[k]);
    }
  }
}

void test_checked_accepts_canonical() {
  const auto a = random_csr(11, 13, 40, 17);
  CHECK(a.is_canonical());
  const auto same = sparse::Csr<double>::checked(
      a.nrows(), a.ncols(), a.row_ptr(), a.cols(), a.vals());
  CHECK(same.row_ptr() == a.row_ptr());
  CHECK(same.cols() == a.cols());
  CHECK(sparse::Csr<double>::checked(0, 0, {0}, {}, {}).is_canonical());
}

void test_checked_rejects_malformed() {
  using C = sparse::Csr<double>;
  // Out-of-order columns within a row — the invariant the symbolic pass,
  // the heap merge, and `at`'s binary search all lean on.
  CHECK(throws_invalid_argument(
      [] { C::checked(1, 5, {0, 2}, {3, 1}, {1.0, 2.0}); }));
  // Duplicate column within a row.
  CHECK(throws_invalid_argument(
      [] { C::checked(1, 5, {0, 2}, {2, 2}, {1.0, 2.0}); }));
  // Column out of range.
  CHECK(throws_invalid_argument(
      [] { C::checked(1, 3, {0, 1}, {3}, {1.0}); }));
  CHECK(throws_invalid_argument(
      [] { C::checked(1, 3, {0, 1}, {-1}, {1.0}); }));
  // row_ptr defects: wrong size, bad endpoints, non-monotone.
  CHECK(throws_invalid_argument([] { C::checked(2, 3, {0, 1}, {0}, {1.0}); }));
  CHECK(throws_invalid_argument(
      [] { C::checked(1, 3, {1, 1}, {}, {}); }));
  CHECK(throws_invalid_argument(
      [] { C::checked(1, 3, {0, 2}, {0}, {1.0}); }));
  CHECK(throws_invalid_argument([] {
    C::checked(2, 3, {0, 2, 1}, {0}, {1.0});
  }));
  // cols/vals length mismatch.
  CHECK(throws_invalid_argument(
      [] { C::checked(1, 3, {0, 1}, {0}, {1.0, 2.0}); }));
  // Negative dimension.
  CHECK(throws_invalid_argument([] { C::checked(-1, 3, {0}, {}, {}); }));

  // is_canonical flags the same defect without throwing.
  const C bad(1, 5, {0, 2}, {3, 1}, {1.0, 2.0});
  CHECK(!bad.is_canonical());
}

}  // namespace

int main() {
  test_dup_policies();
  test_transpose_round_trip();
  test_csc_view_matches_transpose();
  test_checked_accepts_canonical();
  test_checked_rejects_malformed();
  return TEST_MAIN_RESULT();
}
