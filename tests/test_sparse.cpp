/// \file test_sparse.cpp
/// \brief Csr::from_coo duplicate policies, CSR invariants, and the
///        transpose round-trip.

#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/prng.hpp"
#include "test_util.hpp"

using namespace i2a;

namespace {

sparse::Coo<double> dup_coo() {
  // (1,2) pushed three times with values 5, 1, 3 (in that order),
  // (0,0) once, (2,1) twice with 2 then 7.
  sparse::Coo<double> coo(3, 3);
  coo.push(1, 2, 5.0);
  coo.push(0, 0, 4.0);
  coo.push(1, 2, 1.0);
  coo.push(2, 1, 2.0);
  coo.push(1, 2, 3.0);
  coo.push(2, 1, 7.0);
  return coo;
}

void test_dup_policies() {
  using sparse::Csr;
  using sparse::DupPolicy;
  struct Case {
    DupPolicy policy;
    double at12;
    double at21;
  };
  const Case cases[] = {
      {DupPolicy::kSum, 9.0, 9.0},
      {DupPolicy::kKeepFirst, 5.0, 2.0},
      {DupPolicy::kKeepLast, 3.0, 7.0},
      {DupPolicy::kMax, 5.0, 7.0},
      {DupPolicy::kMin, 1.0, 2.0},
  };
  for (const auto& c : cases) {
    const auto m = Csr<double>::from_coo(dup_coo(), c.policy);
    CHECK_EQ(m.nnz(), 3);
    CHECK_EQ(m.at(1, 2, 0.0), c.at12);
    CHECK_EQ(m.at(2, 1, 0.0), c.at21);
    CHECK_EQ(m.at(0, 0, 0.0), 4.0);
    CHECK_EQ(m.at(0, 1, -1.0), -1.0);  // absent entry -> sentinel
  }
}

void test_csr_invariants() {
  util::Xoshiro256 rng(99);
  sparse::Coo<double> coo(40, 30);
  for (int k = 0; k < 300; ++k) {
    coo.push(rng.between(0, 39), rng.between(0, 29), rng.uniform(0.1, 5.0));
  }
  const auto m = sparse::Csr<double>::from_coo(std::move(coo));
  CHECK_EQ(m.row_ptr().size(), 41u);
  CHECK_EQ(m.row_ptr().back(), m.nnz());
  index_t total = 0;
  for (index_t r = 0; r < m.nrows(); ++r) {
    const auto cs = m.row_cols(r);
    for (std::size_t k = 1; k < cs.size(); ++k) {
      CHECK(cs[k - 1] < cs[k]);  // strictly increasing after dedup
    }
    total += m.row_nnz(r);
  }
  CHECK_EQ(total, m.nnz());
}

void test_transpose_roundtrip() {
  util::Xoshiro256 rng(7);
  sparse::Coo<double> coo(25, 60);
  for (int k = 0; k < 400; ++k) {
    coo.push(rng.between(0, 24), rng.between(0, 59), rng.uniform(0.1, 9.0));
  }
  const auto a = sparse::Csr<double>::from_coo(std::move(coo),
                                               sparse::DupPolicy::kKeepFirst);
  const auto at = sparse::transpose(a);
  CHECK_EQ(at.nrows(), a.ncols());
  CHECK_EQ(at.ncols(), a.nrows());
  CHECK_EQ(at.nnz(), a.nnz());
  const auto att = sparse::transpose(at);
  CHECK(att.row_ptr() == a.row_ptr());
  CHECK(att.cols() == a.cols());
  CHECK(att.vals() == a.vals());
  // Spot-check symmetry of lookup through the transpose.
  for (index_t r = 0; r < a.nrows(); ++r) {
    const auto cs = a.row_cols(r);
    const auto vs = a.row_vals(r);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      CHECK_EQ(at.at(cs[k], r, -1.0), vs[k]);
    }
  }
}

}  // namespace

int main() {
  test_dup_policies();
  test_csr_invariants();
  test_transpose_roundtrip();
  return TEST_MAIN_RESULT();
}
