/// \file test_algebra.cpp
/// \brief Property checkers: the seven Table I pairs must come out
///        conforming on their carriers; each Section III non-example must
///        violate exactly the property its lemma names, and its
///        counterexample graph must actually break the product.

#include <string>

#include "algebra/any_pair.hpp"
#include "algebra/carriers.hpp"
#include "algebra/counterexamples.hpp"
#include "algebra/non_examples.hpp"
#include "algebra/pairs.hpp"
#include "algebra/properties.hpp"
#include "algebra/set_algebra.hpp"
#include "test_util.hpp"

using namespace i2a;
using namespace i2a::algebra;

namespace {

template <typename P>
void expect_conforming(const P& p, const Carrier<typename P::value_type>& c) {
  PropertyWitnesses<typename P::value_type> w;
  const auto rep = check_properties(p, c, &w);
  CHECK(rep.conforming());
  // Conforming pairs have nothing to refute.
  CHECK(counterexamples_from_witnesses(p, w).empty());
}

template <typename P>
void expect_broken(const P& p, const Carrier<typename P::value_type>& c,
                   const std::string& property) {
  PropertyWitnesses<typename P::value_type> w;
  const auto rep = check_properties(p, c, &w);
  CHECK(!rep.conforming());
  bool hit = false;
  for (const auto& cx : counterexamples_from_witnesses(p, w)) {
    if (cx.property == property) hit = cx.is_counterexample;
  }
  CHECK(hit);
}

void test_erased_pair_matches_typed() {
  const auto typed = PlusTimes<double>{};
  const auto erased = AnyPairD::from(typed);
  CHECK_EQ(std::string(erased.name()), std::string(typed.name()));
  CHECK_EQ(erased.zero(), typed.zero());
  CHECK_EQ(erased.one(), typed.one());
  CHECK_EQ(erased.add(2.0, 3.0), 5.0);
  CHECK_EQ(erased.mul(2.0, 3.0), 6.0);
  CHECK_EQ(paper_pairs().size(), 7u);
}

void test_set_algebra_helpers() {
  CHECK_EQ(sets::full_mask(3), 0b111u);
  CHECK_EQ(sets::all_subsets(3).size(), 8u);
  CHECK_EQ(sets::to_string(0b101), std::string("{0,2}"));
}

}  // namespace

int main() {
  expect_conforming(PlusTimes<double>{}, carriers::nonneg_reals());
  expect_conforming(MaxTimes<double>{}, carriers::nonneg_reals());
  expect_conforming(MinTimes<double>{}, carriers::pos_reals_with_inf());
  expect_conforming(MaxPlus<double>{}, carriers::reals_with_neg_inf());
  expect_conforming(MinPlus<double>{}, carriers::reals_with_pos_inf());
  expect_conforming(MaxMin<double>{}, carriers::nonneg_reals_with_inf());
  expect_conforming(MinMax<double>{}, carriers::nonneg_reals_with_inf());
  expect_conforming(OrAndU8{}, carriers::gf2());  // or.and over {0,1}

  // Each non-example breaks a different lemma.
  expect_broken(SignedPlusTimes<double>{}, carriers::all_reals(), "zero-sum");
  expect_broken(GaloisF2{}, carriers::gf2(), "zero-sum");
  expect_broken(MaxPlusNonNeg<double>{}, carriers::nonneg_reals(),
                "annihilator");
  expect_broken(BitsetUnionIntersect(3), carriers::bitsets(3), "zero-divisor");

  test_erased_pair_matches_typed();
  test_set_algebra_helpers();
  return TEST_MAIN_RESULT();
}
