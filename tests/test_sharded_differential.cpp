/// \file test_sharded_differential.cpp
/// \brief Sharding must be invisible in the bytes: for EVERY batch
///        prefix, the `ShardedBuilder` snapshot materializes
///        byte-identical to the single-builder snapshot of the same
///        prefix and to the from-scratch rebuild — across shard counts
///        (1 included: sharded-of-one is the degenerate control), pool
///        sizes, both compaction modes, and both weightings. Includes
///        the distributions sharding gets wrong when the hash is bad:
///        every edge from one source (all shards but one empty) and a
///        power-law source skew (a few hubs own most edges).
///
/// Integer-valued weights keep all folds exact in FP (repo convention),
/// so "byte-identical" is a meaningful bar, not a tolerance in disguise.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "algebra/pairs.hpp"
#include "graph/generators.hpp"
#include "graph/incidence.hpp"
#include "stream/adjacency_builder.hpp"
#include "stream/sharded_builder.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include "test_util.hpp"

using namespace i2a;

namespace {

using i2a::test::csr_bitwise_equal;

graph::Graph int_weighted(graph::Graph g, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  for (auto& e : g.edges()) {
    e.weight = static_cast<double>(1 + rng.next() % 9);
  }
  return g;
}

/// Hub-heavy workload: source vertices drawn from a power-law-ish
/// distribution (u⁴ concentrates mass near vertex 0), destinations
/// uniform — the skew that starves shards under a structured hash.
graph::Graph power_law_graph(index_t n, index_t m, std::uint64_t seed) {
  graph::Graph g(n);
  util::Xoshiro256 rng(seed);
  const auto fn = static_cast<double>(n);
  for (index_t i = 0; i < m; ++i) {
    const double u =
        static_cast<double>(rng.next() >> 11) * 0x1.0p-53;  // [0, 1)
    const auto src = static_cast<index_t>(fn * u * u * u * u);
    const auto dst = static_cast<index_t>(rng.next() %
                                          static_cast<std::uint64_t>(n));
    g.add_edge(std::min(src, n - 1), dst,
               static_cast<double>(1 + rng.next() % 9));
  }
  return g;
}

template <typename P>
sparse::Csr<double> rebuild(const P& p, stream::Weighting weighting,
                            const graph::Graph& g) {
  return weighting == stream::Weighting::kWeighted
             ? graph::adjacency_array(
                   p, graph::weighted_incidence_arrays(g, p))
             : graph::adjacency_array(p, graph::incidence_arrays(g, p));
}

/// Feed the same batch sequence to a ShardedBuilder and a single
/// AdjacencyBuilder; after every batch, the two snapshots and the
/// from-scratch rebuild must agree byte-for-byte, and the sharded epoch
/// must stay in lockstep with the single builder's.
template <typename P>
void run_prefix_differential(const P& p, stream::Weighting weighting,
                             const graph::Graph& g, std::size_t batch,
                             std::size_t shards, util::ThreadPool* pool,
                             stream::Compaction compaction) {
  stream::ShardedBuilder<P> sharded(g.num_vertices(), shards, p, weighting,
                                    sparse::SpGemmAlgo::kAuto, pool,
                                    compaction);
  stream::AdjacencyBuilder<P> single(g.num_vertices(), p, weighting,
                                     sparse::SpGemmAlgo::kAuto, pool,
                                     compaction);
  const auto& edges = g.edges();
  graph::Graph prefix(g.num_vertices());
  for (std::size_t lo = 0; lo < edges.size(); lo += batch) {
    const std::size_t hi = std::min(edges.size(), lo + batch);
    const std::span<const graph::Edge> slice(edges.data() + lo, hi - lo);
    sharded.ingest(slice);
    single.ingest(slice);
    for (std::size_t i = lo; i < hi; ++i) {
      prefix.add_edge(edges[i].src, edges[i].dst, edges[i].weight);
    }
    const auto oracle = rebuild(p, weighting, prefix);
    const auto spin = sharded.snapshot();
    CHECK_EQ(spin.batches(), single.snapshot().batches());
    CHECK(csr_bitwise_equal(spin.materialize(), oracle));
    CHECK(csr_bitwise_equal(single.snapshot().materialize(), oracle));
  }
  sharded.drain();
  single.drain();
  CHECK(csr_bitwise_equal(sharded.adjacency(), single.adjacency()));
  CHECK_EQ(sharded.stats().edges, edges.size());
  CHECK_EQ(sharded.stats().batches, single.stats().batches);
}

void test_sharded_prefix_differential() {
  const auto g =
      int_weighted(graph::gen::random_multigraph(32, 400, 909), 0xABCDu);
  std::vector<std::unique_ptr<util::ThreadPool>> pools;
  pools.push_back(nullptr);  // serial
  pools.push_back(std::make_unique<util::ThreadPool>(4));
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3},
                                   std::size_t{4}}) {
    for (const auto& pool : pools) {
      for (const auto mode :
           {stream::Compaction::kInline, stream::Compaction::kBackground}) {
        run_prefix_differential(algebra::PlusTimes<double>{},
                                stream::Weighting::kUnweighted, g, 37, shards,
                                pool.get(), mode);
        run_prefix_differential(algebra::MinPlus<double>{},
                                stream::Weighting::kWeighted, g, 37, shards,
                                pool.get(), mode);
      }
    }
  }
}

void test_empty_shards() {
  // Every edge leaves vertex 5: with 4 shards, three ladders stay empty
  // for the whole run. The fused snapshot must not care.
  const index_t n = 16;
  graph::Graph g(n);
  util::Xoshiro256 rng(77);
  for (int i = 0; i < 60; ++i) {
    g.add_edge(5, static_cast<index_t>(rng.next() %
                                       static_cast<std::uint64_t>(n)),
               static_cast<double>(1 + rng.next() % 9));
  }
  util::ThreadPool pool(4);
  run_prefix_differential(algebra::MinPlus<double>{},
                          stream::Weighting::kWeighted, g, 7, 4, &pool,
                          stream::Compaction::kBackground);
}

void test_power_law_keys() {
  const auto g = power_law_graph(64, 500, 0xBEEFu);
  util::ThreadPool pool(4);
  for (const auto mode :
       {stream::Compaction::kInline, stream::Compaction::kBackground}) {
    run_prefix_differential(algebra::PlusTimes<double>{},
                            stream::Weighting::kUnweighted, g, 41, 4, &pool,
                            mode);
  }
}

void test_sharded_empty_batches_and_validation() {
  const algebra::PlusTimes<double> p;
  bool threw = false;
  try {
    stream::ShardedBuilder<algebra::PlusTimes<double>> zero(8, 0, p);
    (void)zero;
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  CHECK(threw);

  stream::ShardedBuilder<algebra::PlusTimes<double>> b(8, 4, p);
  b.ingest(std::vector<graph::Edge>{});  // epochs advance in lockstep
  CHECK_EQ(b.stats().batches, 1u);
  CHECK_EQ(b.adjacency().nnz(), 0);
  b.ingest(std::vector<graph::Edge>{{0, 1, 1.0}, {7, 3, 1.0}});
  const auto before = b.adjacency();
  const auto stats_before = b.stats();
  // One bad endpoint rejects the whole batch on every shard: no torn
  // epochs, no partial ingest.
  threw = false;
  try {
    b.ingest(std::vector<graph::Edge>{{1, 2, 1.0}, {8, 0, 1.0}});
  } catch (const std::out_of_range&) {
    threw = true;
  }
  CHECK(threw);
  CHECK(csr_bitwise_equal(b.adjacency(), before));
  CHECK_EQ(b.stats().batches, stats_before.batches);
  CHECK_EQ(b.stats().edges, stats_before.edges);
  // shard_of covers [0, shards) and is stable per vertex.
  for (index_t v = 0; v < 8; ++v) {
    CHECK(b.shard_of(v) < b.num_shards());
    CHECK_EQ(b.shard_of(v), b.shard_of(v));
  }
}

}  // namespace

int main() {
  test_sharded_prefix_differential();
  test_empty_shards();
  test_power_law_keys();
  test_sharded_empty_batches_and_validation();
  return TEST_MAIN_RESULT();
}
