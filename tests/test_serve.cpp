/// \file test_serve.cpp
/// \brief Concurrent-serving differential harness: reader threads pin
///        snapshots *mid-ingest* — no mutex between readers and the
///        writer, unlike test_stream's externally-serialized test — while
///        the writer streams batches and compactions run as background
///        pool tasks. Every pinned snapshot must satisfy the
///        **monotonic-prefix oracle**: its epoch k is some batch count
///        the builder actually passed through, its materialized bytes
///        equal the serial rebuild of exactly batches [0, k), the
///        lock-free `fold_row` BFS on it equals BFS on that rebuild, and
///        per reader the observed epochs never go backwards. Swept across
///        pools {1, 4, 8} × shards {1 = plain builder, 4 = ShardedBuilder}
///        × algebras {+.*, min.+}. Runs under the TSan and ASan CI legs —
///        the interleavings are the point — with the workload seed logged
///        (override: I2A_SERVE_SEED) so any failing schedule's inputs
///        replay exactly.
///
/// Workloads use integer-valued weights so every fold is exact in FP:
/// a regrouping or fold-order divergence surfaces as a byte diff, never
/// as reassociation noise.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <thread>
#include <vector>

#include "algebra/pairs.hpp"
#include "graph/algorithms/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/incidence.hpp"
#include "stream/adjacency_builder.hpp"
#include "stream/sharded_builder.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include "test_util.hpp"

using namespace i2a;

namespace {

using i2a::test::csr_bitwise_equal;

std::uint64_t serve_seed() {
  if (const char* env = std::getenv("I2A_SERVE_SEED")) {
    return std::strtoull(env, nullptr, 0);  // base 0: decimal, 0x…, 0… all replay
  }
  return 0x51A7E5EEDULL;
}

/// Multigraph workload with small-integer weights (exact folds).
graph::Graph serve_graph(index_t n, index_t m, std::uint64_t seed) {
  auto g = graph::gen::random_multigraph(n, m, seed);
  util::Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (auto& e : g.edges()) {
    e.weight = static_cast<double>(1 + rng.next() % 9);
  }
  return g;
}

/// Serial prefix oracles: oracles[k] = rebuild of batches [0, k).
template <typename P>
std::vector<sparse::Csr<double>> prefix_oracles(const P& p,
                                                stream::Weighting weighting,
                                                const graph::Graph& g,
                                                std::size_t batch) {
  const auto& edges = g.edges();
  std::vector<sparse::Csr<double>> oracles;
  graph::Graph prefix(g.num_vertices());
  const auto rebuild = [&] {
    return weighting == stream::Weighting::kWeighted
               ? graph::adjacency_array(
                     p, graph::weighted_incidence_arrays(prefix, p))
               : graph::adjacency_array(p, graph::incidence_arrays(prefix, p));
  };
  oracles.push_back(rebuild());
  for (std::size_t lo = 0; lo < edges.size(); lo += batch) {
    const std::size_t hi = std::min(edges.size(), lo + batch);
    for (std::size_t i = lo; i < hi; ++i) {
      prefix.add_edge(edges[i].src, edges[i].dst, edges[i].weight);
    }
    oracles.push_back(rebuild());
  }
  return oracles;
}

/// What a reader thread records per pin; all CHECKing happens on the
/// main thread after the join (the harness counters are not
/// thread-safe).
struct Observed {
  std::uint64_t k = 0;              ///< snapshot epoch at pin time
  sparse::Csr<double> bytes;        ///< serial materialize of the pin
  std::vector<index_t> bfs;         ///< lock-free fold_row BFS from 0
};

/// One configuration: this thread writes every batch while `readers`
/// threads pin/materialize/traverse snapshots continuously, then the
/// main thread replays every observation against the prefix oracles.
/// Works identically for `AdjacencyBuilder` and `ShardedBuilder` — the
/// serving surface (ingest/snapshot/drain/adjacency) is shared.
template <typename P, typename Builder>
void run_serve_config(const P& p, Builder& builder,
                      const std::vector<graph::Edge>& edges, std::size_t batch,
                      const std::vector<sparse::Csr<double>>& oracles,
                      std::size_t readers) {
  std::atomic<bool> done{false};
  std::vector<std::vector<Observed>> observed(readers);
  std::vector<std::thread> pinners;
  pinners.reserve(readers);
  for (std::size_t t = 0; t < readers; ++t) {
    pinners.emplace_back([&, t] {
      do {
        const auto snap = builder.snapshot();
        Observed o;
        o.k = snap.batches();
        o.bytes = snap.materialize();  // serial: no pool interaction
        o.bfs = graph::bfs_levels(snap, 0);
        observed[t].push_back(std::move(o));
        std::this_thread::yield();  // help 1-core schedulers interleave
      } while (!done.load());
    });
  }
  for (std::size_t lo = 0; lo < edges.size(); lo += batch) {
    const std::size_t hi = std::min(edges.size(), lo + batch);
    builder.ingest(std::span<const graph::Edge>(edges.data() + lo, hi - lo));
  }
  done.store(true);
  for (auto& r : pinners) r.join();
  builder.drain();

  const auto max_k = static_cast<std::uint64_t>(oracles.size() - 1);
  for (const auto& per_reader : observed) {
    CHECK(!per_reader.empty());
    std::uint64_t prev = 0;
    for (const auto& o : per_reader) {
      CHECK(o.k <= max_k);
      CHECK(o.k >= prev);  // epochs never go backwards within a reader
      prev = o.k;
      const auto& oracle = oracles[static_cast<std::size_t>(o.k)];
      CHECK(csr_bitwise_equal(o.bytes, oracle));
      CHECK(o.bfs == graph::bfs_levels(oracle, index_t{0}, p.zero()));
    }
  }
  CHECK(csr_bitwise_equal(builder.adjacency(), oracles.back()));
  CHECK_EQ(builder.stats().edges, edges.size());
}

template <typename P>
void sweep_algebra(const P& p, stream::Weighting weighting, const char* name,
                   std::uint64_t seed) {
  const index_t n = 24;
  const index_t m = 240;
  const std::size_t batch = 10;
  const auto g = serve_graph(n, m, seed);
  const auto oracles = prefix_oracles(p, weighting, g, batch);
  const std::size_t readers = 2;

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      std::printf("test_serve: algebra=%s pool=%zu shards=%zu seed=%llu\n",
                  name, threads, shards,
                  static_cast<unsigned long long>(seed));
      util::ThreadPool pool(threads);
      if (shards == 1) {
        stream::AdjacencyBuilder<P> builder(
            n, p, weighting, sparse::SpGemmAlgo::kAuto, &pool,
            stream::Compaction::kBackground);
        run_serve_config(p, builder, g.edges(), batch, oracles, readers);
      } else {
        stream::ShardedBuilder<P> builder(
            n, shards, p, weighting, sparse::SpGemmAlgo::kAuto, &pool,
            stream::Compaction::kBackground);
        run_serve_config(p, builder, g.edges(), batch, oracles, readers);
      }
    }
  }
}

}  // namespace

int main() {
  const std::uint64_t seed = serve_seed();
  sweep_algebra(algebra::PlusTimes<double>{}, stream::Weighting::kUnweighted,
                "+.*", seed);
  sweep_algebra(algebra::MinPlus<double>{}, stream::Weighting::kWeighted,
                "min.+", seed ^ 0xD1FFu);
  return TEST_MAIN_RESULT();
}
