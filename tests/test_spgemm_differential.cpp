/// \file test_spgemm_differential.cpp
/// \brief Differential SpGEMM suite: every sparse kernel (Gustavson,
///        hash, heap, auto) must be *exactly* equal to the dense
///        full-semantics baseline, for all seven Table I operator pairs,
///        serially and under pool sizes {1, 4}, across randomized shapes
///        including empty matrices, empty rows, 1×1, and hyper-sparse.
///
/// Exactness is achievable because inputs are integer-valued doubles in
/// [1, 8]: every ⊗ product and ⊕ fold of the seven pairs is then exact
/// in double regardless of association order, so a single bit of
/// difference between a kernel and the baseline is a real bug, not
/// round-off.

#include <cstdint>

#include "algebra/pairs.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/spgemm.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include "test_util.hpp"

using namespace i2a;

namespace {

util::ThreadPool* g_pool1 = nullptr;
util::ThreadPool* g_pool4 = nullptr;

/// Random CSR with integer values drawn from {1, ..., 8} (all inside
/// every Table I carrier, so conformance — and hence pattern equality
/// with the dense baseline — is guaranteed).
sparse::Csr<double> random_int_csr(index_t nr, index_t nc, int nnz,
                                   std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  sparse::Coo<double> coo(nr, nc);
  if (nr > 0 && nc > 0) {
    for (int k = 0; k < nnz; ++k) {
      coo.push(rng.between(0, nr - 1), rng.between(0, nc - 1),
               static_cast<double>(rng.between(1, 8)));
    }
  }
  return sparse::Csr<double>::from_coo(std::move(coo),
                                       sparse::DupPolicy::kKeepFirst);
}

bool exact_eq(const sparse::Csr<double>& a, const sparse::Csr<double>& b) {
  return a.nrows() == b.nrows() && a.ncols() == b.ncols() &&
         a.row_ptr() == b.row_ptr() && a.cols() == b.cols() &&
         a.vals() == b.vals();
}

constexpr sparse::SpGemmAlgo kAlgos[] = {
    sparse::SpGemmAlgo::kGustavson, sparse::SpGemmAlgo::kHash,
    sparse::SpGemmAlgo::kHeap, sparse::SpGemmAlgo::kAuto};

template <typename P>
void differential_case(const P& p, index_t m, index_t inner, index_t n,
                       int nnz_a, int nnz_b, std::uint64_t seed) {
  const auto a = random_int_csr(m, inner, nnz_a, seed);
  const auto b = random_int_csr(inner, n, nnz_b, seed + 1000);
  const auto ref = sparse::multiply_full_semantics(p, a, b);
  for (const auto algo : kAlgos) {
    CHECK(exact_eq(sparse::spgemm(p, a, b, algo), ref));
    CHECK(exact_eq(sparse::spgemm(p, a, b, algo, g_pool1), ref));
    CHECK(exact_eq(sparse::spgemm(p, a, b, algo, g_pool4), ref));
  }

  // Fused AᵀB rides the same engine through a CSC view; pin it to the
  // baseline on the explicitly transposed operand.
  const auto tall = random_int_csr(inner, m, nnz_a, seed + 2000);
  const auto fused_ref =
      sparse::multiply_full_semantics(p, sparse::transpose(tall), b);
  const sparse::CscView<double> view(tall);
  for (const auto algo : kAlgos) {
    CHECK(exact_eq(sparse::spgemm_at_b(p, tall, b, algo), fused_ref));
    CHECK(exact_eq(sparse::spgemm_at_b(p, view, b, algo, g_pool4), fused_ref));
  }
}

template <typename P>
void run_pair(const P& p, std::uint64_t seed) {
  differential_case(p, 1, 1, 1, 1, 1, seed);            // 1×1
  differential_case(p, 0, 0, 0, 0, 0, seed + 1);        // fully empty
  differential_case(p, 0, 5, 3, 0, 7, seed + 2);        // A has no rows
  differential_case(p, 4, 0, 3, 0, 0, seed + 3);        // empty inner dim
  differential_case(p, 6, 5, 0, 9, 0, seed + 4);        // B has no columns
  differential_case(p, 37, 29, 41, 150, 150, seed + 5); // generic rectangular
  differential_case(p, 24, 24, 24, 400, 400, seed + 6); // dense-ish, collisions
  differential_case(p, 16, 3, 50, 30, 40, seed + 7);    // narrow inner dim
  differential_case(p, 128, 2048, 32, 60, 300, seed + 8);  // hyper-sparse
  differential_case(p, 40, 40, 40, 15, 15, seed + 9);   // mostly empty rows
}

}  // namespace

int main() {
  util::ThreadPool pool1(1);
  util::ThreadPool pool4(4);
  g_pool1 = &pool1;
  g_pool4 = &pool4;

  run_pair(algebra::PlusTimes<double>{}, 100);
  run_pair(algebra::MaxTimes<double>{}, 200);
  run_pair(algebra::MinTimes<double>{}, 300);
  run_pair(algebra::MaxPlus<double>{}, 400);
  run_pair(algebra::MinPlus<double>{}, 500);
  run_pair(algebra::MaxMin<double>{}, 600);
  run_pair(algebra::MinMax<double>{}, 700);

  return TEST_MAIN_RESULT();
}
