/// \file test_construction_determinism.cpp
/// \brief The construction pipeline must be bit-deterministic end to end:
///        `Csr::from_coo`, `transpose`, `CscView`, the direct incidence
///        assembly, the block-stream generators, and `build_adjacency`
///        all produce byte-identical results under pool sizes {1, 2, 8}
///        and serially — the construction-side counterpart of
///        test_spgemm_determinism. Full-precision real values throughout,
///        so any chunking-dependent reorder would flip bits.

#include <cstdint>
#include <vector>

#include "algebra/pairs.hpp"
#include "graph/generators.hpp"
#include "graph/incidence.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include "test_util.hpp"

using namespace i2a;

namespace {

/// Byte-identical: full-precision == on every component vector.
bool identical(const sparse::Csr<double>& a, const sparse::Csr<double>& b) {
  return i2a::test::csr_bitwise_equal(a, b);
}

bool same_edges(const graph::Graph& a, const graph::Graph& b) {
  if (a.num_vertices() != b.num_vertices() ||
      a.num_edges() != b.num_edges()) {
    return false;
  }
  for (std::size_t e = 0; e < a.edges().size(); ++e) {
    const auto& x = a.edges()[e];
    const auto& y = b.edges()[e];
    if (x.src != y.src || x.dst != y.dst || x.weight != y.weight) {
      return false;
    }
  }
  return true;
}

sparse::Coo<double> dup_heavy_coo(index_t nr, index_t nc, int nnz,
                                  std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  sparse::Coo<double> coo(nr, nc);
  coo.reserve(static_cast<std::size_t>(nnz));
  for (int k = 0; k < nnz; ++k) {
    coo.push(rng.between(0, nr - 1), rng.between(0, nc - 1),
             rng.uniform(-9.9, 9.9));
  }
  return coo;
}

constexpr sparse::DupPolicy kPolicies[] = {
    sparse::DupPolicy::kSum, sparse::DupPolicy::kKeepFirst,
    sparse::DupPolicy::kKeepLast, sparse::DupPolicy::kMax,
    sparse::DupPolicy::kMin};

void test_from_coo_pool_size_invariance() {
  util::ThreadPool pool1(1), pool2(2), pool8(8);
  for (const auto policy : kPolicies) {
    const auto serial =
        sparse::Csr<double>::from_coo(dup_heavy_coo(97, 41, 2300, 7), policy);
    for (util::ThreadPool* pool : {&pool1, &pool2, &pool8}) {
      CHECK(identical(
          sparse::Csr<double>::from_coo(dup_heavy_coo(97, 41, 2300, 7),
                                        policy, pool),
          serial));
    }
  }
}

void test_transpose_and_view_pool_size_invariance() {
  util::ThreadPool pool1(1), pool2(2), pool8(8);
  const auto a = sparse::Csr<double>::from_coo(dup_heavy_coo(211, 67, 3100, 9),
                                               sparse::DupPolicy::kSum);
  const auto serial_t = sparse::transpose(a);
  CHECK(serial_t.is_canonical());
  for (util::ThreadPool* pool : {&pool1, &pool2, &pool8}) {
    CHECK(identical(sparse::transpose(a, pool), serial_t));
  }
  // CscView must agree with the materialized transpose entry for entry,
  // at every pool size.
  for (util::ThreadPool* pool :
       {static_cast<util::ThreadPool*>(nullptr), &pool1, &pool8}) {
    const sparse::CscView<double> view(a, pool);
    CHECK_EQ(view.nrows(), serial_t.nrows());
    bool match = true;
    for (index_t i = 0; i < view.nrows(); ++i) {
      const auto vc = view.row_cols(i);
      const auto tc = serial_t.row_cols(i);
      match &= vc.size() == tc.size();
      if (!match) break;
      for (std::size_t k = 0; k < vc.size(); ++k) {
        match &= vc[k] == tc[k] && view.row_val(i, k) == serial_t.row_vals(i)[k];
      }
    }
    CHECK(match);
  }
}

void test_generators_pool_size_invariance() {
  util::ThreadPool pool1(1), pool2(2), pool8(8);
  util::ThreadPool* pools[] = {&pool1, &pool2, &pool8};

  const auto rmat_serial = graph::gen::rmat(9, 8, 0.57, 0.19, 0.19, 42);
  const auto er_serial = graph::gen::erdos_renyi(600, 0.01, 43);
  const auto multi_serial = graph::gen::random_multigraph(500, 9000, 44);
  const auto bip_serial = graph::gen::random_bipartite(300, 200, 7, 45);
  CHECK(rmat_serial.num_edges() == 512 * 8);
  CHECK(er_serial.num_edges() > 0);
  for (util::ThreadPool* pool : pools) {
    CHECK(same_edges(graph::gen::rmat(9, 8, 0.57, 0.19, 0.19, 42, pool),
                     rmat_serial));
    CHECK(same_edges(graph::gen::erdos_renyi(600, 0.01, 43, pool), er_serial));
    CHECK(same_edges(graph::gen::random_multigraph(500, 9000, 44, pool),
                     multi_serial));
    CHECK(same_edges(graph::gen::random_bipartite(300, 200, 7, 45, pool),
                     bip_serial));
  }

  auto weighted_serial = graph::gen::rmat(8, 4, 0.57, 0.19, 0.19, 46);
  graph::gen::randomize_weights(weighted_serial, 0.5, 3.5, 47);
  for (util::ThreadPool* pool : pools) {
    auto w = graph::gen::rmat(8, 4, 0.57, 0.19, 0.19, 46, pool);
    graph::gen::randomize_weights(w, 0.5, 3.5, 47, pool);
    CHECK(same_edges(w, weighted_serial));
  }
}

void test_incidence_and_end_to_end_pool_size_invariance() {
  util::ThreadPool pool1(1), pool2(2), pool8(8);
  const auto g = graph::gen::rmat(10, 8, 0.57, 0.19, 0.19, 48);
  const algebra::PlusTimes<double> p;

  const auto inc_serial = graph::incidence_arrays(g, p);
  CHECK(inc_serial.eout.is_canonical() && inc_serial.ein.is_canonical());
  CHECK_EQ(inc_serial.eout.nnz(), g.num_edges());
  for (util::ThreadPool* pool : {&pool1, &pool2, &pool8}) {
    const auto inc = graph::incidence_arrays(g, p, pool);
    CHECK(identical(inc.eout, inc_serial.eout));
    CHECK(identical(inc.ein, inc_serial.ein));
  }

  // Whole pipeline: generator → incidence → adjacency, byte-identical
  // for every pool size (generators included — the graph itself is a
  // pure function of the seed).
  const auto serial = graph::build_adjacency(g, p);
  for (util::ThreadPool* pool : {&pool1, &pool2, &pool8}) {
    const auto gp = graph::gen::rmat(10, 8, 0.57, 0.19, 0.19, 48, pool);
    CHECK(identical(graph::build_adjacency(gp, p, sparse::SpGemmAlgo::kAuto,
                                           pool),
                    serial));
  }
}

}  // namespace

int main() {
  test_from_coo_pool_size_invariance();
  test_transpose_and_view_pool_size_invariance();
  test_generators_pool_size_invariance();
  test_incidence_and_end_to_end_pool_size_invariance();
  return TEST_MAIN_RESULT();
}
