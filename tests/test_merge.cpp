/// \file test_merge.cpp
/// \brief Differential + edge-case suite for the parallel semiring CSR
///        ⊕-merge (sparse/merge.hpp): every engine output is bitwise
///        -compared against `merge_add_reference` (a deliberately
///        independent concatenate/stable-sort/fold-left oracle) across
///        pool sizes, and the Definition I.5 zero-dropping knob and the
///        exception-from-chunk semantics are pinned explicitly.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/merge.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include "test_util.hpp"

using namespace i2a;

namespace {

using i2a::test::csr_bitwise_equal;

double plus(const double& a, const double& b) { return a + b; }

sparse::Csr<double> random_csr(index_t nr, index_t nc, index_t nnz,
                               std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  sparse::Coo<double> coo(nr, nc);
  coo.reserve(static_cast<std::size_t>(nnz));
  for (index_t i = 0; i < nnz; ++i) {
    // Integer values keep FP + exact, so fold *order* differences would
    // still be caught while reassociation noise cannot hide them.
    coo.push(static_cast<index_t>(rng.next() % static_cast<std::uint64_t>(nr)),
             static_cast<index_t>(rng.next() % static_cast<std::uint64_t>(nc)),
             static_cast<double>(1 + rng.next() % 7));
  }
  return sparse::Csr<double>::from_coo(std::move(coo));
}

/// Engine vs oracle across pool sizes {serial, 1, 4, 8}, bitwise.
void check_matches_reference(const std::vector<const sparse::Csr<double>*>& runs,
                             const double* drop_zero = nullptr) {
  const auto expected = sparse::merge_add_reference(runs, plus, drop_zero);
  const auto serial = sparse::merge_add_k(runs, plus, nullptr, drop_zero);
  CHECK(csr_bitwise_equal(serial, expected));
  for (const std::size_t threads : {1u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    const auto got = sparse::merge_add_k(runs, plus, &pool, drop_zero);
    CHECK(csr_bitwise_equal(got, expected));
  }
}

void test_empty_delta() {
  const auto master = random_csr(40, 40, 120, 1);
  const sparse::Csr<double> empty(
      40, 40, std::vector<index_t>(41, 0), {}, {});
  check_matches_reference({&master, &empty});
  check_matches_reference({&empty, &master});
  check_matches_reference({&empty, &empty});
  // Merging an empty delta is the identity, bit for bit.
  util::ThreadPool pool(4);
  CHECK(csr_bitwise_equal(sparse::merge_add(master, empty, plus, &pool), master));
}

void test_disjoint_delta() {
  // Master in columns [0, 20), delta in columns [20, 40): pure
  // interleave, ⊕ never fires.
  sparse::Coo<double> ca(30, 40), cb(30, 40);
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) {
    ca.push(static_cast<index_t>(rng.next() % 30),
            static_cast<index_t>(rng.next() % 20), 2.0);
    cb.push(static_cast<index_t>(rng.next() % 30),
            static_cast<index_t>(20 + rng.next() % 20), 3.0);
  }
  const auto a = sparse::Csr<double>::from_coo(std::move(ca));
  const auto b = sparse::Csr<double>::from_coo(std::move(cb));
  check_matches_reference({&a, &b});
  const auto merged = sparse::merge_add(a, b, plus);
  CHECK_EQ(merged.nnz(), a.nnz() + b.nnz());
}

void test_fully_overlapping_delta() {
  // Identical patterns: every entry folds, nnz stays put, values double.
  const auto a = random_csr(25, 25, 200, 9);
  check_matches_reference({&a, &a});
  const auto merged = sparse::merge_add(a, a, plus);
  CHECK_EQ(merged.nnz(), a.nnz());
  for (index_t r = 0; r < a.nrows(); ++r) {
    const auto mv = merged.row_vals(r);
    const auto av = a.row_vals(r);
    for (std::size_t k = 0; k < mv.size(); ++k) {
      CHECK_EQ(mv[k], 2 * av[k]);
    }
  }
}

void test_kway_random() {
  // The ladder's shape: several runs of very different sizes, merged in
  // one k-way pass, against the oracle, all pool sizes.
  std::vector<sparse::Csr<double>> owned;
  owned.push_back(random_csr(60, 50, 400, 21));
  owned.push_back(random_csr(60, 50, 100, 22));
  owned.push_back(random_csr(60, 50, 25, 23));
  owned.push_back(random_csr(60, 50, 7, 24));
  owned.push_back(sparse::Csr<double>(
      60, 50, std::vector<index_t>(61, 0), {}, {}));
  std::vector<const sparse::Csr<double>*> runs;
  for (const auto& m : owned) runs.push_back(&m);
  check_matches_reference(runs);
  // Fold order is run order: with a non-commutative ⊕ (keep-right),
  // permuting the runs must change the bytes exactly as the oracle says.
  const auto keep_right = [](const double&, const double& y) { return y; };
  std::vector<const sparse::Csr<double>*> reversed(runs.rbegin(),
                                                   runs.rend());
  const auto fwd = sparse::merge_add_k(runs, keep_right);
  const auto rev = sparse::merge_add_k(reversed, keep_right);
  CHECK(csr_bitwise_equal(fwd,
                      sparse::merge_add_reference(runs, keep_right)));
  CHECK(csr_bitwise_equal(rev,
                      sparse::merge_add_reference(reversed, keep_right)));
}

void test_explicit_zero_entries() {
  // Definition I.5: with the drop_zero knob, stored zeros are absent from
  // the output — whether they were stored in an input or manufactured by
  // the fold (+1 ⊕ -1).
  sparse::Coo<double> ca(4, 4), cb(4, 4);
  ca.push(0, 0, 0.0);   // stored zero, unmatched: dropped
  ca.push(0, 1, 1.0);   // survives
  ca.push(1, 2, 1.0);   // +1 ⊕ -1 → 0: dropped
  ca.push(2, 3, 2.0);   // survives, folded with 3.0
  cb.push(1, 2, -1.0);
  cb.push(2, 3, 3.0);
  cb.push(3, 3, 0.0);   // stored zero in the delta: dropped
  const auto a = sparse::Csr<double>::from_coo(std::move(ca));
  const auto b = sparse::Csr<double>::from_coo(std::move(cb));
  const double zero = 0.0;
  check_matches_reference({&a, &b}, &zero);
  const auto merged = sparse::merge_add(a, b, plus, nullptr, &zero);
  CHECK_EQ(merged.nnz(), 2);
  CHECK_EQ(merged.at(0, 1, -1.0), 1.0);
  CHECK_EQ(merged.at(2, 3, -1.0), 5.0);
  CHECK_EQ(merged.at(0, 0, -1.0), -1.0);  // absent, not stored-zero
  CHECK_EQ(merged.at(1, 2, -1.0), -1.0);
  CHECK_EQ(merged.at(3, 3, -1.0), -1.0);
  CHECK(merged.is_canonical());
  // Without the knob every stored entry survives, zeros included — the
  // byte-compatible default for SpGEMM-produced inputs.
  const auto kept = sparse::merge_add(a, b, plus);
  CHECK_EQ(kept.nnz(), 5);
  CHECK_EQ(kept.at(0, 0, -1.0), 0.0);
  CHECK_EQ(kept.at(1, 2, -1.0), 0.0);
}

void test_exception_from_chunk() {
  // ⊕ throwing inside a worker chunk must surface on the caller, under
  // every pool size, for both the value-reading count pass (drop_zero
  // set) and the scatter pass.
  const auto a = random_csr(64, 32, 300, 31);
  const auto b = random_csr(64, 32, 300, 32);
  struct Boom {};
  const auto throwing = [](const double&, const double&) -> double {
    throw Boom{};
  };
  const double zero = 0.0;
  for (const double* dz : {static_cast<const double*>(nullptr), &zero}) {
    bool threw = false;
    try {
      (void)sparse::merge_add(a, b, throwing, nullptr, dz);
    } catch (const Boom&) {
      threw = true;
    }
    CHECK(threw);
    for (const std::size_t threads : {2u, 8u}) {
      util::ThreadPool pool(threads);
      threw = false;
      try {
        (void)sparse::merge_add(a, b, throwing, &pool, dz);
      } catch (const Boom&) {
        threw = true;
      }
      CHECK(threw);
      // The pool must remain serviceable after capturing the throw.
      const auto ok = sparse::merge_add(a, b, plus, &pool);
      CHECK(csr_bitwise_equal(
          ok, sparse::merge_add_reference<double>({&a, &b}, plus)));
    }
  }
}

void test_shape_mismatch_rejected() {
  const auto a = random_csr(10, 10, 20, 41);
  const auto b = random_csr(10, 11, 20, 42);
  bool threw = false;
  try {
    (void)sparse::merge_add(a, b, plus);
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  CHECK(threw);
  threw = false;
  try {
    (void)sparse::merge_add_k(std::vector<const sparse::Csr<double>*>{},
                              plus);
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  CHECK(threw);
}

void test_zero_row_matrices() {
  const sparse::Csr<double> a(0, 5, {0}, {}, {});
  const sparse::Csr<double> b(0, 5, {0}, {}, {});
  util::ThreadPool pool(4);
  const auto merged = sparse::merge_add(a, b, plus, &pool);
  CHECK_EQ(merged.nrows(), 0);
  CHECK_EQ(merged.nnz(), 0);
}

}  // namespace

int main() {
  test_empty_delta();
  test_disjoint_delta();
  test_fully_overlapping_delta();
  test_kway_random();
  test_explicit_zero_entries();
  test_exception_from_chunk();
  test_shape_mismatch_rejected();
  test_zero_row_matrices();
  return TEST_MAIN_RESULT();
}
