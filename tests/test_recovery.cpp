/// \file test_recovery.cpp
/// \brief Crash-safety suite for the durable streaming path (DESIGN.md
///        §12): frame/CRC mechanics, WAL replay, checkpoint round-trips,
///        manifest refusal, a corruption matrix (truncation + bit
///        flips), a durable failpoint sweep, and seeded SIGKILL crash
///        trials.
///
/// The binding contract under test: after ANY crash, `recover()` yields
/// a builder whose adjacency is byte-identical to a serial rebuild of
/// some *prefix* of the ingested batches — and that prefix covers every
/// batch whose `ingest()` returned before the kill (acknowledged ⇒
/// recovered, for both `kFsyncEachBatch` and, under SIGKILL, `kAsync`).
/// Corrupted durable state — which no crash schedule of ours can
/// produce, only bad media — must yield either an intact shorter prefix
/// or a typed `RecoveryError`; never UB, never silently wrong bytes
/// (the ASan/UBSan legs run this same binary).
///
/// Crash trials re-exec this binary as a writer child (`--writer`) that
/// acknowledges each durable batch into an ack file, SIGKILL it at a
/// seeded random point, and recover in the parent. `--trials N --seed S`
/// runs only the trial loop — that is what tools/crash_harness.sh and
/// the CI crash-injection leg drive (≥200 iterations, seed logged).
/// A failing trial prints `ARTIFACT <dir>` and keeps the directory.

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "algebra/pairs.hpp"
#include "graph/generators.hpp"
#include "graph/incidence.hpp"
#include "stream/adjacency_builder.hpp"
#include "stream/checkpoint.hpp"
#include "stream/sharded_builder.hpp"
#include "stream/wal.hpp"
#include "util/failpoint.hpp"
#include "util/io.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include "test_util.hpp"

using namespace i2a;
using i2a::test::csr_bitwise_equal;

namespace {

using PT = algebra::PlusTimes<double>;
using Builder = stream::AdjacencyBuilder<PT>;
using Sharded = stream::ShardedBuilder<PT>;
using stream::Durability;
using stream::Options;
using stream::RecoveryError;

constexpr index_t kN = 24;

// ---------------------------------------------------------------------------
// Workload + oracle (same shapes as test_failpoints).

graph::Graph rec_graph(index_t n, index_t m, std::uint64_t seed) {
  auto g = graph::gen::random_multigraph(n, m, seed);
  util::Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (auto& e : g.edges()) {
    e.weight = static_cast<double>(1 + rng.next() % 9);
  }
  return g;
}

std::vector<std::vector<graph::Edge>> make_batches(const graph::Graph& g,
                                                   std::size_t batch) {
  std::vector<std::vector<graph::Edge>> out;
  const auto& edges = g.edges();
  for (std::size_t lo = 0; lo < edges.size(); lo += batch) {
    const std::size_t hi = std::min(edges.size(), lo + batch);
    out.emplace_back(edges.begin() + static_cast<std::ptrdiff_t>(lo),
                     edges.begin() + static_cast<std::ptrdiff_t>(hi));
  }
  return out;
}

/// Serial rebuild over batches [0, k) — the byte oracle.
sparse::Csr<double> oracle_prefix(
    index_t n, const std::vector<std::vector<graph::Edge>>& batches,
    std::size_t k) {
  const PT p{};
  graph::Graph prefix(n);
  for (std::size_t b = 0; b < k; ++b) {
    for (const auto& e : batches[b]) prefix.add_edge(e.src, e.dst, e.weight);
  }
  return graph::adjacency_array(p, graph::incidence_arrays(prefix, p));
}

/// The crash-trial workload, derived from the trial seed so the writer
/// child and the recovering parent agree without communicating.
std::vector<std::vector<graph::Edge>> trial_batches(std::uint64_t seed) {
  return make_batches(rec_graph(kN, 192, seed ^ 0xC0FFEEULL), 8);
}

// ---------------------------------------------------------------------------
// Temp-dir scaffolding. Trials keep their directory on failure (the
// artifact the harness uploads); everything else cleans up.

std::string make_temp_dir() {
  std::string tmpl = "/tmp/i2a-recovery-XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) {
    std::perror("mkdtemp");
    std::exit(2);
  }
  return tmpl;
}

void remove_tree(const std::string& dir) {
  for (const std::string& name : util::list_dir(dir)) {
    const std::string path = dir + "/" + name;
    struct stat st = {};
    if (::lstat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      remove_tree(path);
    } else {
      ::unlink(path.c_str());
    }
  }
  ::rmdir(dir.c_str());
}

struct TempDir {
  std::string path = make_temp_dir();
  bool keep = false;
  ~TempDir() {
    if (!keep) remove_tree(path);
  }
};

void copy_file_bytes(const std::string& from, const std::string& to) {
  const auto bytes = util::read_file(from);
  util::File f = util::File::create_append(to);
  f.write_fully(bytes.data(), bytes.size());
  f.close();
}

void copy_dir_flat(const std::string& from, const std::string& to) {
  for (const std::string& name : util::list_dir(from)) {
    copy_file_bytes(from + "/" + name, to + "/" + name);
  }
}

Options durable_opts(const std::string& dir,
                     Durability durability = Durability::kFsyncEachBatch) {
  Options o;
  o.wal_dir = dir;
  o.durability = durability;
  return o;
}

// ---------------------------------------------------------------------------
// Frame / CRC / encoding mechanics.

void test_crc32c_vectors() {
  // The canonical CRC-32C check value: "123456789" -> 0xE3069283.
  const char* msg = "123456789";
  CHECK_EQ(util::crc32c(msg, 9), 0xE3069283U);
  CHECK_EQ(util::crc32c(msg, 0), 0U);
  // Incremental == one-shot via the seed parameter's complement chain is
  // not part of the API; what matters is sensitivity: any byte change
  // changes the sum.
  std::string other = msg;
  other[4] ^= 1;
  CHECK(util::crc32c(other.data(), 9) != 0xE3069283U);
}

void test_byte_codec_roundtrip() {
  util::ByteWriter w;
  w.u32(0xDEADBEEFU);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.5);
  w.str("manifest");
  util::ByteReader r(w.buffer());
  CHECK_EQ(r.u32(), 0xDEADBEEFU);
  CHECK_EQ(r.u64(), 0x0123456789ABCDEFULL);
  CHECK_EQ(r.i64(), -42);
  CHECK_EQ(r.f64(), 3.5);
  CHECK(r.str() == "manifest");
  CHECK(r.done());
  // Underrun is a typed IoError, never an out-of-bounds read.
  bool threw = false;
  try {
    r.u32();
  } catch (const util::IoError&) {
    threw = true;
  }
  CHECK(threw);
}

void test_frame_reader_classification() {
  TempDir td;
  const std::string path = td.path + "/frames.bin";
  std::vector<std::vector<unsigned char>> payloads;
  {
    util::File f = util::File::create_append(path);
    for (unsigned i = 0; i < 4; ++i) {
      std::vector<unsigned char> p(7 * (i + 1));
      for (std::size_t j = 0; j < p.size(); ++j) {
        p[j] = static_cast<unsigned char>(i * 31 + j);
      }
      util::write_frame(f, p);
      payloads.push_back(std::move(p));
    }
    f.close();
  }
  const auto image = util::read_file(path);
  // Clean read: every frame back, then kEnd.
  {
    util::FrameReader reader(image);
    std::vector<unsigned char> out;
    for (const auto& expect : payloads) {
      CHECK(reader.next(out) == util::FrameStatus::kOk);
      CHECK(out == expect);
    }
    CHECK(reader.next(out) == util::FrameStatus::kEnd);
  }
  // Truncation at EVERY byte length: the reader yields exactly the
  // frames that fit and classifies any leftover as kTorn with offset()
  // at the last whole-frame boundary — the ftruncate target.
  std::vector<std::uint64_t> boundaries = {0};
  {
    util::FrameReader reader(image);
    std::vector<unsigned char> out;
    while (reader.next(out) == util::FrameStatus::kOk) {
      boundaries.push_back(reader.offset());
    }
  }
  for (std::size_t len = 0; len <= image.size(); ++len) {
    util::FrameReader reader(image.data(), len);
    std::vector<unsigned char> out;
    std::size_t got = 0;
    util::FrameStatus st;
    while ((st = reader.next(out)) == util::FrameStatus::kOk) ++got;
    std::size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= len) {
      ++whole;
    }
    CHECK_EQ(got, whole);
    if (len == boundaries[whole]) {
      CHECK(st == util::FrameStatus::kEnd);
    } else {
      CHECK(st == util::FrameStatus::kTorn);
      CHECK_EQ(reader.offset(), boundaries[whole]);
    }
  }
  // Bit flips: a flip anywhere inside a frame makes that frame torn, and
  // the frames before it still decode.
  for (std::size_t pos = 0; pos < image.size(); pos += 5) {
    auto flipped = image;
    flipped[pos] ^= static_cast<unsigned char>(1U << (pos % 8));
    util::FrameReader reader(flipped);
    std::vector<unsigned char> out;
    std::size_t got = 0;
    while (reader.next(out) == util::FrameStatus::kOk) {
      CHECK(out == payloads[got]);
      ++got;
    }
    CHECK(got < payloads.size());  // the damaged frame never decodes
  }
}

// ---------------------------------------------------------------------------
// WAL append/replay mechanics (below the builder).

void test_wal_replay_roundtrip() {
  TempDir td;
  const auto batches = trial_batches(11);
  const stream::WalManifest manifest{"test/8", 24, 1, 0};
  {
    // Tiny segments force rotation: the chain must replay across
    // segment boundaries in epoch order.
    stream::Wal wal(td.path, manifest, Durability::kFsyncEachBatch,
                    /*segment_bytes=*/256, /*seqno=*/0, /*start_epoch=*/0);
    for (std::size_t b = 0; b < batches.size(); ++b) {
      wal.append(b + 1, std::span<const graph::Edge>(batches[b].data(),
                                                     batches[b].size()));
    }
    wal.close();
  }
  const auto segments = stream::Wal::list_segments(td.path);
  CHECK(segments.size() > 1);  // rotation actually happened
  for (const auto& seg : segments) CHECK(seg.header_ok);

  std::vector<std::vector<graph::Edge>> replayed;
  const auto stats = stream::replay_wal(
      td.path, manifest, 0,
      [&](std::uint64_t epoch, const std::vector<graph::Edge>& edges) {
        CHECK_EQ(epoch, replayed.size() + 1);
        replayed.push_back(edges);
      });
  CHECK_EQ(stats.batches_replayed, batches.size());
  CHECK_EQ(stats.tail_bytes_truncated, 0u);
  CHECK_EQ(replayed.size(), batches.size());
  for (std::size_t b = 0; b < batches.size(); ++b) {
    CHECK_EQ(replayed[b].size(), batches[b].size());
    for (std::size_t i = 0; i < batches[b].size(); ++i) {
      CHECK_EQ(replayed[b][i].src, batches[b][i].src);
      CHECK_EQ(replayed[b][i].dst, batches[b][i].dst);
      CHECK_EQ(replayed[b][i].weight, batches[b][i].weight);
    }
  }
  // A checkpoint at epoch k turns the prefix into skips.
  const std::uint64_t k = batches.size() / 2;
  std::size_t replayed_after = 0;
  const auto stats2 = stream::replay_wal(
      td.path, manifest, k,
      [&](std::uint64_t epoch, const std::vector<graph::Edge>&) {
        CHECK(epoch > k);
        ++replayed_after;
      });
  CHECK_EQ(stats2.batches_skipped, k);
  CHECK_EQ(replayed_after, batches.size() - k);
}

// ---------------------------------------------------------------------------
// Builder-level recovery.

void test_recover_clean() {
  TempDir td;
  const auto batches = trial_batches(21);
  for (const Durability mode :
       {Durability::kFsyncEachBatch, Durability::kAsync}) {
    const std::string dir =
        td.path + (mode == Durability::kAsync ? "/async" : "/fsync");
    {
      Builder b(kN, PT{}, durable_opts(dir, mode));
      for (const auto& batch : batches) b.ingest(batch);
      CHECK(csr_bitwise_equal(
          b.adjacency(), oracle_prefix(kN, batches, batches.size())));
    }
    Builder r = Builder::recover(kN, PT{}, durable_opts(dir, mode));
    CHECK_EQ(r.stats().batches, batches.size());
    CHECK_EQ(r.stats().edges, 192u);
    CHECK(csr_bitwise_equal(r.adjacency(),
                            oracle_prefix(kN, batches, batches.size())));
    // The recovered builder keeps working: new ingests extend the same
    // log and survive another recovery.
    r.ingest(batches[0]);
    graph::Graph extended(kN);
    for (const auto& batch : batches) {
      for (const auto& e : batch) extended.add_edge(e.src, e.dst, e.weight);
    }
    for (const auto& e : batches[0]) {
      extended.add_edge(e.src, e.dst, e.weight);
    }
    const PT p{};
    const auto extended_oracle =
        graph::adjacency_array(p, graph::incidence_arrays(extended, p));
    CHECK(csr_bitwise_equal(r.adjacency(), extended_oracle));
    { Builder drop = std::move(r); }  // seal the log
    Builder r2 = Builder::recover(kN, PT{}, durable_opts(dir, mode));
    CHECK_EQ(r2.stats().batches, batches.size() + 1);
    CHECK(csr_bitwise_equal(r2.adjacency(), extended_oracle));
  }
}

void test_recover_empty_dir_is_fresh() {
  TempDir td;
  Builder r = Builder::recover(kN, PT{}, durable_opts(td.path + "/new"));
  CHECK_EQ(r.stats().batches, 0u);
  const auto batches = trial_batches(31);
  r.ingest(batches[0]);
  CHECK(csr_bitwise_equal(r.adjacency(), oracle_prefix(kN, batches, 1)));
}

void test_recover_with_checkpoint() {
  TempDir td;
  const auto batches = trial_batches(41);
  util::ThreadPool pool(2);
  Options opts = durable_opts(td.path);
  opts.pool = &pool;
  opts.compaction = stream::Compaction::kBackground;
  opts.checkpoint_every = 3;
  opts.wal_segment_bytes = 256;  // rotate often so retirement can bite
  {
    Builder b(kN, PT{}, opts);
    for (const auto& batch : batches) b.ingest(batch);
    b.drain();
    CHECK(b.stats().checkpoints > 0);
  }
  // Checkpoint GC keeps one file; segment retirement pruned the prefix.
  std::size_t ckpts = 0;
  std::size_t segments = 0;
  for (const std::string& name : util::list_dir(td.path)) {
    if (stream::parse_checkpoint_name(name)) ++ckpts;
    if (stream::parse_wal_segment_name(name)) ++segments;
  }
  CHECK_EQ(ckpts, 1u);
  CHECK(segments < batches.size());
  // Recovery restores the checkpointed ladder + WAL suffix exactly.
  Builder r = Builder::recover(kN, PT{}, durable_opts(td.path));
  CHECK_EQ(r.stats().batches, batches.size());
  CHECK_EQ(r.stats().edges, 192u);
  CHECK(csr_bitwise_equal(r.adjacency(),
                          oracle_prefix(kN, batches, batches.size())));
}

void test_sharded_recover() {
  TempDir td;
  const auto batches = trial_batches(51);
  util::ThreadPool pool(2);
  Options opts = durable_opts(td.path);
  opts.pool = &pool;
  opts.compaction = stream::Compaction::kBackground;
  opts.checkpoint_every = 4;
  {
    Sharded sb(kN, 4, PT{}, opts);
    for (const auto& batch : batches) sb.ingest(batch);
    sb.drain();
    CHECK(sb.stats().checkpoints > 0);
  }
  Sharded r = Sharded::recover(kN, 4, PT{}, durable_opts(td.path));
  CHECK_EQ(r.stats().batches, batches.size());
  CHECK(csr_bitwise_equal(r.adjacency(),
                          oracle_prefix(kN, batches, batches.size())));
  // Replayed routing is deterministic: continue ingesting, recover
  // again, and the fused bytes still match a serial rebuild.
  r.ingest(batches[0]);
  graph::Graph extended(kN);
  for (const auto& batch : batches) {
    for (const auto& e : batch) extended.add_edge(e.src, e.dst, e.weight);
  }
  for (const auto& e : batches[0]) extended.add_edge(e.src, e.dst, e.weight);
  const PT p{};
  const auto extended_oracle =
      graph::adjacency_array(p, graph::incidence_arrays(extended, p));
  CHECK(csr_bitwise_equal(r.adjacency(), extended_oracle));
}

void test_manifest_refusals() {
  TempDir td;
  const auto batches = trial_batches(61);
  {
    Builder b(kN, PT{}, durable_opts(td.path + "/single"));
    for (std::size_t i = 0; i < 3; ++i) b.ingest(batches[i]);
  }
  const auto expect_recovery_error = [](auto&& fn) {
    bool threw = false;
    try {
      fn();
    } catch (const RecoveryError&) {
      threw = true;
    }
    CHECK(threw);
  };
  // Wrong vertex count.
  expect_recovery_error([&] {
    Builder::recover(kN + 1, PT{}, durable_opts(td.path + "/single"));
  });
  // Wrong weighting.
  expect_recovery_error([&] {
    Options o = durable_opts(td.path + "/single");
    o.weighting = stream::Weighting::kWeighted;
    Builder::recover(kN, PT{}, o);
  });
  // Wrong algebra instantiation.
  expect_recovery_error([&] {
    stream::AdjacencyBuilder<algebra::MinPlus<double>>::recover(
        kN, algebra::MinPlus<double>{}, durable_opts(td.path + "/single"));
  });
  // Wrong shard count, both directions.
  {
    Sharded sb(kN, 4, PT{}, durable_opts(td.path + "/sharded"));
    sb.ingest(batches[0]);
  }
  expect_recovery_error([&] {
    Sharded::recover(kN, 2, PT{}, durable_opts(td.path + "/sharded"));
  });
  expect_recovery_error([&] {
    Builder::recover(kN, PT{}, durable_opts(td.path + "/sharded"));
  });
  // A fresh builder refuses a directory holding recoverable state —
  // constructing over it would be silent data loss.
  bool refused = false;
  try {
    Builder b(kN, PT{}, durable_opts(td.path + "/single"));
  } catch (const std::invalid_argument&) {
    refused = true;
  }
  CHECK(refused);
}

// ---------------------------------------------------------------------------
// Corruption matrix: truncation at/around every frame boundary, then a
// bit-flip sweep, over both the WAL and a checkpoint. Every outcome must
// be an intact prefix or a typed RecoveryError — never UB, never wrong
// bytes (the ASan/UBSan legs run this matrix too).

bool recovers_to_some_prefix(
    const std::string& dir,
    const std::vector<std::vector<graph::Edge>>& batches) {
  try {
    Builder r = Builder::recover(kN, PT{}, durable_opts(dir));
    const auto epoch = static_cast<std::size_t>(r.stats().batches);
    CHECK(epoch <= batches.size());
    CHECK(csr_bitwise_equal(r.adjacency(), oracle_prefix(kN, batches, epoch)));
    return true;
  } catch (const RecoveryError&) {
    return false;  // typed refusal is an accepted outcome
  }
}

void test_corruption_truncation_matrix() {
  TempDir td;
  const auto batches = trial_batches(71);
  const std::string src = td.path + "/src";
  {
    Builder b(kN, PT{}, durable_opts(src));
    for (std::size_t i = 0; i < 6; ++i) b.ingest(batches[i]);
  }
  const auto segments = stream::Wal::list_segments(src);
  CHECK_EQ(segments.size(), 1u);
  const auto image = util::read_file(segments[0].path);
  // Frame boundaries of the one segment.
  std::vector<std::uint64_t> boundaries = {0};
  {
    util::FrameReader reader(image);
    std::vector<unsigned char> out;
    while (reader.next(out) == util::FrameStatus::kOk) {
      boundaries.push_back(reader.offset());
    }
  }
  CHECK_EQ(boundaries.size(), 8u);  // header + 6 batches + start
  std::size_t cases = 0;
  for (std::size_t bi = 0; bi < boundaries.size(); ++bi) {
    const std::uint64_t b = boundaries[bi];
    std::vector<std::uint64_t> lens = {b};
    if (b > 0) lens.push_back(b - 1);
    if (b < image.size()) lens.push_back(b + 1);
    if (bi + 1 < boundaries.size()) {
      lens.push_back(b + (boundaries[bi + 1] - b) / 2);  // mid-frame
    }
    for (const std::uint64_t len : lens) {
      const std::string dir = td.path + "/t" + std::to_string(cases++);
      util::ensure_dir(dir);
      copy_dir_flat(src, dir);
      {
        util::File f = util::File::open_append(
            dir + "/" + stream::wal_segment_name(0));
        f.truncate(len);
        f.close();
      }
      // Tail truncation of the last (only) segment is always repairable:
      // recovery must SUCCEED with the longest intact prefix.
      Builder r = Builder::recover(kN, PT{}, durable_opts(dir));
      const auto epoch = static_cast<std::size_t>(r.stats().batches);
      // Whole batch frames that survive: boundary index - 1 (header).
      std::size_t whole = 0;
      while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= len) {
        ++whole;
      }
      const std::size_t expect = whole == 0 ? 0 : whole - 1;
      CHECK_EQ(epoch, expect);
      CHECK(csr_bitwise_equal(r.adjacency(),
                              oracle_prefix(kN, batches, epoch)));
      // Idempotent: the repair left a clean log; a second recovery of
      // the same directory replays the identical prefix.
      { Builder drop = std::move(r); }
      Builder r2 = Builder::recover(kN, PT{}, durable_opts(dir));
      CHECK_EQ(static_cast<std::size_t>(r2.stats().batches), epoch);
      CHECK(csr_bitwise_equal(r2.adjacency(),
                              oracle_prefix(kN, batches, epoch)));
    }
  }
  std::printf("  truncation matrix: %zu cases\n", cases);
}

void test_corruption_sealed_segment_is_refused() {
  TempDir td;
  const auto batches = trial_batches(81);
  const std::string dir = td.path + "/multi";
  {
    Options opts = durable_opts(dir);
    opts.wal_segment_bytes = 256;  // rotate every batch or two
    Builder b(kN, PT{}, opts);
    for (std::size_t i = 0; i < 6; ++i) b.ingest(batches[i]);
  }
  const auto segments = stream::Wal::list_segments(dir);
  CHECK(segments.size() >= 3);
  // Mid-frame damage in a SEALED (non-last) segment cannot be SIGKILL
  // residue — recovery must refuse, not silently skip recorded batches.
  {
    util::File f = util::File::open_append(segments[1].path);
    f.truncate(segments[1].path.size() % 7 + 20);  // inside some frame
    f.close();
  }
  bool threw = false;
  try {
    Builder::recover(kN, PT{}, durable_opts(dir));
  } catch (const RecoveryError&) {
    threw = true;
  }
  CHECK(threw);
}

void test_corruption_bitflip_matrix() {
  TempDir td;
  const auto batches = trial_batches(91);
  const std::string src = td.path + "/src";
  {
    Builder b(kN, PT{}, durable_opts(src));
    for (std::size_t i = 0; i < 5; ++i) b.ingest(batches[i]);
  }
  const std::string seg_name = stream::wal_segment_name(0);
  const auto image = util::read_file(src + "/" + seg_name);
  std::size_t cases = 0;
  std::size_t refused = 0;
  for (std::size_t pos = 0; pos < image.size(); pos += 13) {
    auto flipped = image;
    flipped[pos] ^= static_cast<unsigned char>(1U << (pos % 8));
    const std::string dir = td.path + "/f" + std::to_string(cases++);
    util::ensure_dir(dir);
    {
      util::File f = util::File::create_append(dir + "/" + seg_name);
      f.write_fully(flipped.data(), flipped.size());
      f.close();
    }
    if (!recovers_to_some_prefix(dir, batches)) ++refused;
  }
  std::printf("  WAL bit-flip matrix: %zu cases, %zu typed refusals\n",
              cases, refused);
}

void test_corruption_checkpoint_bitflips() {
  TempDir td;
  const auto batches = trial_batches(101);
  const std::string src = td.path + "/src";
  util::ThreadPool pool(1);
  Options opts = durable_opts(src);
  opts.pool = &pool;
  opts.checkpoint_every = 3;
  {
    Builder b(kN, PT{}, opts);
    for (const auto& batch : batches) b.ingest(batch);
    b.drain();
    CHECK(b.stats().checkpoints > 0);
  }
  std::string ckpt_name;
  for (const std::string& name : util::list_dir(src)) {
    if (stream::parse_checkpoint_name(name)) ckpt_name = name;
  }
  CHECK(!ckpt_name.empty());
  const auto image = util::read_file(src + "/" + ckpt_name);
  std::size_t cases = 0;
  std::size_t fell_back = 0;
  for (std::size_t pos = 0; pos < image.size(); pos += 17) {
    auto flipped = image;
    flipped[pos] ^= static_cast<unsigned char>(1U << (pos % 8));
    const std::string dir = td.path + "/c" + std::to_string(cases++);
    util::ensure_dir(dir);
    copy_dir_flat(src, dir);
    util::remove_file(dir + "/" + ckpt_name);
    {
      util::File f = util::File::create_append(dir + "/" + ckpt_name);
      f.write_fully(flipped.data(), flipped.size());
      f.close();
    }
    // A flip lands in some frame -> its CRC fails -> the checkpoint is
    // rejected as corrupt and recovery falls back to pure WAL replay
    // (every segment is still present here). Either way the outcome is
    // a prefix or a typed error, never wrong bytes.
    if (recovers_to_some_prefix(dir, batches)) ++fell_back;
  }
  CHECK(fell_back > 0);  // fallback path actually exercised
  std::printf("  checkpoint bit-flip matrix: %zu cases, %zu recovered\n",
              cases, fell_back);
}

// ---------------------------------------------------------------------------
// Durable failpoint sweep — the wal.append.*, checkpoint.write, and
// recover.replay sites slot into the PR 8 injection methodology:
// exercise each site and assert its documented guarantee class.

#if I2A_FAILPOINTS_ENABLED

using Reg = util::FailpointRegistry;
using Sched = Reg::Schedule;

/// wal.append.write / wal.append.fsync: strong guarantee. A failed
/// append consumed nothing — in memory (epoch, bytes) or on disk (the
/// rollback ftruncate) — and the retry extends the same segment.
void test_wal_append_failpoints() {
  const auto batches = trial_batches(111);
  for (const char* site : {"wal.append.write", "wal.append.fsync"}) {
    TempDir td;
    Builder b(kN, PT{}, durable_opts(td.path));
    b.ingest(batches[0]);
    const std::string seg = td.path + "/" + stream::wal_segment_name(0);
    const std::uint64_t disk_before = util::read_file(seg).size();
    {
      util::ScopedFailpoint fp(site, Sched::once());
      bool threw = false;
      try {
        b.ingest(batches[1]);
      } catch (const util::FailpointError&) {
        threw = true;
      }
      CHECK(threw);
    }
    CHECK_EQ(b.stats().batches, 1u);  // nothing consumed
    CHECK_EQ(util::read_file(seg).size(), disk_before);  // rolled back
    b.ingest(batches[1]);  // retry succeeds, same epoch slot
    CHECK_EQ(b.stats().batches, 2u);
    { Builder drop = std::move(b); }
    Builder r = Builder::recover(kN, PT{}, durable_opts(td.path));
    CHECK_EQ(r.stats().batches, 2u);
    CHECK(csr_bitwise_equal(r.adjacency(), oracle_prefix(kN, batches, 2)));
  }
}

/// checkpoint.write: deferred-error class. The ingest that crossed the
/// boundary returns normally; the failure arrives via drain() exactly
/// once; the temp file is gone; the next boundary checkpoints fine.
void test_checkpoint_write_failpoint() {
  TempDir td;
  const auto batches = trial_batches(121);
  util::ThreadPool workerless(1);  // checkpoint task runs inside ingest
  Options opts = durable_opts(td.path);
  opts.pool = &workerless;
  opts.checkpoint_every = 2;
  Builder b(kN, PT{}, opts);
  b.ingest(batches[0]);
  {
    util::ScopedFailpoint fp("checkpoint.write", Sched::once());
    b.ingest(batches[1]);  // boundary: checkpoint scheduled and fails
  }
  bool threw = false;
  try {
    b.drain();
  } catch (const util::FailpointError&) {
    threw = true;
  }
  CHECK(threw);
  b.drain();  // exactly once
  CHECK_EQ(b.stats().checkpoints, 0u);
  for (const std::string& name : util::list_dir(td.path)) {
    CHECK(name.find(".tmp") == std::string::npos);  // cleaned up
    CHECK(!stream::parse_checkpoint_name(name));    // nothing half-made
  }
  b.ingest(batches[2]);
  b.ingest(batches[3]);  // next boundary: succeeds
  b.drain();
  CHECK_EQ(b.stats().checkpoints, 1u);
  { Builder drop = std::move(b); }
  Builder r = Builder::recover(kN, PT{}, durable_opts(td.path));
  CHECK_EQ(r.stats().batches, 4u);
  CHECK(csr_bitwise_equal(r.adjacency(), oracle_prefix(kN, batches, 4)));
}

/// recover.replay: a crash inside recovery itself. The throwing
/// recover() must leave the directory replayable — the retry recovers
/// everything.
void test_recover_replay_failpoint() {
  TempDir td;
  const auto batches = trial_batches(131);
  {
    Builder b(kN, PT{}, durable_opts(td.path));
    for (std::size_t i = 0; i < 4; ++i) b.ingest(batches[i]);
  }
  {
    util::ScopedFailpoint fp("recover.replay", Sched::nth(2));
    bool threw = false;
    try {
      Builder r = Builder::recover(kN, PT{}, durable_opts(td.path));
    } catch (const util::FailpointError&) {
      threw = true;
    }
    CHECK(threw);
  }
  Builder r = Builder::recover(kN, PT{}, durable_opts(td.path));
  CHECK_EQ(r.stats().batches, 4u);
  CHECK(csr_bitwise_equal(r.adjacency(), oracle_prefix(kN, batches, 4)));
}

#endif  // I2A_FAILPOINTS_ENABLED

// ---------------------------------------------------------------------------
// SIGKILL crash trials. The parent re-execs this binary as a writer
// child, kills it at a seeded random point, and holds recovery to the
// acknowledged-prefix contract. Both durability modes are binding under
// SIGKILL (the kernel keeps the page cache); kFsyncEachBatch is
// additionally the power-loss mode.

const char* g_argv0 = nullptr;

struct TrialConfig {
  Durability mode = Durability::kFsyncEachBatch;
  std::size_t shards = 1;
  bool checkpointed = false;
};

/// Derived from the trial SEED (which the writer child receives), so the
/// child and the recovering parent agree without communicating.
TrialConfig trial_config(std::uint64_t trial, std::uint64_t seed) {
  TrialConfig c;
  c.mode = (trial & 1) != 0 ? Durability::kAsync : Durability::kFsyncEachBatch;
  c.shards = ((trial >> 1) & 1) != 0 ? 4 : 1;
  c.checkpointed = (seed & 4) != 0;
  return c;
}

Options writer_opts(const std::string& dir, const TrialConfig& c,
                    util::ThreadPool* pool) {
  Options o = durable_opts(dir, c.mode);
  o.wal_segment_bytes = 512;  // rotate often: more boundary kills
  if (c.checkpointed) {
    o.pool = pool;
    o.compaction = stream::Compaction::kBackground;
    o.checkpoint_every = 3;
  }
  return o;
}

/// Child: ingest the trial workload, acknowledging each batch into the
/// ack file the instant ingest() returns. Killed by the parent at a
/// random point; exits 0 if it outlives the timer.
int run_writer(const std::string& dir, std::uint64_t seed, int mode_int,
               std::size_t shards, const std::string& ack_path) {
  const auto batches = trial_batches(seed);
  const TrialConfig c{mode_int != 0 ? Durability::kFsyncEachBatch
                                    : Durability::kAsync,
                      shards, (seed & 4) != 0};
  std::FILE* ack = std::fopen(ack_path.c_str(), "a");
  if (ack == nullptr) return 2;
  util::ThreadPool pool(2);
  const auto acknowledge = [&](std::size_t epoch) {
    std::fprintf(ack, "a %zu\n", epoch);
    std::fflush(ack);
  };
  if (shards == 1) {
    Builder b(kN, PT{}, writer_opts(dir, c, &pool));
    for (std::size_t i = 0; i < batches.size(); ++i) {
      b.ingest(batches[i]);
      acknowledge(i + 1);
    }
    b.drain();
  } else {
    Sharded sb(kN, shards, PT{}, writer_opts(dir, c, &pool));
    for (std::size_t i = 0; i < batches.size(); ++i) {
      sb.ingest(batches[i]);
      acknowledge(i + 1);
    }
    sb.drain();
  }
  std::fclose(ack);
  return 0;
}

/// Child: run one recover() of the directory and exit — the parent
/// kills THIS process too, to prove recovery survives a crash during
/// recovery (repair idempotence under fire).
int run_recover_once(const std::string& dir, std::size_t shards) {
  if (shards == 1) {
    Builder r = Builder::recover(kN, PT{}, durable_opts(dir));
    static_cast<void>(r.stats());
  } else {
    Sharded r = Sharded::recover(kN, shards, PT{}, durable_opts(dir));
    static_cast<void>(r.stats());
  }
  return 0;
}

pid_t spawn_child(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(g_argv0));
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(g_argv0, argv.data());
    std::perror("execv");
    ::_exit(127);
  }
  return pid;
}

void kill_after(pid_t pid, std::uint64_t micros) {
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<std::int64_t>(micros)));
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

std::size_t max_acked_epoch(const std::string& ack_path) {
  std::size_t acked = 0;
  std::FILE* f = std::fopen(ack_path.c_str(), "r");
  if (f == nullptr) return 0;
  char line[64];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    std::size_t e = 0;
    // The final line can be torn mid-write; only complete lines count.
    if (std::sscanf(line, "a %zu\n", &e) == 1 &&
        std::strchr(line, '\n') != nullptr) {
      if (e > acked) acked = e;
    }
  }
  std::fclose(f);
  return acked;
}

/// One trial. Returns true on pass; on failure the caller keeps the
/// directory as the artifact.
bool run_trial(std::uint64_t trial, std::uint64_t base_seed, TempDir& td) {
  const int before = i2a::test::failures;
  const std::uint64_t seed = base_seed * 1000003ULL + trial;
  const TrialConfig c = trial_config(trial, seed);
  const auto batches = trial_batches(seed);
  const std::string dir = td.path + "/wal";
  const std::string ack = td.path + "/ack";
  util::Xoshiro256 rng(seed ^ 0x5EEDULL);

  const pid_t pid = spawn_child(
      {"--writer", dir, std::to_string(seed),
       c.mode == Durability::kFsyncEachBatch ? "1" : "0",
       std::to_string(c.shards), ack});
  CHECK(pid > 0);
  // Kill anywhere in the writer's lifetime, biased toward mid-stream.
  kill_after(pid, rng.next() % 60000);
  const std::size_t acked = max_acked_epoch(ack);

  // One trial in five also crashes the RECOVERY, then recovers again:
  // repair-under-fire must be idempotent.
  if (trial % 5 == 0) {
    const pid_t rpid =
        spawn_child({"--recover-once", dir, std::to_string(c.shards)});
    CHECK(rpid > 0);
    kill_after(rpid, rng.next() % 20000);
  }

  std::size_t recovered = 0;
  if (c.shards == 1) {
    Builder r = Builder::recover(kN, PT{}, durable_opts(dir, c.mode));
    recovered = static_cast<std::size_t>(r.stats().batches);
    CHECK(recovered >= acked);
    CHECK(recovered <= batches.size());
    CHECK(csr_bitwise_equal(r.adjacency(),
                            oracle_prefix(kN, batches, recovered)));
    { Builder drop = std::move(r); }
    // Idempotence: recover the same directory again.
    Builder r2 = Builder::recover(kN, PT{}, durable_opts(dir, c.mode));
    CHECK_EQ(static_cast<std::size_t>(r2.stats().batches), recovered);
    CHECK(csr_bitwise_equal(r2.adjacency(),
                            oracle_prefix(kN, batches, recovered)));
  } else {
    Sharded r = Sharded::recover(kN, c.shards, PT{}, durable_opts(dir, c.mode));
    recovered = static_cast<std::size_t>(r.stats().batches);
    CHECK(recovered >= acked);
    CHECK(recovered <= batches.size());
    CHECK(csr_bitwise_equal(r.adjacency(),
                            oracle_prefix(kN, batches, recovered)));
    // Idempotence (the first recovery's fresh, still-open segment is an
    // empty header-only segment to the second scan — skipped cleanly).
    Sharded r2 =
        Sharded::recover(kN, c.shards, PT{}, durable_opts(dir, c.mode));
    CHECK_EQ(static_cast<std::size_t>(r2.stats().batches), recovered);
    CHECK(csr_bitwise_equal(r2.adjacency(),
                            oracle_prefix(kN, batches, recovered)));
  }
  std::printf(
      "  trial %llu seed %llu mode=%s shards=%zu ckpt=%d: acked %zu, "
      "recovered %zu\n",
      static_cast<unsigned long long>(trial),
      static_cast<unsigned long long>(seed),
      c.mode == Durability::kFsyncEachBatch ? "fsync" : "async", c.shards,
      c.checkpointed ? 1 : 0, acked, recovered);
  return i2a::test::failures == before;
}

void run_trials(std::uint64_t count, std::uint64_t base_seed) {
  std::printf("test_recovery: %llu SIGKILL trials, base seed %llu\n",
              static_cast<unsigned long long>(count),
              static_cast<unsigned long long>(base_seed));
  for (std::uint64_t t = 0; t < count; ++t) {
    TempDir td;
    if (!run_trial(t, base_seed, td)) {
      td.keep = true;
      std::printf("ARTIFACT %s\n", td.path.c_str());
    }
  }
}

std::uint64_t env_seed() {
  if (const char* env = std::getenv("I2A_FAILPOINT_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 20260808ULL;
}

}  // namespace

int main(int argc, char** argv) {
  g_argv0 = argv[0];
  // Child modes (re-exec'd by the trial loop).
  if (argc >= 2 && std::strcmp(argv[1], "--writer") == 0) {
    if (argc != 7) return 2;
    return run_writer(argv[2], std::strtoull(argv[3], nullptr, 0),
                      std::atoi(argv[4]),
                      static_cast<std::size_t>(std::atoi(argv[5])), argv[6]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--recover-once") == 0) {
    if (argc != 4) return 2;
    return run_recover_once(argv[2],
                            static_cast<std::size_t>(std::atoi(argv[3])));
  }
  // Harness mode: trials only, count and seed from the command line.
  std::uint64_t trials = 0;
  std::uint64_t seed = env_seed();
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0) {
      trials = std::strtoull(argv[i + 1], nullptr, 0);
    }
    if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(argv[i + 1], nullptr, 0);
    }
  }
  if (trials > 0) {
    run_trials(trials, seed);
    return TEST_MAIN_RESULT();
  }

  test_crc32c_vectors();
  test_byte_codec_roundtrip();
  test_frame_reader_classification();
  test_wal_replay_roundtrip();
  test_recover_clean();
  test_recover_empty_dir_is_fresh();
  test_recover_with_checkpoint();
  test_sharded_recover();
  test_manifest_refusals();
  test_corruption_truncation_matrix();
  test_corruption_sealed_segment_is_refused();
  test_corruption_bitflip_matrix();
  test_corruption_checkpoint_bitflips();
#if I2A_FAILPOINTS_ENABLED
  std::printf("test_recovery: failpoints ENABLED — durable site sweep\n");
  test_wal_append_failpoints();
  test_checkpoint_write_failpoint();
  test_recover_replay_failpoint();
#endif
  run_trials(8, seed);
  return TEST_MAIN_RESULT();
}
