/// \file test_adjacency.cpp
/// \brief is_adjacency_of on hand-built graphs with self-loops and
///        parallel edges, the incidence→adjacency construction, and the
///        reverse-graph corollary.

#include "algebra/pairs.hpp"
#include "graph/graph.hpp"
#include "graph/generators.hpp"
#include "graph/incidence.hpp"
#include "graph/validators.hpp"
#include "sparse/dense.hpp"
#include "test_util.hpp"

using namespace i2a;

namespace {

/// 0→1 (twice, parallel), 1→1 (self-loop), 1→2, 2→0. Vertex 3 isolated.
graph::Graph hand_graph() {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  return g;
}

void test_validator_accepts_true_adjacency() {
  const auto g = hand_graph();
  // Hand-build the pattern: parallel edges collapse, self-loop on the
  // diagonal, nothing in row/column 3.
  sparse::Coo<double> coo(4, 4);
  coo.push(0, 1, 2.0);
  coo.push(1, 1, 1.0);
  coo.push(1, 2, 1.0);
  coo.push(2, 0, 1.0);
  const auto a = sparse::Csr<double>::from_coo(std::move(coo));
  CHECK(graph::is_adjacency_of(a, g, 0.0).ok);
}

void test_validator_rejects_wrong_patterns() {
  const auto g = hand_graph();
  {
    // Missing the self-loop.
    sparse::Coo<double> coo(4, 4);
    coo.push(0, 1, 2.0);
    coo.push(1, 2, 1.0);
    coo.push(2, 0, 1.0);
    const auto a = sparse::Csr<double>::from_coo(std::move(coo));
    const auto res = graph::is_adjacency_of(a, g, 0.0);
    CHECK(!res.ok);
    CHECK(!res.detail.empty());
  }
  {
    // Spurious entry at a non-edge.
    sparse::Coo<double> coo(4, 4);
    coo.push(0, 1, 2.0);
    coo.push(1, 1, 1.0);
    coo.push(1, 2, 1.0);
    coo.push(2, 0, 1.0);
    coo.push(3, 3, 1.0);
    const auto a = sparse::Csr<double>::from_coo(std::move(coo));
    CHECK(!graph::is_adjacency_of(a, g, 0.0).ok);
  }
  {
    // A stored entry whose value IS the zero element counts as absent.
    sparse::Coo<double> coo(4, 4);
    coo.push(0, 1, 2.0);
    coo.push(1, 1, 0.0);  // "edge" recorded as an explicit zero
    coo.push(1, 2, 1.0);
    coo.push(2, 0, 1.0);
    const auto a = sparse::Csr<double>::from_coo(std::move(coo));
    CHECK(!graph::is_adjacency_of(a, g, 0.0).ok);
  }
  {
    // Wrong shape.
    sparse::Coo<double> coo(3, 3);
    coo.push(0, 1, 1.0);
    const auto a = sparse::Csr<double>::from_coo(std::move(coo));
    CHECK(!graph::is_adjacency_of(a, g, 0.0).ok);
  }
}

void test_construction_matches_definition() {
  const auto g = hand_graph();
  for (int algo = 0; algo < 4; ++algo) {  // incl. kAuto
    const auto a = graph::build_adjacency(
        g, algebra::PlusTimes<double>{}, static_cast<sparse::SpGemmAlgo>(algo));
    CHECK(graph::is_adjacency_of(a, g, 0.0).ok);
    // +.* with unit incidence values counts parallel edges.
    CHECK_EQ(a.at(0, 1, 0.0), 2.0);
    CHECK_EQ(a.at(1, 1, 0.0), 1.0);
  }
  // Full (dense) semantics agrees on a conforming pair.
  const algebra::MinPlus<double> p;
  const auto inc = graph::incidence_arrays(g, p);
  const auto full = sparse::multiply_full_semantics(
      p, sparse::transpose(inc.eout), inc.ein);
  CHECK(graph::is_adjacency_of(full, g, p.zero()).ok);
}

void test_reverse_adjacency() {
  util::Xoshiro256 rng(21);
  for (int t = 0; t < 20; ++t) {
    const auto g = graph::gen::random_multigraph(rng.between(2, 8),
                                                 rng.between(1, 20), rng.next());
    const algebra::MaxTimes<double> p;
    const auto inc = graph::incidence_arrays(g, p);
    const auto rev = graph::reverse_adjacency_array(p, inc);
    CHECK(graph::is_adjacency_of(rev, g.reverse(), p.zero()).ok);
  }
}

void test_weighted_incidence() {
  graph::Graph g(3);
  g.add_edge(0, 1, 5.0);
  g.add_edge(0, 1, 2.0);  // parallel edge with a better weight
  g.add_edge(1, 2, 7.0);
  const algebra::MinPlus<double> p;
  const auto a = graph::adjacency_array(p, graph::weighted_incidence_arrays(g, p));
  // min.+ folds parallel edges to the cheapest weight.
  CHECK_EQ(a.at(0, 1, p.zero()), 2.0);
  CHECK_EQ(a.at(1, 2, p.zero()), 7.0);
  CHECK(graph::is_adjacency_of(a, g, p.zero()).ok);
}

}  // namespace

int main() {
  test_validator_accepts_true_adjacency();
  test_validator_rejects_wrong_patterns();
  test_construction_matches_definition();
  test_reverse_adjacency();
  test_weighted_incidence();
  return TEST_MAIN_RESULT();
}
