/// \file test_spgemm.cpp
/// \brief The three sparse kernels must agree with each other and with
///        the dense full-semantics baseline on conforming pairs — serial
///        and thread-pooled.

#include <cmath>

#include "algebra/pairs.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/spgemm.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include "test_util.hpp"

using namespace i2a;

namespace {

sparse::Csr<double> random_csr(index_t nr, index_t nc, int nnz,
                               std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  sparse::Coo<double> coo(nr, nc);
  for (int k = 0; k < nnz; ++k) {
    coo.push(rng.between(0, nr - 1), rng.between(0, nc - 1),
             rng.uniform(0.5, 4.0));
  }
  return sparse::Csr<double>::from_coo(std::move(coo),
                                       sparse::DupPolicy::kKeepFirst);
}

bool csr_near(const sparse::Csr<double>& a, const sparse::Csr<double>& b) {
  if (a.nrows() != b.nrows() || a.ncols() != b.ncols() || a.nnz() != b.nnz()) {
    return false;
  }
  if (a.row_ptr() != b.row_ptr() || a.cols() != b.cols()) return false;
  for (std::size_t k = 0; k < a.vals().size(); ++k) {
    const double x = a.vals()[k];
    const double y = b.vals()[k];
    if (std::abs(x - y) > 1e-9 * std::max({1.0, std::abs(x), std::abs(y)})) {
      return false;
    }
  }
  return true;
}

template <typename P>
void check_all_algos_agree(const P& p, std::uint64_t seed) {
  const auto a = random_csr(37, 29, 150, seed);
  const auto b = random_csr(29, 41, 150, seed + 1);
  const auto ref = sparse::multiply_full_semantics(p, a, b);
  const auto gus = sparse::spgemm(p, a, b, sparse::SpGemmAlgo::kGustavson);
  const auto hash = sparse::spgemm(p, a, b, sparse::SpGemmAlgo::kHash);
  const auto heap = sparse::spgemm(p, a, b, sparse::SpGemmAlgo::kHeap);
  CHECK(csr_near(gus, ref));
  CHECK(csr_near(hash, ref));
  CHECK(csr_near(heap, ref));

  util::ThreadPool pool(4);
  const auto par =
      sparse::spgemm(p, a, b, sparse::SpGemmAlgo::kGustavson, &pool);
  CHECK(csr_near(par, ref));
}

void test_at_b_matches_explicit_transpose() {
  const algebra::PlusTimes<double> p;
  const auto a = random_csr(50, 13, 120, 5);
  const auto b = random_csr(50, 17, 120, 6);
  const auto via_helper = sparse::spgemm_at_b(p, a, b);
  const auto via_transpose = sparse::spgemm(p, sparse::transpose(a), b);
  CHECK(csr_near(via_helper, via_transpose));
  CHECK_EQ(via_helper.nrows(), 13);
  CHECK_EQ(via_helper.ncols(), 17);
}

}  // namespace

int main() {
  check_all_algos_agree(algebra::PlusTimes<double>{}, 11);
  check_all_algos_agree(algebra::MaxTimes<double>{}, 12);
  check_all_algos_agree(algebra::MinPlus<double>{}, 13);
  check_all_algos_agree(algebra::MaxMin<double>{}, 14);
  test_at_b_matches_explicit_transpose();
  return TEST_MAIN_RESULT();
}
