/// \file test_failpoints.cpp
/// \brief Failure-injection sweep over the serving path (DESIGN.md §10).
///
/// Built with -DI2A_FAILPOINTS=ON (the CI fault-injection leg), this
/// suite arms every documented failpoint one at a time — across error
/// kinds (library failure / allocation failure), compaction modes
/// (inline / background), and builder shapes (single / sharded) — and
/// asserts the documented per-API guarantee for each:
///
///   * strong guarantee: an ingest that throws consumed nothing — same
///     epoch, same bytes as the pre-failure prefix oracle;
///   * deferred errors: a background-merge failure is queued, peeks
///     into `snapshot().pending_error()`, and is delivered exactly once
///     via `drain()` / the next `ingest()`;
///   * absorbed degradation: a failed compaction-task submit runs the
///     merge inline and counts a `backpressure_events`, throwing nothing;
///
/// plus: live pins still read their exact epoch's prefix after the
/// failure churn, the registry's site set matches the documented list
/// (drift in either direction fails), repeated background failures are
/// each reported exactly once and the builder settles to the inline
/// bytes once disarmed, bounded `max_pending_merges` backpressure holds
/// its settled-after-every-ingest invariant, and a seeded randomized
/// multi-failpoint soak (seed logged; override: I2A_FAILPOINT_SEED)
/// converges to the full-prefix oracle bytes.
///
/// Built WITHOUT failpoints (every default leg), the suite instead
/// proves the zero-cost claim: a full workload registers no sites and
/// fires nothing.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "algebra/pairs.hpp"
#include "graph/generators.hpp"
#include "graph/incidence.hpp"
#include "stream/adjacency_builder.hpp"
#include "stream/sharded_builder.hpp"
#include "util/failpoint.hpp"
#include "util/io.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include "test_util.hpp"

using namespace i2a;
using i2a::test::csr_bitwise_equal;

namespace {

using PT = algebra::PlusTimes<double>;
using Builder = stream::AdjacencyBuilder<PT>;
using Sharded = stream::ShardedBuilder<PT>;
using Reg = util::FailpointRegistry;
using Sched = Reg::Schedule;
using Kind = Reg::Kind;

/// Multigraph workload with small-integer weights (exact folds).
graph::Graph fail_graph(index_t n, index_t m, std::uint64_t seed) {
  auto g = graph::gen::random_multigraph(n, m, seed);
  util::Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (auto& e : g.edges()) {
    e.weight = static_cast<double>(1 + rng.next() % 9);
  }
  return g;
}

std::vector<std::vector<graph::Edge>> make_batches(const graph::Graph& g,
                                                   std::size_t batch) {
  std::vector<std::vector<graph::Edge>> out;
  const auto& edges = g.edges();
  for (std::size_t lo = 0; lo < edges.size(); lo += batch) {
    const std::size_t hi = std::min(edges.size(), lo + batch);
    out.emplace_back(edges.begin() + static_cast<std::ptrdiff_t>(lo),
                     edges.begin() + static_cast<std::ptrdiff_t>(hi));
  }
  return out;
}

/// Serial rebuild over batches [0, k) — the byte oracle.
sparse::Csr<double> oracle_prefix(
    index_t n, const std::vector<std::vector<graph::Edge>>& batches,
    std::size_t k) {
  const PT p{};
  graph::Graph prefix(n);
  for (std::size_t b = 0; b < k; ++b) {
    for (const auto& e : batches[b]) prefix.add_edge(e.src, e.dst, e.weight);
  }
  return graph::adjacency_array(p, graph::incidence_arrays(prefix, p));
}

#if I2A_FAILPOINTS_ENABLED

/// The documented site list (sorted, as the registry reports it). The
/// expected-sites test fails on drift in either direction: a new
/// fallible site must be added here AND to a sweep — the serving sites
/// to `kSweepSites` below, the durable sites (wal.*, checkpoint.*,
/// recover.*) to the durable sweep in tests/test_recovery.cpp.
const std::vector<std::string> kSites = {
    "builder.background.submit",
    "builder.ladder.splice",
    "builder.stage.batch",
    "checkpoint.write",
    "incidence.assemble.alloc",
    "merge.count.scratch",
    "merge.scatter.alloc",
    "recover.replay",
    "spgemm.numeric.alloc",
    "wal.append.fsync",
    "wal.append.write",
};

/// The subset this file's mode-matrix sweep drives. The durable sites
/// never evaluate in the in-memory builders the sweep uses; their
/// guarantee classes are swept in test_recovery against durable
/// builders instead.
const std::vector<std::string> kSweepSites = {
    "builder.background.submit",
    "builder.ladder.splice",
    "builder.stage.batch",
    "incidence.assemble.alloc",
    "merge.count.scratch",
    "merge.scatter.alloc",
    "spgemm.numeric.alloc",
};

void test_registry_mechanics() {
  auto& reg = Reg::instance();
  // Unarmed evaluation registers the site and never throws.
  reg.hit("test.mech.a");
  CHECK_EQ(reg.evaluations("test.mech.a"), 1u);
  CHECK_EQ(reg.fired("test.mech.a"), 0u);
  // once(): fires on the next evaluation, then auto-disarms.
  reg.arm("test.mech.a", Sched::once());
  bool threw = false;
  try {
    reg.hit("test.mech.a");
  } catch (const util::FailpointError&) {
    threw = true;
  }
  CHECK(threw);
  reg.hit("test.mech.a");  // auto-disarmed: must not throw
  CHECK_EQ(reg.fired("test.mech.a"), 1u);
  // nth(2): fires on the third evaluation after arming, exactly once.
  reg.arm("test.mech.b", Sched::nth(2));
  int fired_at = -1;
  for (int i = 0; i < 5; ++i) {
    try {
      reg.hit("test.mech.b");
    } catch (const util::FailpointError&) {
      fired_at = i;
    }
  }
  CHECK_EQ(fired_at, 2);
  CHECK_EQ(reg.fired("test.mech.b"), 1u);
  // always(kBadAlloc): every evaluation throws std::bad_alloc until
  // disarmed.
  reg.arm("test.mech.c", Sched::always(Kind::kBadAlloc));
  int bad = 0;
  for (int i = 0; i < 3; ++i) {
    try {
      reg.hit("test.mech.c");
    } catch (const std::bad_alloc&) {
      ++bad;
    }
  }
  CHECK_EQ(bad, 3);
  reg.disarm("test.mech.c");
  reg.hit("test.mech.c");  // disarmed: must not throw
  CHECK_EQ(reg.fired("test.mech.c"), 3u);
  // probabilistic(p, seed): same seed replays the same fire pattern.
  const auto pattern = [&reg](std::uint64_t seed) {
    reg.arm("test.mech.d", Sched::probabilistic(0.5, seed));
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) {
      bool f = false;
      try {
        reg.hit("test.mech.d");
      } catch (const util::FailpointError&) {
        f = true;
      }
      fires.push_back(f);
    }
    reg.disarm("test.mech.d");
    return fires;
  };
  const auto pat_a = pattern(42);
  const auto pat_b = pattern(42);
  const auto pat_c = pattern(43);
  CHECK(pat_a == pat_b);
  CHECK(pat_a != pat_c);  // 2^-64-ish to collide
  bool any = false;
  bool all = true;
  for (const bool f : pat_a) {
    any = any || f;
    all = all && f;
  }
  CHECK(any);
  CHECK(!all);
  // ScopedFailpoint: armed for exactly the scope.
  {
    util::ScopedFailpoint fp("test.mech.e", Sched::always());
    bool scoped_threw = false;
    try {
      reg.hit("test.mech.e");
    } catch (const util::FailpointError&) {
      scoped_threw = true;
    }
    CHECK(scoped_threw);
  }
  reg.hit("test.mech.e");  // scope exit disarmed it
}

/// One clean warm-up workload through every layer — including a durable
/// builder with a checkpoint boundary and one recovery pass, so the
/// wal.*, checkpoint.*, and recover.* sites register — then the
/// registered library sites (test.* names excluded) must be exactly
/// `kSites`.
void test_expected_sites() {
  const PT p{};
  const auto g = fail_graph(16, 80, 7);
  const auto batches = make_batches(g, 8);
  util::ThreadPool pool(1);
  {
    Builder b(16, p, stream::Weighting::kUnweighted,
              sparse::SpGemmAlgo::kAuto, &pool, stream::Compaction::kBackground);
    for (const auto& batch : batches) b.ingest(batch);
    b.drain();
    CHECK(csr_bitwise_equal(b.adjacency(),
                            oracle_prefix(16, batches, batches.size())));
  }
  {
    Sharded sb(16, 2, p, stream::Weighting::kUnweighted,
               sparse::SpGemmAlgo::kAuto, nullptr, stream::Compaction::kInline);
    for (const auto& batch : batches) sb.ingest(batch);
  }
  {
    std::string dir = "/tmp/i2a-fp-warmup-XXXXXX";
    CHECK(::mkdtemp(dir.data()) != nullptr);
    stream::Options opts;
    opts.pool = &pool;
    opts.wal_dir = dir;
    opts.checkpoint_every = 4;
    {
      Builder b(16, p, opts);
      for (const auto& batch : batches) b.ingest(batch);
      b.drain();
    }
    Builder r = Builder::recover(16, p, opts);
    CHECK(csr_bitwise_equal(r.adjacency(),
                            oracle_prefix(16, batches, batches.size())));
    for (const auto& name : util::list_dir(dir)) {
      util::remove_file(dir + "/" + name);
    }
    ::rmdir(dir.c_str());
  }
  std::vector<std::string> lib;
  for (const auto& s : Reg::instance().sites()) {
    if (s.rfind("test.", 0) != 0) lib.push_back(s);
  }
  CHECK(lib == kSites);
  if (lib != kSites) {
    std::printf("  registered library sites (drift!):\n");
    for (const auto& s : lib) std::printf("    %s\n", s.c_str());
  }
}

/// Arm `site` once(kind) mid-stream and ingest the rest of the batches,
/// asserting the documented guarantee class at every step. `background`
/// selects the compaction mode the builder was built with;
/// `deterministic` means background tasks run synchronously inside
/// ingest (workerless pool), which makes the deferred-error peek
/// observable at a known point.
template <typename AnyBuilder>
void sweep_one(const char* site, Kind kind, bool background,
               bool deterministic, AnyBuilder& builder,
               const std::vector<std::vector<graph::Edge>>& batches,
               const sparse::Csr<double>& oracle_arm,
               const sparse::Csr<double>& oracle_full, std::size_t arm_at) {
  auto& reg = Reg::instance();
  for (std::size_t b = 0; b < arm_at; ++b) {
    builder.ingest(batches[b]);
    if (background) builder.drain();
  }
  const auto pin = builder.snapshot();  // pre-failure pin, epoch arm_at
  CHECK_EQ(pin.batches(), arm_at);
  CHECK(pin.pending_error() == nullptr);

  const std::uint64_t fired_before = reg.fired(site);
  const std::uint64_t bp_before = builder.stats().backpressure_events;
  const bool absorbed = std::string(site) == "builder.background.submit";
  std::uint64_t delivered = 0;
  {
    util::ScopedFailpoint fp(site, Sched::once(kind));
    for (std::size_t b = arm_at; b < batches.size(); ++b) {
      const std::uint64_t before = builder.stats().batches;
      bool ingest_threw = false;
      try {
        builder.ingest(batches[b]);
      } catch (...) {
        ingest_threw = true;
        ++delivered;
      }
      if (ingest_threw) {
        // Strong guarantee: the failed ingest consumed nothing (we
        // drained every iteration, so this cannot be a deferred
        // delivery of an earlier failure).
        CHECK_EQ(builder.stats().batches, before);
        builder.ingest(batches[b]);  // once() auto-disarmed: retry succeeds
      }
      CHECK_EQ(builder.stats().batches, before + 1);
      if (background) {
        if (deterministic && !absorbed &&
            reg.fired(site) - fired_before > delivered) {
          // The background merge already failed (the workerless pool ran
          // it inside ingest): the failure must peek — not consume —
          // through snapshot().
          CHECK(builder.snapshot().pending_error() != nullptr);
          CHECK(builder.snapshot().pending_error() != nullptr);
        }
        bool drain_threw = false;
        try {
          builder.drain();
        } catch (...) {
          drain_threw = true;
          ++delivered;
        }
        if (drain_threw) {
          builder.drain();  // exactly-once: a second drain is clean
          CHECK(builder.snapshot().pending_error() == nullptr);
        }
      }
    }
  }
  const std::uint64_t fires = reg.fired(site) - fired_before;
  // Every site must actually be exercised in the modes it exists in —
  // a site the sweep never reaches is a hole, not a pass.
  if (absorbed && !background) {
    CHECK_EQ(fires, 0u);
  } else {
    CHECK_EQ(fires, 1u);
  }
  if (absorbed) {
    CHECK_EQ(delivered, 0u);  // absorbed: nothing ever thrown
    CHECK_EQ(builder.stats().backpressure_events - bp_before, fires);
  } else {
    CHECK_EQ(delivered, fires);  // exactly-once delivery
  }
  // A failed background chain parks; one empty publish replans it.
  builder.ingest(std::vector<graph::Edge>{});
  builder.drain();
  CHECK(csr_bitwise_equal(builder.adjacency(), oracle_full));
  // The pre-failure pin still reads its exact epoch's prefix.
  CHECK(csr_bitwise_equal(pin.materialize(), oracle_arm));
  CHECK(builder.stats().failpoints_hit >= fires);
}

void test_sweep() {
  const PT p{};
  const index_t n = 24;
  const auto g = fail_graph(n, 160, 99);
  const auto batches = make_batches(g, 16);  // 10 batches
  const std::size_t arm_at = 4;
  const auto oracle_arm = oracle_prefix(n, batches, arm_at);
  const auto oracle_full = oracle_prefix(n, batches, batches.size());
  util::ThreadPool workerless(1);  // submit() runs tasks inside ingest
  util::ThreadPool workers(3);
  for (const auto& site_name : kSweepSites) {
    const char* site = site_name.c_str();
    for (const Kind kind : {Kind::kError, Kind::kBadAlloc}) {
      {  // inline mode, single builder: strong guarantee end to end
        Builder b(n, p, stream::Weighting::kUnweighted,
                  sparse::SpGemmAlgo::kAuto, nullptr,
                  stream::Compaction::kInline);
        sweep_one(site, kind, false, true, b, batches, oracle_arm,
                  oracle_full, arm_at);
      }
      {  // background, deterministic (workerless pool)
        Builder b(n, p, stream::Weighting::kUnweighted,
                  sparse::SpGemmAlgo::kAuto, &workerless,
                  stream::Compaction::kBackground);
        sweep_one(site, kind, true, true, b, batches, oracle_arm,
                  oracle_full, arm_at);
      }
      {  // background with real workers (concurrent timing)
        Builder b(n, p, stream::Weighting::kUnweighted,
                  sparse::SpGemmAlgo::kAuto, &workers,
                  stream::Compaction::kBackground);
        sweep_one(site, kind, true, false, b, batches, oracle_arm,
                  oracle_full, arm_at);
      }
      {  // sharded, inline: the two-phase cross-shard strong guarantee
        Sharded sb(n, 3, p, stream::Weighting::kUnweighted,
                   sparse::SpGemmAlgo::kAuto, nullptr,
                   stream::Compaction::kInline);
        sweep_one(site, kind, false, true, sb, batches, oracle_arm,
                  oracle_full, arm_at);
      }
      {  // sharded, background, deterministic
        Sharded sb(n, 3, p, stream::Weighting::kUnweighted,
                   sparse::SpGemmAlgo::kAuto, &workerless,
                   stream::Compaction::kBackground);
        sweep_one(site, kind, true, true, sb, batches, oracle_arm,
                  oracle_full, arm_at);
      }
    }
  }
}

/// Satellite: every background carry re-chain throws (merge site armed
/// `always`). The builder must stay usable, report each failure exactly
/// once, and settle to the same bytes as inline mode once disarmed.
void test_repeated_background_failures() {
  const PT p{};
  const index_t n = 24;
  const auto g = fail_graph(n, 160, 321);
  const auto batches = make_batches(g, 16);
  util::ThreadPool workerless(1);
  auto& reg = Reg::instance();
  const char* site = "merge.count.scratch";
  const std::uint64_t fired_before = reg.fired(site);
  Builder bg(n, p, stream::Weighting::kUnweighted, sparse::SpGemmAlgo::kAuto,
             &workerless, stream::Compaction::kBackground);
  std::uint64_t deliveries = 0;
  {
    util::ScopedFailpoint fp(site, Sched::always());
    for (const auto& batch : batches) {
      bg.ingest(batch);  // merge failures are deferred, never thrown here
      bool threw = false;
      try {
        bg.drain();
      } catch (...) {
        threw = true;
        ++deliveries;
      }
      if (threw) bg.drain();  // exactly once: second drain clean
    }
  }
  const std::uint64_t fires = reg.fired(site) - fired_before;
  CHECK(fires > 0);
  CHECK_EQ(deliveries, fires);
  CHECK_EQ(bg.stats().batches, batches.size());
  // Disarmed: one empty publish replans the parked chain and the ladder
  // settles to byte parity with a clean inline-mode builder.
  bg.ingest(std::vector<graph::Edge>{});
  bg.drain();
  Builder inl(n, p, stream::Weighting::kUnweighted, sparse::SpGemmAlgo::kAuto,
              nullptr, stream::Compaction::kInline);
  for (const auto& batch : batches) inl.ingest(batch);
  CHECK(csr_bitwise_equal(bg.adjacency(), inl.adjacency()));
  CHECK(csr_bitwise_equal(bg.adjacency(),
                          oracle_prefix(n, batches, batches.size())));
}

/// Satellite: nested ScopedFailpoint scopes on the SAME site compose as
/// last-wins with restore-on-unwind. The inner scope's schedule replaces
/// the outer one for its lifetime; when it unwinds, the outer schedule
/// resumes with its fire-progress frozen — a partially-counted nth()
/// continues from where it stopped, it does not restart from zero.
void test_scoped_rearm_nesting() {
  auto& reg = Reg::instance();
  const std::string site = "test.rearm";
  const std::uint64_t fired_before = reg.fired(site);
  {
    // Outer: fire on the 3rd armed evaluation (0-based nth(2)).
    util::ScopedFailpoint outer(site, Sched::nth(2));
    reg.hit(site.c_str());  // armed evaluation #0: no fire
    {
      // Inner re-arm (last-wins): once(kBadAlloc) displaces the outer
      // schedule entirely for this scope.
      util::ScopedFailpoint inner(site, Sched::once(Kind::kBadAlloc));
      bool bad = false;
      try {
        reg.hit(site.c_str());
      } catch (const std::bad_alloc&) {
        bad = true;
      }
      CHECK(bad);
      reg.hit(site.c_str());  // once() auto-disarmed: clean
      reg.hit(site.c_str());  // inner evaluations must not advance outer
    }
    // Inner unwound: the outer nth(2) resumes at armed evaluation #1 —
    // its progress was frozen, not reset by the inner scope's churn.
    reg.hit(site.c_str());  // armed evaluation #1: no fire
    bool threw = false;
    try {
      reg.hit(site.c_str());  // armed evaluation #2: fires
    } catch (const util::FailpointError&) {
      threw = true;
    }
    CHECK(threw);
  }
  reg.hit(site.c_str());  // both scopes unwound: site is disarmed
  CHECK_EQ(reg.fired(site) - fired_before, 2u);  // inner once + outer nth
  // A non-nested scope restores the disarmed state (the baseline RAII
  // contract, unchanged).
  {
    util::ScopedFailpoint solo(site, Sched::always());
    bool threw = false;
    try {
      reg.hit(site.c_str());
    } catch (const util::FailpointError&) {
      threw = true;
    }
    CHECK(threw);
  }
  reg.hit(site.c_str());
  CHECK_EQ(reg.fired(site) - fired_before, 3u);
}

/// Satellite: the destructor's undelivered-error contract. A builder
/// holding a queued background failure may not be silently destroyed —
/// the owner either drains (delivery) or calls dismiss_pending_errors()
/// (explicit discard, returning the count). Both acknowledged paths must
/// leave the destructor quiet; dismiss on a clean builder is a no-op.
void test_destructor_error_contract() {
  const PT p{};
  const index_t n = 24;
  const auto g = fail_graph(n, 96, 555);
  const auto batches = make_batches(g, 16);  // 6 batches
  util::ThreadPool workerless(1);
  const auto mk = [&] {
    return Builder(n, p, stream::Weighting::kUnweighted,
                   sparse::SpGemmAlgo::kAuto, &workerless,
                   stream::Compaction::kBackground);
  };
  {  // clean builder: nothing to dismiss, destructor quiet
    Builder b = mk();
    for (const auto& batch : batches) b.ingest(batch);
    b.drain();
    CHECK_EQ(b.dismiss_pending_errors(), 0u);
  }
  {  // queued failure, acknowledged by dismiss: destructor quiet
    Builder b = mk();
    b.ingest(batches[0]);  // one settled run at level 0
    {
      util::ScopedFailpoint fp("merge.count.scratch", Sched::always());
      b.ingest(batches[1]);  // carry merge fails inline, failure queued
    }
    CHECK(b.snapshot().pending_error() != nullptr);
    CHECK_EQ(b.dismiss_pending_errors(), 1u);
    CHECK(b.snapshot().pending_error() == nullptr);
    CHECK_EQ(b.dismiss_pending_errors(), 0u);  // idempotent
    // The dismissed chain parked; the builder is still usable and one
    // empty publish replans it back to full-prefix bytes.
    for (std::size_t i = 2; i < batches.size(); ++i) b.ingest(batches[i]);
    b.ingest(std::vector<graph::Edge>{});
    b.drain();
    CHECK(csr_bitwise_equal(b.adjacency(),
                            oracle_prefix(n, batches, batches.size())));
  }
  {  // queued failure, acknowledged by drain: the other legal teardown
    Builder b = mk();
    b.ingest(batches[0]);
    {
      util::ScopedFailpoint fp("merge.count.scratch", Sched::always());
      b.ingest(batches[1]);
    }
    bool threw = false;
    try {
      b.drain();
    } catch (...) {
      threw = true;
    }
    CHECK(threw);
    CHECK_EQ(b.dismiss_pending_errors(), 0u);  // drain already delivered
  }
}

/// The pending_error() interleaving the sweep only grazes: a snapshot
/// pinned in the window *between* the error-queue push (the background
/// merge failed) and the next ingest (the delivery point) must peek the
/// error — repeatedly, without consuming it — and the subsequent ingest
/// must still deliver it exactly once with the batch unconsumed. Run
/// against both builder shapes; for the sharded builder, "exactly once
/// across shards" means the fused snapshot reports the one failing
/// shard's error and the whole epoch stays untorn on the rejected
/// ingest.
template <typename AnyBuilder>
void pending_error_window_run(AnyBuilder& builder,
                              const std::vector<std::vector<graph::Edge>>&
                                  batches,
                              bool deterministic) {
  const char* site = "builder.ladder.splice";
  builder.ingest(batches[0]);
  {
    util::ScopedFailpoint fp(site, Sched::once());
    // Two runs of equal weight: this publish plans the merge whose
    // splice point is armed. Workerless pools run (and fail) it inside
    // ingest; worker pools race it with us, so poll — inside the armed
    // scope — until the failure lands in the error queue.
    builder.ingest(batches[1]);
    while (builder.snapshot().pending_error() == nullptr) {
      if (deterministic) {
        CHECK(!"workerless pool: error must be queued before ingest returns");
        return;
      }
      std::this_thread::yield();
    }
  }
  // The window: error queued, no ingest yet. Peeks are non-destructive —
  // every snapshot in the window sees the failure, and earlier pins are
  // unaffected.
  const auto pin = builder.snapshot();
  CHECK(pin.pending_error() != nullptr);
  CHECK(builder.snapshot().pending_error() != nullptr);
  CHECK(pin.pending_error() != nullptr);  // the pin's own peek is stable
  // Delivery: the next ingest throws exactly once and consumes nothing.
  const std::uint64_t epoch = builder.stats().batches;
  CHECK_EQ(epoch, 2u);
  bool threw = false;
  try {
    builder.ingest(batches[2]);
  } catch (...) {
    threw = true;
  }
  CHECK(threw);
  CHECK_EQ(builder.stats().batches, epoch);  // no shard/epoch advanced
  // Exactly once: the queue is now empty — the retry succeeds and a
  // fresh snapshot is clean.
  builder.ingest(batches[2]);
  CHECK_EQ(builder.stats().batches, epoch + 1);
  CHECK(builder.snapshot().pending_error() == nullptr);
  builder.ingest(std::vector<graph::Edge>{});  // replan the parked chain
  builder.drain();
  CHECK(builder.snapshot().pending_error() == nullptr);
  CHECK(csr_bitwise_equal(
      builder.adjacency(),
      oracle_prefix(builder.num_vertices(), batches, 3)));
}

void test_pending_error_window() {
  const PT p{};
  const index_t n = 24;
  const auto g = fail_graph(n, 160, 1234);
  const auto batches = make_batches(g, 16);
  util::ThreadPool workerless(1);
  util::ThreadPool workers(3);
  {  // single builder, deterministic: the merge fails inside ingest
    Builder b(n, p, stream::Weighting::kUnweighted, sparse::SpGemmAlgo::kAuto,
              &workerless, stream::Compaction::kBackground);
    pending_error_window_run(b, batches, true);
  }
  {  // single builder, real workers: the window opens asynchronously
    Builder b(n, p, stream::Weighting::kUnweighted, sparse::SpGemmAlgo::kAuto,
              &workers, stream::Compaction::kBackground);
    pending_error_window_run(b, batches, false);
  }
  {  // sharded: one shard fails, the fused snapshot reports it, the
     // rejected ingest leaves every shard at the old epoch
    Sharded sb(n, 3, p, stream::Weighting::kUnweighted,
               sparse::SpGemmAlgo::kAuto, &workerless,
               stream::Compaction::kBackground);
    pending_error_window_run(sb, batches, true);
  }
  {  // sharded with real workers
    Sharded sb(n, 3, p, stream::Weighting::kUnweighted,
               sparse::SpGemmAlgo::kAuto, &workers,
               stream::Compaction::kBackground);
    pending_error_window_run(sb, batches, false);
  }
}

/// Tentpole satellite: max_pending_merges = 0 must hold the invariant
/// "the ladder is settled after every ingest returns" regardless of
/// background-task timing — the writer stalls and settles inline
/// whenever the compactor is behind.
void test_backpressure_budget_zero() {
  const PT p{};
  const index_t n = 24;
  const auto g = fail_graph(n, 200, 555);
  const auto batches = make_batches(g, 10);  // 20 batches
  util::ThreadPool pool(3);
  Builder b(n, p, stream::Weighting::kUnweighted, sparse::SpGemmAlgo::kAuto,
            &pool, stream::Compaction::kBackground, /*max_pending_merges=*/0);
  for (const auto& batch : batches) {
    b.ingest(batch);
    CHECK_EQ(b.stats().pending_merges, 0u);
  }
  b.drain();
  CHECK(csr_bitwise_equal(b.adjacency(),
                          oracle_prefix(n, batches, batches.size())));
}

/// Same invariant through the sharded layer (debt bounded per shard).
void test_backpressure_sharded() {
  const PT p{};
  const index_t n = 24;
  const auto g = fail_graph(n, 200, 777);
  const auto batches = make_batches(g, 10);
  util::ThreadPool pool(3);
  Sharded sb(n, 3, p, stream::Weighting::kUnweighted,
             sparse::SpGemmAlgo::kAuto, &pool, stream::Compaction::kBackground,
             /*max_pending_merges=*/0);
  for (const auto& batch : batches) {
    sb.ingest(batch);
    CHECK_EQ(sb.stats().pending_merges, 0u);
  }
  sb.drain();
  CHECK(csr_bitwise_equal(sb.adjacency(),
                          oracle_prefix(n, batches, batches.size())));
}

/// Absorbed-degradation determinism: with the submit site armed
/// `always`, every planned compaction task falls back to an inline
/// merge — one backpressure_event per fire, nothing thrown, bytes
/// intact.
void test_submit_fallback_events() {
  const PT p{};
  const index_t n = 24;
  const auto g = fail_graph(n, 160, 888);
  const auto batches = make_batches(g, 16);
  util::ThreadPool workerless(1);
  auto& reg = Reg::instance();
  const char* site = "builder.background.submit";
  const std::uint64_t fired_before = reg.fired(site);
  Builder b(n, p, stream::Weighting::kUnweighted, sparse::SpGemmAlgo::kAuto,
            &workerless, stream::Compaction::kBackground);
  {
    util::ScopedFailpoint fp(site, Sched::always());
    for (const auto& batch : batches) b.ingest(batch);  // never throws
  }
  const std::uint64_t fires = reg.fired(site) - fired_before;
  CHECK(fires > 0);
  CHECK_EQ(b.stats().backpressure_events, fires);
  b.drain();  // clean: fallbacks completed the merges
  CHECK(csr_bitwise_equal(b.adjacency(),
                          oracle_prefix(n, batches, batches.size())));
}

std::uint64_t soak_seed() {
  if (const char* env = std::getenv("I2A_FAILPOINT_SEED")) {
    return std::strtoull(env, nullptr, 0);  // base 0: decimal, 0x…, 0…
  }
  return 20260808ULL;
}

/// Randomized multi-failpoint soak: every site armed probabilistically
/// at once, writer retries per the consumed-prefix model (the epoch
/// says which batch to ingest next — a strong-guarantee throw retries
/// the same batch, a deferred delivery flushes and moves on), then
/// disarm and converge to the oracle.
template <typename AnyBuilder>
void soak_run(std::uint64_t seed, AnyBuilder& builder,
              const std::vector<std::vector<graph::Edge>>& batches,
              const sparse::Csr<double>& oracle_full) {
  auto& reg = Reg::instance();
  for (std::size_t i = 0; i < kSites.size(); ++i) {
    reg.arm(kSites[i], Sched::probabilistic(0.08, seed + i));
  }
  // Belt-and-braces: no armed site may leak out of this test even if a
  // CHECK path returns early.
  struct DisarmAll {
    ~DisarmAll() { Reg::instance().disarm_all(); }
  } disarm_guard;
  std::size_t attempts = 0;
  std::size_t rejected = 0;
  const std::size_t max_attempts = 10000;
  while (builder.stats().batches < batches.size() &&
         attempts < max_attempts) {
    const auto next = static_cast<std::size_t>(builder.stats().batches);
    try {
      builder.ingest(batches[next]);
    } catch (...) {
      ++rejected;  // strong-guarantee reject or a deferred delivery
    }
    ++attempts;
  }
  CHECK_EQ(builder.stats().batches, batches.size());
  reg.disarm_all();
  // Flush any still-queued deferred failures (one per throw), then
  // settle with an empty publish and a drain.
  std::size_t flushed = 0;
  for (int i = 0; i < 100; ++i) {
    try {
      builder.ingest(std::vector<graph::Edge>{});
      break;
    } catch (...) {
      ++flushed;
    }
  }
  for (int i = 0; i < 100; ++i) {
    try {
      builder.drain();
      break;
    } catch (...) {
      ++flushed;
    }
  }
  CHECK(csr_bitwise_equal(builder.adjacency(), oracle_full));
  std::printf(
      "  soak: %zu attempts, %zu rejected, %zu flushed post-disarm\n",
      attempts, rejected, flushed);
}

void test_soak() {
  const std::uint64_t seed = soak_seed();
  std::printf("test_failpoints: soak seed %llu (I2A_FAILPOINT_SEED)\n",
              static_cast<unsigned long long>(seed));
  const PT p{};
  const index_t n = 24;
  const auto g = fail_graph(n, 200, seed ^ 0xABCDEF);
  const auto batches = make_batches(g, 16);
  const auto oracle_full = oracle_prefix(n, batches, batches.size());
  util::ThreadPool workerless(1);
  {
    Builder b(n, p, stream::Weighting::kUnweighted, sparse::SpGemmAlgo::kAuto,
              nullptr, stream::Compaction::kInline);
    soak_run(seed, b, batches, oracle_full);
  }
  {
    Builder b(n, p, stream::Weighting::kUnweighted, sparse::SpGemmAlgo::kAuto,
              &workerless, stream::Compaction::kBackground);
    soak_run(seed + 101, b, batches, oracle_full);
  }
  {
    Sharded sb(n, 3, p, stream::Weighting::kUnweighted,
               sparse::SpGemmAlgo::kAuto, &workerless,
               stream::Compaction::kBackground);
    soak_run(seed + 202, sb, batches, oracle_full);
  }
}

#else  // !I2A_FAILPOINTS_ENABLED

/// Zero-cost proof for the default configurations: a full workload
/// through every layer registers no sites and fires nothing, and the
/// stats plumbing reports zero.
void test_zero_cost_when_disabled() {
  static_assert(I2A_FAILPOINTS_ENABLED == 0);
  const PT p{};
  const index_t n = 16;
  const auto g = fail_graph(n, 80, 7);
  const auto batches = make_batches(g, 8);
  util::ThreadPool pool(2);
  Builder b(n, p, stream::Weighting::kUnweighted, sparse::SpGemmAlgo::kAuto,
            &pool, stream::Compaction::kBackground);
  for (const auto& batch : batches) b.ingest(batch);
  b.drain();
  CHECK(csr_bitwise_equal(b.adjacency(),
                          oracle_prefix(n, batches, batches.size())));
  Sharded sb(n, 2, p);
  for (const auto& batch : batches) sb.ingest(batch);
  CHECK(Reg::instance().sites().empty());
  CHECK_EQ(util::failpoints_fired_total(), 0u);
  CHECK_EQ(b.stats().failpoints_hit, 0u);
  CHECK_EQ(sb.stats().failpoints_hit, 0u);
}

#endif  // I2A_FAILPOINTS_ENABLED

}  // namespace

int main() {
#if I2A_FAILPOINTS_ENABLED
  std::printf("test_failpoints: failpoints ENABLED — full injection sweep\n");
  test_registry_mechanics();
  test_expected_sites();
  test_sweep();
  test_repeated_background_failures();
  test_scoped_rearm_nesting();
  test_destructor_error_contract();
  test_pending_error_window();
  test_backpressure_budget_zero();
  test_backpressure_sharded();
  test_submit_fallback_events();
  test_soak();
#else
  std::printf("test_failpoints: failpoints disabled — zero-cost branch\n");
  test_zero_cost_when_disabled();
#endif
  return TEST_MAIN_RESULT();
}
