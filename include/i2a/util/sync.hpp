#pragma once
/// \file util/sync.hpp
/// \brief The annotated synchronization primitives the serving core
///        locks with: `Mutex` (a capability in the Clang Thread Safety
///        sense), `MutexLock` (the scoped capability), and `CondVar`.
///
/// `std::mutex` under libstdc++ carries no capability attributes, so the
/// analysis cannot reason about it: `I2A_GUARDED_BY(some_std_mutex)` is
/// rejected at the attribute level and `std::lock_guard` acquisitions
/// are invisible. These thin wrappers fix exactly that — `Mutex` *is* a
/// `std::mutex` (same storage, same calls, zero added state) whose
/// lock/unlock surface is annotated, and `MutexLock` is the
/// `std::lock_guard`/`std::unique_lock` replacement the analysis tracks
/// as a scoped capability, including mid-scope `unlock()`/`lock()`
/// (the backpressure stall uses that). The shapes follow the reference
/// `MutexLocker` in the Clang Thread Safety Analysis documentation, so
/// the analysis' scoped-capability special cases all apply.
///
/// `CondVar` keeps `std::condition_variable` (not the heavier
/// `condition_variable_any`): `wait(Mutex&)` adopts the held native
/// mutex into a `std::unique_lock` for the duration of the wait and
/// releases ownership before returning, so the runtime behavior — same
/// cv type, same mutex, same syscalls — is bit-for-bit what the
/// pre-annotation code did. There is deliberately no predicate overload:
/// callers write `while (!cond) cv.wait(mu);` so every guarded read in
/// the predicate is visible to the analysis in the locked scope instead
/// of hidden inside a lambda.
///
/// Repo lint rule `bare-mutex-member` (tools/lint/) enforces that no
/// other `std::mutex` member exists anywhere in include/i2a — every
/// mutex must be a capability the analysis can see.

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace i2a::util {

class CondVar;

/// An annotated mutex: `std::mutex` storage and semantics, declared as a
/// thread-safety capability so members can be `I2A_GUARDED_BY` it and
/// functions can `I2A_REQUIRES` / `I2A_ACQUIRE` / `I2A_RELEASE` it.
class I2A_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() I2A_ACQUIRE() { mu_.lock(); }
  void unlock() I2A_RELEASE() { mu_.unlock(); }
  bool try_lock() I2A_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  ///< wait() adopts the native handle

  // i2a-lint: allow(bare-mutex-member): this IS the capability wrapper —
  // the one place the raw std::mutex may live; everything else must
  // declare a util::Mutex so the analysis sees it.
  std::mutex mu_;
};

/// RAII scoped capability: acquires `mu` for the lifetime of the object,
/// with mid-scope `unlock()`/`lock()` for wait-then-work patterns. The
/// thread-safety analysis tracks all four transitions (construct,
/// unlock, relock, destruct).
class I2A_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) I2A_ACQUIRE(mu) : mu_(&mu), held_(true) {
    mu.lock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Release before end of scope (the stall paths notify after
  /// unlocking). Calling while not held is undefined, and the analysis
  /// rejects it at compile time.
  void unlock() I2A_RELEASE() {
    mu_->unlock();
    held_ = false;
  }

  /// Reacquire after a mid-scope `unlock()`.
  void lock() I2A_ACQUIRE() {
    mu_->lock();
    held_ = true;
  }

  // NOLINTNEXTLINE(bugprone-exception-escape): std::mutex::unlock throws
  // nothing (the standard says so); its declaration just predates
  // noexcept, which is all the path analysis can see.
  ~MutexLock() I2A_RELEASE() {
    if (held_) mu_->unlock();
  }

 private:
  Mutex* mu_;
  bool held_;
};

/// Condition variable over `Mutex`. `wait` requires the capability held
/// — enforced at compile time — and preserves `std::condition_variable`
/// wait semantics exactly (atomically unlocks, blocks, relocks).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, block, and reacquire before returning.
  /// Spurious wakeups happen; callers loop on their predicate.
  void wait(Mutex& mu) I2A_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait,
    // then release ownership so the unique_lock's destructor does not
    // unlock what the caller's MutexLock still manages. No annotated
    // call is involved, so the analysis sees the capability simply stay
    // held across the wait — which is the correct caller-facing model.
    std::unique_lock<std::mutex> relock(mu.mu_, std::adopt_lock);
    cv_.wait(relock);
    relock.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace i2a::util
