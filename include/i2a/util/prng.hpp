#pragma once
/// \file util/prng.hpp
/// \brief Xoshiro256** pseudo-random generator with the small convenience
///        surface the generators and benches use (`next`, `chance`,
///        `uniform`, `between`).
///
/// Xoshiro256** (Blackman & Vigna) is the usual choice for graph-generator
/// workloads: 256-bit state, excellent equidistribution, and far faster
/// than std::mt19937_64. Seeding goes through SplitMix64 so that small
/// consecutive seeds (1, 2, 3, ...) still produce decorrelated streams.

#include <cmath>
#include <cstdint>

#include "core/types.hpp"

namespace i2a::util {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    // SplitMix64 state expansion, per the xoshiro reference code.
    std::uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      word = x ^ (x >> 31);
    }
  }

  /// Next raw 64-bit output.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with full 53-bit resolution.
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw: true with probability `p` (clamped to [0, 1]).
  bool chance(double p) { return unit() < p; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * unit(); }

  /// Uniform integer in the *inclusive* range [lo, hi]. A degenerate
  /// range (hi <= lo) returns lo instead of dividing by a zero span.
  index_t between(index_t lo, index_t hi) {
    if (hi <= lo) return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<index_t>(next() % span);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Visit every index in [0, cells) independently with probability `p`,
/// in increasing order, in O(expected hits) time via geometric gap
/// skipping — the shared sampler behind Erdős–Rényi generation and
/// random-matrix workload builders.
template <typename Visit>
void sample_bernoulli_indices(Xoshiro256& rng, index_t cells, double p,
                              Visit&& visit) {
  if (cells <= 0 || p <= 0.0) return;
  if (p >= 1.0) {
    for (index_t t = 0; t < cells; ++t) visit(t);
    return;
  }
  const double log1mp = std::log1p(-p);
  index_t t = -1;
  for (;;) {
    const double u = rng.unit();
    const double gap = std::floor(std::log1p(-u) / log1mp);
    // A huge gap (tiny p, unlucky u) can exceed the index range; treat
    // it as falling past the end rather than overflowing the cast.
    if (gap >= static_cast<double>(cells - t)) break;
    t += 1 + static_cast<index_t>(gap);
    if (t >= cells) break;
    visit(t);
  }
}

}  // namespace i2a::util
