#pragma once
/// \file util/timer.hpp
/// \brief Monotonic wall-clock timer for the validation sweep's per-pair
///        timing column.

#include <chrono>

namespace i2a::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds elapsed since construction (or the last reset()).
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace i2a::util
