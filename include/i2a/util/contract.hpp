#pragma once
/// \file util/contract.hpp
/// \brief Runtime invariant layer: `I2A_EXPECTS` (preconditions),
///        `I2A_ENSURES` (postconditions) and `I2A_ASSERT` (internal
///        invariants), active in Debug builds and under the
///        `I2A_CHECK_INVARIANTS` CMake option, compiled to nothing in
///        plain Release.
///
/// Policy (DESIGN.md §8): every kernel that *produces* a CSR states its
/// canonical-form postcondition with `I2A_ENSURES`, and every kernel that
/// *assumes* canonical input states that with `I2A_EXPECTS` — so
/// structural corruption is caught at the boundary where it happens, not
/// three kernels later as a wrong answer or an out-of-bounds read. The
/// checks may be O(nnz); the gating keeps them out of production builds
/// entirely (the macro argument is not evaluated when disabled).
///
/// A failed contract prints the kind, expression, location and message,
/// then aborts — unless the translation unit defines
/// `I2A_CONTRACT_VIOLATION_THROWS` before including any i2a header, in
/// which case it throws `i2a::util::ContractViolation` instead. The
/// throwing mode exists for tests (tests/test_contracts.cpp) that verify
/// the checks actually fire; library code must treat a violation as
/// unrecoverable either way.

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

// Contracts are on when explicitly requested (I2A_CHECK_INVARIANTS, set
// by the CMake option of the same name or per-TU) or in Debug (!NDEBUG).
#if defined(I2A_CHECK_INVARIANTS) || !defined(NDEBUG)
#define I2A_CONTRACTS_ENABLED 1
#else
#define I2A_CONTRACTS_ENABLED 0
#endif

namespace i2a::util {

/// Thrown instead of aborting when I2A_CONTRACT_VIOLATION_THROWS is
/// defined. Deliberately not derived from i2a's argument-validation
/// exceptions: a contract violation is a library bug, not bad input.
struct ContractViolation : std::logic_error {
  using std::logic_error::logic_error;
};

[[noreturn]] inline void contract_failed(const char* kind, const char* expr,
                                         const char* file, int line,
                                         const char* msg) {
#if defined(I2A_CONTRACT_VIOLATION_THROWS)
  throw ContractViolation(std::string(kind) + " violated at " + file + ":" +
                          std::to_string(line) + ": (" + expr + ") — " + msg);
#else
  std::fprintf(stderr, "i2a: %s violated at %s:%d: (%s) — %s\n", kind, file,
               line, expr, msg);
  std::abort();
#endif
}

}  // namespace i2a::util

#if I2A_CONTRACTS_ENABLED
#define I2A_CONTRACT_CHECK_(kind, cond, msg)                            \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::i2a::util::contract_failed(kind, #cond, __FILE__, __LINE__,     \
                                   msg);                                \
    }                                                                   \
  } while (0)
#else
#define I2A_CONTRACT_CHECK_(kind, cond, msg) \
  do {                                       \
  } while (0)
#endif

/// Precondition on a caller-supplied value (what the kernel assumes).
#define I2A_EXPECTS(cond, msg) I2A_CONTRACT_CHECK_("precondition", cond, msg)
/// Postcondition on a produced value (what the kernel guarantees).
#define I2A_ENSURES(cond, msg) I2A_CONTRACT_CHECK_("postcondition", cond, msg)
/// Internal invariant inside a kernel body.
#define I2A_ASSERT(cond, msg) I2A_CONTRACT_CHECK_("invariant", cond, msg)
