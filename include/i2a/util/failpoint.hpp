#pragma once
/// \file util/failpoint.hpp
/// \brief Failure injection: named, compile-time-erasable failpoints for
///        exercising every fallible site in the serving path
///        deterministically (DESIGN.md §10).
///
/// A *failpoint* is a named site in library code — `I2A_FAILPOINT(
/// "merge.scatter.alloc")` — that normally does nothing, but can be
/// *armed* by a test to throw on a chosen schedule: the next evaluation,
/// the nth evaluation, every evaluation, or a seeded coin flip per
/// evaluation. Sites stand in for the real failures that are hard to
/// provoke on demand (allocation failure mid-compaction, a throwing ⊕
/// deep inside a background merge), so the exception-safety guarantees
/// the streaming API documents can be swept exhaustively instead of
/// trusted (tests/test_failpoints.cpp).
///
/// **Zero cost when off.** The macro compiles to nothing unless the
/// build defines `I2A_FAILPOINTS` (CMake option of the same name; the CI
/// fault-injection leg turns it on, Release builds leave it off). The
/// registry class itself always compiles — tests reference it in both
/// configurations — but without the macro no library code ever calls
/// into it, so a Release binary carries no registry lookups, no strings,
/// and no mutex on any hot path.
///
/// **Registration is evaluation.** A site enters the registry the first
/// time control flow reaches it, armed or not. The injection sweep
/// therefore runs one clean warm-up workload to populate the registry,
/// asserts the site set matches the documented list (drift in either
/// direction fails the test), then arms each site in turn.
///
/// **Schedules** (`FailpointRegistry::Schedule`):
///   * `once()` / `nth(n)` — fire on the (n+1)ᵗʰ evaluation after
///     arming, then auto-disarm: one fire, exactly where you aimed.
///   * `always()` — fire on every evaluation until disarmed (the
///     "every carry re-chain throws" soak).
///   * `probabilistic(p, seed)` — fire each evaluation with probability
///     p, driven by a per-site splitmix64 stream seeded by the caller:
///     the same seed replays the same fire pattern for a fixed
///     evaluation order.
///
/// Each schedule chooses what to throw: `Kind::kError` throws
/// `FailpointError` (an ordinary library failure, e.g. a throwing ⊕),
/// `Kind::kBadAlloc` throws `std::bad_alloc` (an allocation failure at
/// the site). Arming/disarming is scoped with RAII (`ScopedFailpoint`)
/// so a failing CHECK can never leak an armed site into the next test.
///
/// Thread safety: every registry operation takes one internal mutex.
/// Sites are evaluated from worker threads (background compaction) and
/// armed from the test thread; the mutex is the entire story. The throw
/// itself happens after the lock is released.

#include <cstdint>
#include <map>
#include <new>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

#if defined(I2A_FAILPOINTS) && I2A_FAILPOINTS
#define I2A_FAILPOINTS_ENABLED 1
#else
#define I2A_FAILPOINTS_ENABLED 0
#endif

namespace i2a::util {

/// What an armed failpoint throws in `Kind::kError` mode. Derived from
/// std::runtime_error so generic catch sites treat it exactly like the
/// real failure it stands in for.
struct FailpointError final : std::runtime_error {
  explicit FailpointError(const std::string& site)
      : std::runtime_error("i2a: failpoint '" + site + "' fired") {}
};

/// Process-wide failpoint registry: site bookkeeping, arming, and the
/// fire decision. One instance per process (`instance()`).
class FailpointRegistry {
 public:
  /// What a fire throws.
  enum class Kind {
    kError,     ///< FailpointError — a library-level failure (e.g. ⊕ throws)
    kBadAlloc,  ///< std::bad_alloc — an allocation failure at the site
  };

  /// When an armed site fires. Build via the static factories; pass to
  /// `arm` or the `ScopedFailpoint` constructor.
  struct Schedule {
    /// Fire on the next evaluation, then auto-disarm.
    static Schedule once(Kind kind = Kind::kError) { return nth(0, kind); }
    /// Fire on evaluation index `n` (0-based, counted from arming), then
    /// auto-disarm.
    static Schedule nth(std::uint64_t n, Kind kind = Kind::kError) {
      Schedule s;
      s.mode_ = Mode::kNth;
      s.nth_ = n;
      s.kind_ = kind;
      return s;
    }
    /// Fire on every evaluation until disarmed.
    static Schedule always(Kind kind = Kind::kError) {
      Schedule s;
      s.mode_ = Mode::kAlways;
      s.kind_ = kind;
      return s;
    }
    /// Fire each evaluation with probability `p`, from a splitmix64
    /// stream seeded with `seed` — same seed, same evaluation order,
    /// same fire pattern.
    static Schedule probabilistic(double p, std::uint64_t seed,
                                  Kind kind = Kind::kError) {
      Schedule s;
      s.mode_ = Mode::kProbabilistic;
      s.probability_ = p;
      s.prng_ = seed;
      s.kind_ = kind;
      return s;
    }

   private:
    friend class FailpointRegistry;
    enum class Mode { kDisarmed, kNth, kAlways, kProbabilistic };
    Mode mode_ = Mode::kDisarmed;
    Kind kind_ = Kind::kError;
    std::uint64_t nth_ = 0;
    std::uint64_t prng_ = 0;
    double probability_ = 0.0;
  };

  static FailpointRegistry& instance() {
    static FailpointRegistry reg;
    return reg;
  }

  /// Site evaluation — what `I2A_FAILPOINT(name)` expands to in
  /// failpoint builds. Registers the site on first reach; throws per the
  /// armed schedule, after releasing the registry lock.
  void hit(const char* name) I2A_EXCLUDES(mu_) {
    Kind kind = Kind::kError;
    bool fire = false;
    {
      MutexLock lock(mu_);
      Site& site = sites_[name];  // registration on first evaluation
      ++site.evaluations;
      Schedule& sched = site.schedule;
      switch (sched.mode_) {
        case Schedule::Mode::kDisarmed:
          break;
        case Schedule::Mode::kNth:
          if (site.armed_evaluations++ == sched.nth_) {
            fire = true;
            sched.mode_ = Schedule::Mode::kDisarmed;  // one fire, auto-disarm
          }
          break;
        case Schedule::Mode::kAlways:
          ++site.armed_evaluations;
          fire = true;
          break;
        case Schedule::Mode::kProbabilistic: {
          ++site.armed_evaluations;
          const std::uint64_t draw = splitmix64(sched.prng_);
          fire = static_cast<double>(draw >> 11) * 0x1.0p-53 <
                 sched.probability_;
          break;
        }
      }
      if (fire) {
        ++site.fired;
        ++fired_;
        kind = sched.kind_;
      }
    }
    if (fire) {
      if (kind == Kind::kBadAlloc) throw std::bad_alloc();
      throw FailpointError(name);
    }
  }

  /// Arm `name` with `schedule`. The site need not have been evaluated
  /// yet (arming registers it), so tests can arm before the first pass
  /// through the code under test.
  void arm(const std::string& name, Schedule schedule) I2A_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    Site& site = sites_[name];
    site.schedule = schedule;
    site.armed_evaluations = 0;
  }

  /// Disarm `name`: clears the schedule, keeps registration + counters.
  void disarm(const std::string& name) I2A_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    const auto it = sites_.find(name);
    if (it != sites_.end()) it->second.schedule = Schedule{};
  }

  /// Opaque snapshot of a site's armed schedule and its progress
  /// (evaluations counted since arming), captured by `exchange` and
  /// reinstated by `restore`. Lets nested `ScopedFailpoint`s on the same
  /// site compose: last-wins while the inner scope lives, the outer
  /// schedule resumes — including a partially-counted nth() — on unwind.
  struct ArmedState {
    Schedule schedule;
    std::uint64_t armed_evaluations = 0;
  };

  /// Arm `name` with `schedule` and return the state it displaced.
  ArmedState exchange(const std::string& name, Schedule schedule)
      I2A_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    Site& site = sites_[name];
    const ArmedState prior{site.schedule, site.armed_evaluations};
    site.schedule = schedule;
    site.armed_evaluations = 0;
    return prior;
  }

  /// Reinstate a state captured by `exchange`. A site that was never
  /// registered is ignored (cannot happen via ScopedFailpoint, whose
  /// constructor registers it).
  void restore(const std::string& name, const ArmedState& prior)
      I2A_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    const auto it = sites_.find(name);
    if (it == sites_.end()) return;
    it->second.schedule = prior.schedule;
    it->second.armed_evaluations = prior.armed_evaluations;
  }

  void disarm_all() I2A_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    for (auto& [name, site] : sites_) site.schedule = Schedule{};
  }

  /// Every registered site name, sorted (std::map order). A site is
  /// registered by evaluation or by arming.
  std::vector<std::string> sites() const I2A_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    std::vector<std::string> out;
    out.reserve(sites_.size());
    for (const auto& [name, site] : sites_) out.push_back(name);
    return out;
  }

  /// Total fires across all sites since process start — the
  /// `failpoints_hit` stream stat.
  std::uint64_t fired() const I2A_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return fired_;
  }

  /// Per-site counters, for tests asserting exact delivery counts.
  std::uint64_t fired(const std::string& name) const I2A_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    const auto it = sites_.find(name);
    return it == sites_.end() ? 0 : it->second.fired;
  }
  std::uint64_t evaluations(const std::string& name) const
      I2A_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    const auto it = sites_.find(name);
    return it == sites_.end() ? 0 : it->second.evaluations;
  }

 private:
  struct Site {
    Schedule schedule;
    std::uint64_t evaluations = 0;        ///< lifetime reaches of the site
    std::uint64_t armed_evaluations = 0;  ///< reaches since last arm
    std::uint64_t fired = 0;              ///< lifetime fires
  };

  static std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  mutable Mutex mu_;
  std::map<std::string, Site> sites_ I2A_GUARDED_BY(mu_);
  std::uint64_t fired_ I2A_GUARDED_BY(mu_) = 0;
};

/// RAII arm/disarm: the site is armed for exactly this scope, so an
/// early return or a throwing CHECK cannot leak an armed failpoint into
/// unrelated code.
///
/// Nesting two scopes on the *same* site is defined as last-wins with
/// restore-on-unwind: the inner scope's schedule replaces the outer one
/// for its lifetime (the outer schedule is paused, its fire-progress
/// frozen), and when the inner scope unwinds the outer schedule resumes
/// exactly where it left off. A non-nested scope restores the disarmed
/// state, i.e. behaves as before.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, FailpointRegistry::Schedule schedule)
      : name_(std::move(name)),
        prior_(FailpointRegistry::instance().exchange(name_, schedule)) {}
  // NOLINTNEXTLINE(bugprone-exception-escape): restore only assigns into
  // an existing map entry (find + assign), which cannot throw; the
  // lookup allocates nothing.
  ~ScopedFailpoint() { FailpointRegistry::instance().restore(name_, prior_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  FailpointRegistry::ArmedState prior_;
};

/// Snapshot of the global fire counter for stats plumbing; 0 when
/// failpoints are compiled out (so StreamStats::failpoints_hit is
/// meaningful — and zero — in production builds).
inline std::uint64_t failpoints_fired_total() {
#if I2A_FAILPOINTS_ENABLED
  return FailpointRegistry::instance().fired();
#else
  return 0;
#endif
}

}  // namespace i2a::util

/// The site macro. In failpoint builds, evaluates the named site (may
/// throw per the armed schedule); otherwise compiles to nothing — no
/// registry call, no string, no lock.
#if I2A_FAILPOINTS_ENABLED
#define I2A_FAILPOINT(name) ::i2a::util::FailpointRegistry::instance().hit(name)
#else
#define I2A_FAILPOINT(name) static_cast<void>(0)
#endif
