#pragma once
/// \file util/thread_annotations.hpp
/// \brief Clang Thread Safety Analysis vocabulary for the serving core:
///        `I2A_CAPABILITY`, `I2A_GUARDED_BY`, `I2A_REQUIRES`, … — the
///        macros every lock-owning type threads through its members and
///        methods so `-Wthread-safety` proves the lock discipline at
///        compile time (DESIGN.md §11).
///
/// The dynamic checkers (the TSan CI leg, the failpoint sweeps) can only
/// flag a locking bug on an interleaving some test actually schedules.
/// These annotations close that gap: they declare, in the type system,
/// which mutex guards which state and which functions require or acquire
/// which capability, and Clang's `-Wthread-safety` analysis then rejects
/// *any* code path — including ones added by future PRs — that touches
/// guarded state without holding the right lock. The CI thread-safety
/// leg compiles the whole tree with `-Wthread-safety -Werror`; two
/// configure-time negative compile tests (tests/compile_fail/ts_*.cpp)
/// prove the analysis actually bites, and a positive control proves the
/// vocabulary itself is warning-clean.
///
/// **Zero runtime cost.** Every macro expands to a pure attribute —
/// Clang consumes it at analysis time and emits identical object code
/// with or without it (the CI leg byte-compares the two, see
/// tools/lint/check_zero_cost.sh). On compilers without the attribute
/// family (GCC) the macros expand to nothing, so the annotated headers
/// stay portable. `I2A_DISABLE_THREAD_ANNOTATIONS` force-disables the
/// expansion on Clang too — that is what the byte-identity check
/// compiles against.
///
/// The macro set mirrors the vocabulary from the Clang Thread Safety
/// Analysis documentation (and Abseil's thread_annotations.h), with the
/// `I2A_` prefix. The annotated capability types themselves — the
/// `Mutex` wrapper, the `MutexLock` scoped capability, and `CondVar` —
/// live in util/sync.hpp.

#if defined(__clang__) && !defined(I2A_DISABLE_THREAD_ANNOTATIONS) && \
    defined(__has_attribute)
#if __has_attribute(guarded_by)
#define I2A_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef I2A_THREAD_ANNOTATION_
#define I2A_THREAD_ANNOTATION_(x)  // not Clang (or disabled): expand to nothing
#endif

/// Class attribute: instances of this type are capabilities ("mutex",
/// "role", …). Acquiring/releasing the object is what ACQUIRE/RELEASE
/// functions declare; GUARDED_BY names an instance.
#define I2A_CAPABILITY(x) I2A_THREAD_ANNOTATION_(capability(x))

/// Class attribute: RAII object that acquires a capability at
/// construction and releases it at destruction (util::MutexLock).
#define I2A_SCOPED_CAPABILITY I2A_THREAD_ANNOTATION_(scoped_lockable)

/// Member attribute: reads need the capability held (shared or
/// exclusive); writes need it held exclusively.
#define I2A_GUARDED_BY(x) I2A_THREAD_ANNOTATION_(guarded_by(x))

/// Member attribute for pointers: the *pointee* is guarded (the pointer
/// itself may be read freely).
#define I2A_PT_GUARDED_BY(x) I2A_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function attribute: caller must hold the named capabilities
/// exclusively on entry (and still holds them on exit).
#define I2A_REQUIRES(...) \
  I2A_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function attribute: caller must hold at least shared access.
#define I2A_REQUIRES_SHARED(...) \
  I2A_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function attribute: acquires the named capabilities (must not be held
/// on entry; held on exit). On a scoped-capability member with no
/// argument, refers to the capabilities the object manages.
#define I2A_ACQUIRE(...) \
  I2A_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function attribute: releases the named capabilities (held on entry;
/// not held on exit).
#define I2A_RELEASE(...) \
  I2A_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function attribute: acquires the capability iff the return value
/// equals the first argument (e.g. `I2A_TRY_ACQUIRE(true)` on try_lock).
#define I2A_TRY_ACQUIRE(...) \
  I2A_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function attribute: the named capabilities must NOT be held on entry
/// — the declared anti-deadlock / anti-self-lock contract for public
/// entry points that take the lock themselves.
#define I2A_EXCLUDES(...) I2A_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function attribute: asserts (at analysis level) that the capability
/// is held — for code reached only from holders the analysis can't see.
#define I2A_ASSERT_CAPABILITY(x) \
  I2A_THREAD_ANNOTATION_(assert_capability(x))

/// Function attribute: the function returns a reference to the named
/// capability (accessor pattern).
#define I2A_RETURN_CAPABILITY(x) I2A_THREAD_ANNOTATION_(lock_returned(x))

/// Function attribute: opt this function out of the analysis entirely.
/// The documented escape hatch — EVERY use must be listed with its
/// justification in DESIGN.md §11, and the list is part of review.
#define I2A_NO_THREAD_SAFETY_ANALYSIS \
  I2A_THREAD_ANNOTATION_(no_thread_safety_analysis)
