#pragma once
/// \file util/thread_pool.hpp
/// \brief Small fixed-size worker pool with a blocking `parallel_for`.
///
/// The SpGEMM kernels only need fork/join row-range parallelism, so the
/// pool exposes exactly that: `parallel_for(n, fn)` splits [0, n) into
/// contiguous chunks, runs them on the workers (the calling thread takes a
/// share too), and returns when every chunk is done. Exceptions from
/// worker chunks are captured and rethrown on the caller.
///
/// `parallel_for_chunks` additionally hands each chunk its id. The
/// decomposition is a pure function of (n, size()) — `num_chunks(n)`
/// predicts it — so callers can preallocate per-chunk scratch once and
/// reuse it across consecutive passes (the SpGEMM engine's symbolic and
/// numeric passes share accumulators this way).
///
/// `submit` adds detached background execution (the streaming builder's
/// compaction tasks): a fire-and-forget callable that runs on a worker
/// as soon as one is free, with the same FIFO queue the fork/join chunks
/// use. Queued submissions are drained — not dropped — by the
/// destructor, so a submitted task always runs exactly once. An
/// exception escaping a submitted task has no caller join to deliver it
/// to, so it routes through the pool's *submit error handler*: by
/// default the first escaped exception is captured into a slot the
/// owner polls with `take_submit_error()`; `set_submit_error_handler`
/// replaces that with a caller-supplied sink (log-and-count, rethrow
/// into a supervisor, …).
///
/// Lock discipline (DESIGN.md §11, checked by `-Wthread-safety`): `mu_`
/// guards the task queue and the stop flag; `submit_error_mu_` guards
/// the submit-error handler and slot. The two are never held together.
/// Every guarded member carries `I2A_GUARDED_BY`, so any new code path
/// that touches pool state without the right lock is a compile error on
/// the CI thread-safety leg, not a TSan race some test has to schedule.

#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace i2a::util {

class ThreadPool {
 public:
  /// `num_threads` is the total degree of parallelism; the pool spawns
  /// `num_threads - 1` workers because the caller participates.
  explicit ThreadPool(std::size_t num_threads) {
    const std::size_t workers = num_threads > 1 ? num_threads - 1 : 0;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // NOLINTNEXTLINE(bugprone-exception-escape): thread::join can throw
  // std::system_error only for deadlock-with-self or invalid handles,
  // both of which are unrecoverable pool-usage bugs; terminating is the
  // right outcome.
  ~ThreadPool() I2A_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  std::size_t size() const { return workers_.size() + 1; }

  /// Number of chunks `parallel_for` / `parallel_for_chunks` will use for
  /// a trip count of `n`: 0 for an empty range, 1 when the pool is
  /// single-threaded or n == 1, otherwise ceil(n / ceil(n / size())).
  index_t num_chunks(index_t n) const {
    if (n <= 0) return 0;
    const auto chunks = static_cast<index_t>(size());
    if (chunks == 1 || n == 1) return 1;
    const index_t step = (n + chunks - 1) / chunks;
    return (n + step - 1) / step;
  }

  /// Run `fn(begin, end)` over a partition of [0, n) and wait for all
  /// chunks. `fn` must be safe to call concurrently on disjoint ranges.
  void parallel_for(index_t n,
                    const std::function<void(index_t, index_t)>& fn) {
    parallel_for_chunks(
        n, [&fn](index_t, index_t begin, index_t end) { fn(begin, end); });
  }

  /// Like `parallel_for`, but `fn(chunk, begin, end)` also receives the
  /// chunk id, a dense 0-based index below `num_chunks(n)`. Chunk `c`
  /// always covers the same row range for a given (n, size()), and no two
  /// chunks run with the same id, so scratch keyed by chunk id is both
  /// race-free and deterministic.
  ///
  /// Concurrency contract (pinned by test_thread_pool.cpp under TSan):
  /// distinct threads may call into one pool simultaneously — each call
  /// owns a private join state, so concurrent callers only share the
  /// task queue. A *nested* call (from inside a running chunk) runs its
  /// whole range serially as one chunk instead of enqueuing: the queue
  /// is FIFO with no work stealing, so nested sub-chunks could otherwise
  /// sit queued behind chunks whose threads are all blocked waiting on
  /// those very sub-chunks — a deadlock. Serial nesting keeps the same
  /// bytes (every engine is pool-size-invariant, and the serialized
  /// decomposition is the pool-size-1 one); `num_chunks` describes
  /// non-nested calls.
  void parallel_for_chunks(
      index_t n, const std::function<void(index_t, index_t, index_t)>& fn)
      I2A_EXCLUDES(mu_) {
    if (n <= 0) return;
    const auto chunks = static_cast<index_t>(size());
    if (chunks == 1 || n == 1 || in_chunk()) {
      ChunkGuard guard;
      fn(0, 0, n);
      return;
    }
    const index_t step = (n + chunks - 1) / chunks;
    // Join state lives on the heap and is owned by every worker lambda:
    // a worker's final notify may run after the caller has already seen
    // pending == 0, so stack-local state would be a use-after-scope.
    struct JoinState {
      Mutex mu;
      CondVar cv;
      index_t pending I2A_GUARDED_BY(mu) = 0;
      std::exception_ptr error I2A_GUARDED_BY(mu);
    };
    const auto state = std::make_shared<JoinState>();

    for (index_t begin = step; begin < n; begin += step) {
      const index_t end = begin + step < n ? begin + step : n;
      // `fn` is captured by reference but only used before the pending
      // decrement, which the caller's join waits on. The increment
      // happens only after a successful enqueue: if the queue push ever
      // threw, an early increment would strand `pending` nonzero and
      // deadlock the join. (A transiently negative count while a fast
      // worker finishes first is fine — the caller only evaluates the
      // predicate after all increments.)
      try {
        enqueue([state, &fn, begin, end, step] {
          try {
            ChunkGuard guard;
            fn(begin / step, begin, end);
          } catch (...) {
            MutexLock lock(state->mu);
            if (!state->error) state->error = std::current_exception();
          }
          {
            MutexLock lock(state->mu);
            --state->pending;
          }
          state->cv.notify_one();
        });
      } catch (...) {
        // A failed push must not unwind while already-enqueued chunks
        // still hold their reference to `fn` (and to this frame's
        // `state` use): drain them, then rethrow the push failure.
        MutexLock lock(state->mu);
        while (state->pending != 0) state->cv.wait(state->mu);
        throw;
      }
      {
        MutexLock lock(state->mu);
        ++state->pending;
      }
    }
    // The caller runs the first chunk instead of idling. Its exception
    // must not propagate until every worker chunk has drained.
    try {
      ChunkGuard guard;
      fn(0, 0, step < n ? step : n);
    } catch (...) {
      MutexLock lock(state->mu);
      if (!state->error) state->error = std::current_exception();
    }
    MutexLock lock(state->mu);
    while (state->pending != 0) state->cv.wait(state->mu);
    if (state->error) std::rethrow_exception(state->error);
  }

  /// Detached background task: runs once on a worker thread (FIFO with
  /// the fork/join chunks), or inline — before `submit` returns — when
  /// the pool has no workers, so background work never silently starves
  /// on a single-threaded pool. The task body executes under the same
  /// in-chunk marker as a fork/join chunk: a submitted task that fans
  /// back into this pool with `parallel_for` runs that region serially,
  /// by the identical FIFO-starvation argument as nested chunks (its
  /// sub-chunks could sit queued behind tasks whose workers are blocked
  /// waiting on them). An exception escaping the callable is delivered
  /// to the submit error handler (never dropped, never std::terminate):
  /// the default handler stores the first one for `take_submit_error`.
  /// `submit` itself may throw (queue allocation) — the task then never
  /// ran, and the caller still owns the work.
  void submit(std::function<void()> task) I2A_EXCLUDES(mu_) {
    auto guarded = [this, t = std::move(task)] {
      ChunkGuard guard;
      try {
        t();
      } catch (...) {
        note_submit_error(std::current_exception());
      }
    };
    if (workers_.empty()) {
      guarded();
      return;
    }
    enqueue(std::move(guarded));
  }

  /// What `submit` does with an escaped task exception.
  using SubmitErrorHandler = std::function<void(std::exception_ptr)>;

  /// Install `handler` as the sink for escaped submit-task exceptions
  /// (pass nullptr to restore the default capture-into-slot behavior).
  /// The handler runs on whichever thread the task ran on and must not
  /// throw — an exception escaping it is swallowed (there is nowhere
  /// left to deliver it). Installing a handler does not disturb an
  /// already-captured slot error.
  void set_submit_error_handler(SubmitErrorHandler handler)
      I2A_EXCLUDES(submit_error_mu_) {
    MutexLock lock(submit_error_mu_);
    submit_error_handler_ = std::move(handler);
  }

  /// Poll-and-clear the default handler's slot: the first escaped
  /// submit-task exception since the last take, or nullptr. The owner of
  /// a pool running fire-and-forget work polls this at its own error
  /// boundaries (the streaming builder surfaces its merge failures
  /// through its own ladder instead — this slot is the safety net for
  /// everything else).
  std::exception_ptr take_submit_error() I2A_EXCLUDES(submit_error_mu_) {
    MutexLock lock(submit_error_mu_);
    return std::exchange(submit_error_, nullptr);
  }

 private:
  void note_submit_error(std::exception_ptr error)
      I2A_EXCLUDES(submit_error_mu_) {
    SubmitErrorHandler handler;
    {
      MutexLock lock(submit_error_mu_);
      if (submit_error_handler_) {
        handler = submit_error_handler_;  // copy; invoke outside the lock
      } else if (!submit_error_) {
        submit_error_ = error;  // default: capture the first escape
      }
    }
    if (handler) {
      try {
        handler(std::move(error));
      } catch (...) {
        // The handler broke its no-throw contract; nothing can observe
        // an exception here, so the escape ends at this boundary.
      }
    }
  }

  /// True while the current thread is executing a chunk body (of any
  /// pool — the deadlock argument above only needs "this thread is
  /// inside a fork/join region", and a cross-pool nested fan-out from a
  /// blocked-upon chunk has the same shape).
  static bool& in_chunk() {
    static thread_local bool value = false;
    return value;
  }

  /// RAII marker for chunk execution; restores the previous state so
  /// sequential sibling calls after a nested region see it cleared.
  struct ChunkGuard {
    bool prev;
    ChunkGuard() : prev(in_chunk()) { in_chunk() = true; }
    ~ChunkGuard() { in_chunk() = prev; }
    ChunkGuard(const ChunkGuard&) = delete;
    ChunkGuard& operator=(const ChunkGuard&) = delete;
  };

  void enqueue(std::function<void()> task) I2A_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

  void worker_loop() I2A_EXCLUDES(mu_) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mu_);
        while (!stopping_ && tasks_.empty()) cv_.wait(mu_);
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;  ///< written in ctor, joined in dtor only
  Mutex mu_;
  CondVar cv_;  ///< signaled on enqueue and on stop
  std::queue<std::function<void()>> tasks_ I2A_GUARDED_BY(mu_);
  bool stopping_ I2A_GUARDED_BY(mu_) = false;
  Mutex submit_error_mu_;
  SubmitErrorHandler submit_error_handler_ I2A_GUARDED_BY(submit_error_mu_);
  std::exception_ptr submit_error_ I2A_GUARDED_BY(submit_error_mu_);
};

}  // namespace i2a::util
