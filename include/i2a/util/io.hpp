#pragma once

// Durable-I/O primitives for the streaming WAL and checkpoint files
// (stream/wal.hpp, stream/checkpoint.hpp): CRC32C, fixed-width
// little-endian encoding, POSIX fd wrappers, and the length-prefixed
// checksummed frame format shared by every on-disk record.
//
// Frame layout (DESIGN.md §12):
//
//   [u32 len][u32 crc32c(payload)][payload: len bytes]
//
// both header words little-endian. The header and the payload are
// written as two *separate* write(2) calls on purpose: a SIGKILL (or
// power cut) between them leaves a torn tail that FrameReader must
// classify, so the recovery path is exercised by real kill schedules,
// not only by synthetic truncation. write_fully() below is the single
// place a raw write(2) may appear — everything else goes through the
// frame writer (enforced by the `durable-write-checksummed` lint rule).
//
// Portability: POSIX-only (open/write/fsync/ftruncate/rename + parent
// directory fsync), which is what CI runs. Multi-byte integers are
// encoded explicitly little-endian; floating-point payload values are
// stored via their IEEE-754 bit pattern.

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/contract.hpp"

namespace i2a::util {

// Typed failure for any syscall-level I/O problem (open, write, fsync,
// rename, ...). Recovery-time *format* problems use
// stream::RecoveryError instead; an IoError during recovery means the
// environment (not the data) is broken.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void throw_errno(const std::string& op,
                                     const std::string& path) {
  throw IoError(op + " '" + path + "': " + std::strerror(errno));
}

// ---------------------------------------------------------------------------
// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — software
// table-based; portable and fast enough for the batch sizes the WAL
// sees. Matches the widely deployed iSCSI/ext4 checksum so frames are
// verifiable with standard tooling.

inline const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1U) != 0 ? 0x82F63B78U : 0U);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

inline std::uint32_t crc32c(const void* data, std::size_t len,
                            std::uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = crc32c_table();
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFFU];
  }
  return ~crc;
}

// ---------------------------------------------------------------------------
// Fixed-width little-endian payload encoding.

class ByteWriter {
 public:
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xFFU));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xFFU));
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }
  // Length-prefixed string: u32 byte count, then the bytes.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }
  const std::vector<unsigned char>& buffer() const { return buf_; }
  std::vector<unsigned char> take() { return std::move(buf_); }

 private:
  std::vector<unsigned char> buf_;
};

// Reader over a decoded frame payload. Overrunning the payload throws
// IoError("payload underrun ...") — callers at recovery time translate
// that into a typed RecoveryError; it never reads out of bounds.
class ByteReader {
 public:
  ByteReader(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<unsigned char>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  void raw(void* out, std::size_t len) {
    need(len);
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
  }
  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw IoError("payload underrun: need " + std::to_string(n) +
                    " bytes, have " + std::to_string(size_ - pos_));
    }
  }
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// POSIX fd wrapper. Move-only; throws IoError on any syscall failure.

class File {
 public:
  File() = default;
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  File(File&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}
  File& operator=(File&& other) noexcept {
    if (this != &other) {
      close_quietly();
      fd_ = std::exchange(other.fd_, -1);
      path_ = std::move(other.path_);
    }
    return *this;
  }
  ~File() { close_quietly(); }

  static File create_append(const std::string& path) {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) throw_errno("open(create)", path);
    return File(fd, path);
  }
  // Open an existing file for append without O_APPEND semantics getting
  // in the way of ftruncate-based rollback: plain O_WRONLY positioned
  // at the end.
  static File open_append(const std::string& path) {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd < 0) throw_errno("open(append)", path);
    File f(fd, path);
    if (::lseek(fd, 0, SEEK_END) < 0) throw_errno("lseek", path);
    return f;
  }

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  // The one raw write(2) site in the durable path (see file comment and
  // the `durable-write-checksummed` lint rule). Loops on short writes
  // and EINTR.
  void write_fully(const void* data, std::size_t len) {
    I2A_EXPECTS(is_open(), "io: file not open");
    const auto* p = static_cast<const unsigned char*>(data);
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd_, p + off, len - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("write", path_);
      }
      off += static_cast<std::size_t>(n);
    }
  }

  void sync() {
    I2A_EXPECTS(is_open(), "io: file not open");
    if (::fsync(fd_) != 0) throw_errno("fsync", path_);
  }

  std::uint64_t size() const {
    I2A_EXPECTS(is_open(), "io: file not open");
    struct stat st = {};
    if (::fstat(fd_, &st) != 0) throw_errno("fstat", path_);
    return static_cast<std::uint64_t>(st.st_size);
  }

  // Truncate to `len` and reposition the write offset there — the WAL's
  // rollback primitive for failed appends.
  void truncate(std::uint64_t len) {
    I2A_EXPECTS(is_open(), "io: file not open");
    if (::ftruncate(fd_, static_cast<off_t>(len)) != 0) {
      throw_errno("ftruncate", path_);
    }
    if (::lseek(fd_, static_cast<off_t>(len), SEEK_SET) < 0) {
      throw_errno("lseek", path_);
    }
  }

  void close() {
    if (fd_ >= 0) {
      const int fd = std::exchange(fd_, -1);
      if (::close(fd) != 0) throw_errno("close", path_);
    }
  }

 private:
  File(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  void close_quietly() noexcept {
    if (fd_ >= 0) ::close(std::exchange(fd_, -1));
  }
  int fd_ = -1;
  std::string path_;
};

// ---------------------------------------------------------------------------
// Directory helpers. Metadata durability (a created/renamed file name
// surviving power loss) requires fsyncing the parent directory; SIGKILL
// alone does not need it, but the checkpoint rename protocol does it
// anyway so the documented contract holds for power loss too.

inline void ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    throw_errno("mkdir", path);
  }
}

inline void fsync_dir(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) throw_errno("open(dir)", path);
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved;
    throw_errno("fsync(dir)", path);
  }
}

inline std::vector<std::string> list_dir(const std::string& path) {
  DIR* d = ::opendir(path.c_str());
  if (d == nullptr) throw_errno("opendir", path);
  std::vector<std::string> names;
  errno = 0;
  while (const dirent* e = ::readdir(d)) {
    const std::string_view name = e->d_name;
    if (name != "." && name != "..") names.emplace_back(name);
    errno = 0;
  }
  const int saved = errno;
  ::closedir(d);
  if (saved != 0) {
    errno = saved;
    throw_errno("readdir", path);
  }
  std::sort(names.begin(), names.end());
  return names;
}

inline void remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0) throw_errno("unlink", path);
}

inline void rename_file(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    throw_errno("rename", from + "' -> '" + to);
  }
}

inline bool file_exists(const std::string& path) {
  struct stat st = {};
  return ::stat(path.c_str(), &st) == 0;
}

inline std::vector<unsigned char> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("open(read)", path);
  std::vector<unsigned char> buf;
  std::array<unsigned char, 1 << 16> chunk;  // NOLINT(*-member-init)
  for (;;) {
    const ssize_t n = ::read(fd, chunk.data(), chunk.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("read", path);
    }
    if (n == 0) break;
    buf.insert(buf.end(), chunk.data(), chunk.data() + n);
  }
  ::close(fd);
  return buf;
}

// ---------------------------------------------------------------------------
// Frame writer / reader.

// Byte size of the [len][crc] frame header.
inline constexpr std::size_t kFrameHeaderBytes = 8;

// Upper bound on a single frame's payload. A torn header whose length
// word decodes beyond this is classified as torn/corrupt instead of
// attempting a giant allocation. Checkpoint run frames carry whole CSR
// arrays, so the bound is generous.
inline constexpr std::uint64_t kMaxFrameBytes = 1ULL << 32;

inline std::array<unsigned char, kFrameHeaderBytes> frame_header(
    const std::vector<unsigned char>& payload) {
  I2A_EXPECTS(payload.size() <= kMaxFrameBytes, "io: oversized frame");
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32c(payload.data(), payload.size());
  std::array<unsigned char, kFrameHeaderBytes> h;  // NOLINT(*-member-init)
  for (int i = 0; i < 4; ++i) {
    h[static_cast<std::size_t>(i)] =
        static_cast<unsigned char>((len >> (8 * i)) & 0xFFU);
    h[static_cast<std::size_t>(i) + 4] =
        static_cast<unsigned char>((crc >> (8 * i)) & 0xFFU);
  }
  return h;
}

// Append one frame: header write, then payload write (two syscalls —
// see file comment). `between` runs between the two, which is where the
// WAL plants its `wal.append.write` failpoint to simulate a crash in
// the torn window.
template <typename BetweenFn>
void write_frame(File& f, const std::vector<unsigned char>& payload,
                 BetweenFn&& between) {
  const auto h = frame_header(payload);
  f.write_fully(h.data(), h.size());
  between();
  f.write_fully(payload.data(), payload.size());
}

inline void write_frame(File& f, const std::vector<unsigned char>& payload) {
  write_frame(f, payload, [] {});
}

enum class FrameStatus {
  kOk,    // frame decoded, payload valid
  kEnd,   // clean end of buffer, no bytes left over
  kTorn,  // trailing bytes that do not form a CRC-valid frame
};

// Sequential reader over an in-memory file image. `offset()` after a
// kTorn result is the byte offset of the last valid frame boundary —
// exactly what recovery ftruncates a tail-torn segment to.
class FrameReader {
 public:
  FrameReader(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit FrameReader(const std::vector<unsigned char>& buf)
      : FrameReader(buf.data(), buf.size()) {}

  FrameStatus next(std::vector<unsigned char>& payload_out) {
    if (pos_ == size_) return FrameStatus::kEnd;
    if (size_ - pos_ < kFrameHeaderBytes) return FrameStatus::kTorn;
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
             << (8 * i);
      crc |= static_cast<std::uint32_t>(
                 data_[pos_ + static_cast<std::size_t>(i) + 4])
             << (8 * i);
    }
    if (len > kMaxFrameBytes || len > size_ - pos_ - kFrameHeaderBytes) {
      return FrameStatus::kTorn;
    }
    const unsigned char* payload = data_ + pos_ + kFrameHeaderBytes;
    if (crc32c(payload, len) != crc) return FrameStatus::kTorn;
    payload_out.assign(payload, payload + len);
    pos_ += kFrameHeaderBytes + len;
    return FrameStatus::kOk;
  }

  // Offset of the next unread byte = last valid frame boundary seen.
  std::uint64_t offset() const { return pos_; }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::uint64_t pos_ = 0;
};

}  // namespace i2a::util
