#pragma once
/// \file graph/incidence.hpp
/// \brief Incidence-array assembly and the paper's central construction
///        A = Eᵀout ⊕.⊗ Ein (Theorem II.1), plus the reverse-graph
///        corollary Aᵀ-construction (Corollary III.1).
///
/// Eout and Ein are |E| × |V| arrays: row e of Eout marks the source
/// vertex of edge e, row e of Ein its destination. Each row has exactly
/// one nonzero, so a self-loop is simply the same column marked in both
/// arrays, and parallel edges are distinct rows — the fold ⊕ merges them
/// during the product.

#include <cassert>
#include <utility>

#include "graph/graph.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/spgemm.hpp"

namespace i2a::graph {

template <typename T>
struct IncidencePair {
  sparse::Csr<T> eout;  ///< |E| × |V| source-incidence array
  sparse::Csr<T> ein;   ///< |E| × |V| destination-incidence array
};

/// Build Eout/Ein with caller-chosen entry values:
/// `draw(edge_index, is_out)` must return a value that is nonzero in the
/// intended algebra (the theorem's hypothesis on incidence arrays).
template <typename T, typename Draw>
IncidencePair<T> incidence_arrays_with(const Graph& g, Draw&& draw) {
  sparse::Coo<T> out(g.num_edges(), g.num_vertices());
  sparse::Coo<T> in(g.num_edges(), g.num_vertices());
  const auto& edges = g.edges();
  for (index_t e = 0; e < g.num_edges(); ++e) {
    out.push(e, edges[static_cast<std::size_t>(e)].src, draw(e, true));
    in.push(e, edges[static_cast<std::size_t>(e)].dst, draw(e, false));
  }
  return IncidencePair<T>{
      sparse::Csr<T>::from_coo(std::move(out), sparse::DupPolicy::kKeepFirst),
      sparse::Csr<T>::from_coo(std::move(in), sparse::DupPolicy::kKeepFirst)};
}

/// Unweighted incidence arrays: every incidence entry is 1, as in the
/// paper's unweighted figures. (1 is distinct from the zero element of
/// all seven Table I pairs, so the theorem's hypothesis holds.)
template <typename P>
IncidencePair<typename P::value_type> incidence_arrays(const Graph& g,
                                                       const P&) {
  using T = typename P::value_type;
  return incidence_arrays_with<T>(g, [](index_t, bool) { return T(1); });
}

/// Weighted incidence arrays: Ein carries the edge weight, Eout carries
/// the multiplicative identity, so each edge contributes exactly its
/// weight to the fold — A(i,j) = ⊕ over parallel edges of w(e). This is
/// what makes min.+ adjacency arrays directly usable for SSSP/APSP.
template <typename P>
IncidencePair<typename P::value_type> weighted_incidence_arrays(const Graph& g,
                                                                const P& p) {
  using T = typename P::value_type;
  const auto& edges = g.edges();
  return incidence_arrays_with<T>(g, [&](index_t e, bool is_out) {
    return is_out ? p.one()
                  : static_cast<T>(edges[static_cast<std::size_t>(e)].weight);
  });
}

/// Prebuilt CSC views over both incidence arrays: the fused AᵀB engine
/// consumes the A operand column-wise, so callers constructing several
/// adjacency products from one incidence pair (forward + reverse, or an
/// operator-pair sweep) build the views once and amortize them. Borrows
/// `inc` — the pair must outlive the views.
template <typename T>
struct IncidenceViews {
  sparse::CscView<T> eout_t;  ///< Eᵀout, the forward-product A operand
  sparse::CscView<T> ein_t;   ///< Eᵀin, the reverse-product A operand
  explicit IncidenceViews(const IncidencePair<T>& inc)
      : eout_t(inc.eout), ein_t(inc.ein) {}
};

/// The paper's construction: A = Eᵀout ⊕.⊗ Ein, on the fused CSC-view
/// path (no transpose is ever materialized). kAuto lets the engine pick
/// the accumulator per row from the symbolic pass's estimates.
template <typename P>
sparse::Csr<typename P::value_type> adjacency_array(
    const P& p, const IncidencePair<typename P::value_type>& inc,
    sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kAuto,
    util::ThreadPool* pool = nullptr) {
  return sparse::spgemm_at_b(p, inc.eout, inc.ein, algo, pool);
}

/// Repeated-product form of `adjacency_array` over prebuilt views.
/// `views` must have been built from this `inc`.
template <typename P>
sparse::Csr<typename P::value_type> adjacency_array(
    const P& p, const IncidenceViews<typename P::value_type>& views,
    const IncidencePair<typename P::value_type>& inc,
    sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kAuto,
    util::ThreadPool* pool = nullptr) {
  assert(&views.eout_t.base() == &inc.eout);
  return sparse::spgemm_at_b(p, views.eout_t, inc.ein, algo, pool);
}

/// Corollary III.1: the adjacency array of the reverse graph is
/// Eᵀin ⊕.⊗ Eout — swap the incidence arrays, no new product machinery.
template <typename P>
sparse::Csr<typename P::value_type> reverse_adjacency_array(
    const P& p, const IncidencePair<typename P::value_type>& inc,
    sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kAuto,
    util::ThreadPool* pool = nullptr) {
  return sparse::spgemm_at_b(p, inc.ein, inc.eout, algo, pool);
}

/// Repeated-product form of `reverse_adjacency_array` over prebuilt
/// views. `views` must have been built from this `inc`.
template <typename P>
sparse::Csr<typename P::value_type> reverse_adjacency_array(
    const P& p, const IncidenceViews<typename P::value_type>& views,
    const IncidencePair<typename P::value_type>& inc,
    sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kAuto,
    util::ThreadPool* pool = nullptr) {
  assert(&views.ein_t.base() == &inc.ein);
  return sparse::spgemm_at_b(p, views.ein_t, inc.eout, algo, pool);
}

/// End-to-end convenience: graph → incidence arrays → adjacency array.
template <typename P>
sparse::Csr<typename P::value_type> build_adjacency(
    const Graph& g, const P& p,
    sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kAuto,
    util::ThreadPool* pool = nullptr) {
  return adjacency_array(p, incidence_arrays(g, p), algo, pool);
}

}  // namespace i2a::graph
