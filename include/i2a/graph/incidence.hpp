#pragma once
/// \file graph/incidence.hpp
/// \brief Incidence-array assembly and the paper's central construction
///        A = Eᵀout ⊕.⊗ Ein (Theorem II.1), plus the reverse-graph
///        corollary Aᵀ-construction (Corollary III.1).
///
/// Eout and Ein are |E| × |V| arrays: row e of Eout marks the source
/// vertex of edge e, row e of Ein its destination. Each row has exactly
/// one nonzero, so a self-loop is simply the same column marked in both
/// arrays, and parallel edges are distinct rows — the fold ⊕ merges them
/// during the product.
///
/// Assembly is **sort-free and zero-staging** (PR 3): exactly one nonzero
/// per row with rows arriving in edge order means the CSR row pointer is
/// the identity ramp 0..|E| and cols/vals are written in a single
/// (optionally parallel) pass over the edge list. No COO buffer, no
/// comparison sort, no duplicate scan — the O(|E| log |E|) stable sort
/// the old `Coo` + `from_coo` path paid is pure waste on this structure.
/// The bytes produced are identical to the old path's (and pool-size
/// independent: edge e always lands at slot e).

#include <cassert>
#include <utility>
#include <vector>

#include "algebra/concepts.hpp"
#include "graph/graph.hpp"
#include "sparse/csr.hpp"
#include "sparse/spgemm.hpp"
#include "util/contract.hpp"
#include "util/failpoint.hpp"
#include "util/thread_pool.hpp"

namespace i2a::graph {

template <typename T>
struct IncidencePair {
  sparse::Csr<T> eout;  ///< |E| × |V| source-incidence array
  sparse::Csr<T> ein;   ///< |E| × |V| destination-incidence array
};

/// Build Eout/Ein with caller-chosen entry values:
/// `draw(edge_index, is_out)` must return a value that is nonzero in the
/// intended algebra (the theorem's hypothesis on incidence arrays).
/// With a multi-thread `pool`, edge chunks fill their slots concurrently,
/// so `draw` must then be safe to call concurrently for distinct edges
/// (pure draws — constants, weight lookups — qualify; a shared stateful
/// RNG does not, pass no pool for those).
template <typename T, typename Draw>
IncidencePair<T> incidence_arrays_with(const Graph& g, Draw&& draw,
                                       util::ThreadPool* pool = nullptr) {
  const index_t m = g.num_edges();
  const index_t n = g.num_vertices();
  const auto& edges = g.edges();
  // Injection site: the six incidence-array allocations below. A fire
  // produces nothing — the caller's graph is untouched.
  I2A_FAILPOINT("incidence.assemble.alloc");
  // row_ptr is the identity ramp: row e holds exactly entry e.
  std::vector<index_t> out_ptr(static_cast<std::size_t>(m) + 1);
  std::vector<index_t> in_ptr(static_cast<std::size_t>(m) + 1);
  std::vector<index_t> out_cols(static_cast<std::size_t>(m));
  std::vector<index_t> in_cols(static_cast<std::size_t>(m));
  std::vector<T> out_vals(static_cast<std::size_t>(m));
  std::vector<T> in_vals(static_cast<std::size_t>(m));
  out_ptr[static_cast<std::size_t>(m)] = m;
  in_ptr[static_cast<std::size_t>(m)] = m;
  const bool parallel = pool != nullptr && pool->size() > 1 && m > 0;
  sparse::detail::run_chunked(
      pool, parallel, m, [&](index_t, index_t lo, index_t hi) {
        for (index_t e = lo; e < hi; ++e) {
          const Edge& ed = edges[static_cast<std::size_t>(e)];
          assert(ed.src >= 0 && ed.src < n && ed.dst >= 0 && ed.dst < n);
          out_ptr[static_cast<std::size_t>(e)] = e;
          in_ptr[static_cast<std::size_t>(e)] = e;
          out_cols[static_cast<std::size_t>(e)] = ed.src;
          in_cols[static_cast<std::size_t>(e)] = ed.dst;
          out_vals[static_cast<std::size_t>(e)] = draw(e, true);
          in_vals[static_cast<std::size_t>(e)] = draw(e, false);
        }
      });
  IncidencePair<T> inc{
      sparse::Csr<T>(m, n, std::move(out_ptr), std::move(out_cols),
                     std::move(out_vals)),
      sparse::Csr<T>(m, n, std::move(in_ptr), std::move(in_cols),
                     std::move(in_vals))};
  I2A_ENSURES(inc.eout.is_canonical() && inc.ein.is_canonical(),
              "incidence_arrays_with: non-canonical incidence CSR");
  return inc;
}

/// Unweighted incidence arrays: every incidence entry is 1, as in the
/// paper's unweighted figures. (1 is distinct from the zero element of
/// all seven Table I pairs, so the theorem's hypothesis holds.)
template <typename P>
  requires algebra::Semiring<P>
IncidencePair<typename P::value_type> incidence_arrays(
    const Graph& g, const P&, util::ThreadPool* pool = nullptr) {
  using T = typename P::value_type;
  return incidence_arrays_with<T>(
      g, [](index_t, bool) { return T(1); }, pool);
}

/// Weighted incidence arrays: Ein carries the edge weight, Eout carries
/// the multiplicative identity, so each edge contributes exactly its
/// weight to the fold — A(i,j) = ⊕ over parallel edges of w(e). This is
/// what makes min.+ adjacency arrays directly usable for SSSP/APSP.
template <typename P>
  requires algebra::Semiring<P>
IncidencePair<typename P::value_type> weighted_incidence_arrays(
    const Graph& g, const P& p, util::ThreadPool* pool = nullptr) {
  using T = typename P::value_type;
  const auto& edges = g.edges();
  return incidence_arrays_with<T>(
      g,
      [&](index_t e, bool is_out) {
        return is_out
                   ? p.one()
                   : static_cast<T>(edges[static_cast<std::size_t>(e)].weight);
      },
      pool);
}

/// Prebuilt CSC views over both incidence arrays: the fused AᵀB engine
/// consumes the A operand column-wise, so callers constructing several
/// adjacency products from one incidence pair (forward + reverse, or an
/// operator-pair sweep) build the views once and amortize them. Borrows
/// `inc` — the pair must outlive the views.
template <typename T>
struct IncidenceViews {
  sparse::CscView<T> eout_t;  ///< Eᵀout, the forward-product A operand
  sparse::CscView<T> ein_t;   ///< Eᵀin, the reverse-product A operand
  explicit IncidenceViews(const IncidencePair<T>& inc,
                          util::ThreadPool* pool = nullptr)
      : eout_t(inc.eout, pool), ein_t(inc.ein, pool) {}
};

/// The paper's construction: A = Eᵀout ⊕.⊗ Ein, on the fused CSC-view
/// path (no transpose is ever materialized). kAuto lets the engine pick
/// the accumulator per row from the symbolic pass's estimates.
template <typename P>
  requires algebra::Semiring<P>
sparse::Csr<typename P::value_type> adjacency_array(
    const P& p, const IncidencePair<typename P::value_type>& inc,
    sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kAuto,
    util::ThreadPool* pool = nullptr) {
  return sparse::spgemm_at_b(p, inc.eout, inc.ein, algo, pool);
}

/// Repeated-product form of `adjacency_array` over prebuilt views.
/// `views` must have been built from this `inc`.
template <typename P>
  requires algebra::Semiring<P>
sparse::Csr<typename P::value_type> adjacency_array(
    const P& p, const IncidenceViews<typename P::value_type>& views,
    const IncidencePair<typename P::value_type>& inc,
    sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kAuto,
    util::ThreadPool* pool = nullptr) {
  assert(&views.eout_t.base() == &inc.eout);
  return sparse::spgemm_at_b(p, views.eout_t, inc.ein, algo, pool);
}

/// Corollary III.1: the adjacency array of the reverse graph is
/// Eᵀin ⊕.⊗ Eout — swap the incidence arrays, no new product machinery.
template <typename P>
  requires algebra::Semiring<P>
sparse::Csr<typename P::value_type> reverse_adjacency_array(
    const P& p, const IncidencePair<typename P::value_type>& inc,
    sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kAuto,
    util::ThreadPool* pool = nullptr) {
  return sparse::spgemm_at_b(p, inc.ein, inc.eout, algo, pool);
}

/// Repeated-product form of `reverse_adjacency_array` over prebuilt
/// views. `views` must have been built from this `inc`.
template <typename P>
  requires algebra::Semiring<P>
sparse::Csr<typename P::value_type> reverse_adjacency_array(
    const P& p, const IncidenceViews<typename P::value_type>& views,
    const IncidencePair<typename P::value_type>& inc,
    sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kAuto,
    util::ThreadPool* pool = nullptr) {
  assert(&views.ein_t.base() == &inc.ein);
  return sparse::spgemm_at_b(p, views.ein_t, inc.eout, algo, pool);
}

/// End-to-end convenience: graph → incidence arrays → adjacency array.
/// The pool parallelizes *both* phases — the sort-free incidence
/// assembly and the product.
template <typename P>
  requires algebra::Semiring<P>
sparse::Csr<typename P::value_type> build_adjacency(
    const Graph& g, const P& p,
    sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kAuto,
    util::ThreadPool* pool = nullptr) {
  return adjacency_array(p, incidence_arrays(g, p, pool), algo, pool);
}

}  // namespace i2a::graph
