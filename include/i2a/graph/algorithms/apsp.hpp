#pragma once
/// \file graph/algorithms/apsp.hpp
/// \brief Semiring closures on constructed adjacency arrays: min.+ APSP
///        (Floyd–Warshall) and Boolean transitive closure.

#include <concepts>
#include <limits>
#include <vector>

#include "algebra/concepts.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "stream/pinned_snapshot.hpp"

namespace i2a::graph {

/// All-pairs shortest paths from a min.+ adjacency array. Dense
/// Floyd–Warshall; absent entries are +inf, diagonal starts at 0.
inline sparse::Dense<double> apsp(const sparse::Csr<double>& a) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  const index_t n = a.nrows();
  sparse::Dense<double> dist = sparse::to_dense(a, inf);
  for (index_t i = 0; i < n; ++i) {
    if (0.0 < dist.at(i, i)) dist.at(i, i) = 0.0;
  }
  for (index_t k = 0; k < n; ++k) {
    for (index_t i = 0; i < n; ++i) {
      const double dik = dist.at(i, k);
      if (dik == inf) continue;
      for (index_t j = 0; j < n; ++j) {
        const double cand = dik + dist.at(k, j);
        if (cand < dist.at(i, j)) dist.at(i, j) = cand;
      }
    }
  }
  return dist;
}

/// Boolean transitive closure of the adjacency pattern (an entry is an
/// edge when its value differs from `zero`). closure(i,j) = 1 iff a path
/// i → j with at least one edge exists; Warshall's algorithm.
template <typename T>
sparse::Dense<std::uint8_t> transitive_closure(const sparse::Csr<T>& a,
                                               T zero) {
  const index_t n = a.nrows();
  sparse::Dense<std::uint8_t> reach(n, n, 0);
  for (index_t i = 0; i < n; ++i) {
    const auto cs = a.row_cols(i);
    const auto vs = a.row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      if (!(vs[k] == zero)) reach.at(i, cs[k]) = 1;
    }
  }
  for (index_t k = 0; k < n; ++k) {
    for (index_t i = 0; i < n; ++i) {
      if (!reach.at(i, k)) continue;
      for (index_t j = 0; j < n; ++j) {
        if (reach.at(k, j)) reach.at(i, j) = 1;
      }
    }
  }
  return reach;
}

/// Snapshot overloads: both closures are dense O(n³) sweeps, so the one
/// k-way merge to materialize the pinned runs is noise — delegate.
template <typename P>
  requires algebra::Semiring<P> &&
           std::same_as<typename P::value_type, double>
sparse::Dense<double> apsp(const stream::PinnedSnapshot<P>& snap) {
  return apsp(snap.materialize());
}

template <typename P>
  requires algebra::Semiring<P>
sparse::Dense<std::uint8_t> transitive_closure(
    const stream::PinnedSnapshot<P>& snap) {
  return transitive_closure(snap.materialize(), snap.pair().zero());
}

}  // namespace i2a::graph
