#pragma once
/// \file graph/algorithms/sssp.hpp
/// \brief Bellman–Ford single-source shortest paths over a min.+
///        adjacency array (whose entries are already the folded parallel
///        -edge minima, by construction), with negative-cycle detection.

#include <concepts>
#include <limits>
#include <stdexcept>
#include <vector>

#include "algebra/concepts.hpp"
#include "sparse/csr.hpp"
#include "stream/pinned_snapshot.hpp"

namespace i2a::graph {

/// Bellman–Ford output. When a negative cycle is reachable from the
/// source, no finite shortest path exists for any vertex the cycle can
/// reach: those report -inf in `dist` and `has_negative_cycle` is set,
/// instead of the silently wrong finite distances the n-1 rounds alone
/// would leave behind. Vertices unaffected by any negative cycle keep
/// their correct finite distances (or +inf if unreachable).
struct SsspResult {
  std::vector<double> dist;
  bool has_negative_cycle = false;
};

/// Distances from `src` over a min.+ adjacency array: A(i,j) is the best
/// single-edge cost i → j, +inf-absent elsewhere. Throws
/// `std::out_of_range` for an out-of-range source (indexing dist[src]
/// unchecked was UB).
inline SsspResult sssp_bellman_ford(const sparse::Csr<double>& a,
                                    index_t src) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  const index_t n = a.nrows();
  if (src < 0 || src >= n) {
    throw std::out_of_range("sssp_bellman_ford: source vertex out of range");
  }
  SsspResult res;
  auto& dist = res.dist;
  dist.assign(static_cast<std::size_t>(n), inf);
  dist[static_cast<std::size_t>(src)] = 0.0;
  for (index_t round = 0; round + 1 < n; ++round) {
    bool changed = false;
    for (index_t u = 0; u < n; ++u) {
      const double du = dist[static_cast<std::size_t>(u)];
      if (du == inf) continue;
      const auto cs = a.row_cols(u);
      const auto vs = a.row_vals(u);
      for (std::size_t k = 0; k < cs.size(); ++k) {
        const double cand = du + vs[k];
        if (cand < dist[static_cast<std::size_t>(cs[k])]) {
          dist[static_cast<std::size_t>(cs[k])] = cand;
          changed = true;
        }
      }
    }
    if (!changed) return res;  // fixpoint: no negative cycle is reachable
  }
  // Detection sweep (round n): any vertex still relaxable lies on or
  // behind a reachable negative cycle. Flood -inf forward from those so
  // every poisoned distance is surfaced, not just the cycle itself.
  std::vector<index_t> frontier;
  std::vector<char> poisoned(static_cast<std::size_t>(n), 0);
  for (index_t u = 0; u < n; ++u) {
    const double du = dist[static_cast<std::size_t>(u)];
    if (du == inf) continue;
    const auto cs = a.row_cols(u);
    const auto vs = a.row_vals(u);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      const auto v = static_cast<std::size_t>(cs[k]);
      if (du + vs[k] < dist[v] && !poisoned[v]) {
        poisoned[v] = 1;
        frontier.push_back(cs[k]);
      }
    }
  }
  res.has_negative_cycle = !frontier.empty();
  while (!frontier.empty()) {
    const index_t u = frontier.back();
    frontier.pop_back();
    dist[static_cast<std::size_t>(u)] = -inf;
    const auto cs = a.row_cols(u);
    const auto vs = a.row_vals(u);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      // A stored +inf is the min.+ zero element, not an edge
      // (Definition I.5) — the relaxation sweeps already ignore it, so
      // the flood must not poison through it either.
      if (vs[k] == inf) continue;
      if (!poisoned[static_cast<std::size_t>(cs[k])]) {
        poisoned[static_cast<std::size_t>(cs[k])] = 1;
        frontier.push_back(cs[k]);
      }
    }
  }
  return res;
}

/// Bellman–Ford against a live min.+ builder's pinned snapshot. The
/// relaxation loop reads rows until fixpoint, so this materializes the
/// pinned runs once and delegates; the double constraint matches the
/// CSR overload (min.+ distances). Entries folded to +inf — the min.+
/// zero — are already ignored by the relaxation sweeps.
template <typename P>
  requires algebra::Semiring<P> &&
           std::same_as<typename P::value_type, double>
SsspResult sssp_bellman_ford(const stream::PinnedSnapshot<P>& snap,
                             index_t src) {
  return sssp_bellman_ford(snap.materialize(), src);
}

}  // namespace i2a::graph
