#pragma once
/// \file graph/algorithms/sssp.hpp
/// \brief Bellman–Ford single-source shortest paths over a min.+
///        adjacency array (whose entries are already the folded parallel
///        -edge minima, by construction).

#include <limits>
#include <vector>

#include "sparse/csr.hpp"

namespace i2a::graph {

/// Distances from `src`; unreachable vertices report +inf. The input is
/// interpreted as a min.+ adjacency array: A(i,j) is the best single-edge
/// cost i → j, +inf-absent elsewhere.
inline std::vector<double> sssp_bellman_ford(const sparse::Csr<double>& a,
                                             index_t src) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  const index_t n = a.nrows();
  std::vector<double> dist(static_cast<std::size_t>(n), inf);
  dist[static_cast<std::size_t>(src)] = 0.0;
  for (index_t round = 0; round + 1 < n; ++round) {
    bool changed = false;
    for (index_t u = 0; u < n; ++u) {
      const double du = dist[static_cast<std::size_t>(u)];
      if (du == inf) continue;
      const auto cs = a.row_cols(u);
      const auto vs = a.row_vals(u);
      for (std::size_t k = 0; k < cs.size(); ++k) {
        const double cand = du + vs[k];
        if (cand < dist[static_cast<std::size_t>(cs[k])]) {
          dist[static_cast<std::size_t>(cs[k])] = cand;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return dist;
}

}  // namespace i2a::graph
