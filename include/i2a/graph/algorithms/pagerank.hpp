#pragma once
/// \file graph/algorithms/pagerank.hpp
/// \brief Power-iteration PageRank on an adjacency array's pattern.

#include <cmath>
#include <vector>

#include "algebra/concepts.hpp"
#include "sparse/csr.hpp"
#include "stream/pinned_snapshot.hpp"

namespace i2a::graph {

/// Standard PageRank with uniform teleport and dangling-mass
/// redistribution. Runs until the L1 delta drops below `tol` or
/// `max_iters` rounds, whichever first. An entry counts as an edge when
/// its value differs from `zero` — the same Definition I.5 pattern rule
/// the validators and BFS use, so an explicitly stored zero element
/// neither adds out-degree nor receives rank mass.
template <typename T>
std::vector<double> pagerank(const sparse::Csr<T>& a, double damping,
                             double tol, int max_iters, T zero = T{}) {
  const index_t n = a.nrows();
  const auto un = static_cast<std::size_t>(n);
  const double uniform = 1.0 / static_cast<double>(n);
  // Out-degrees over the nonzero pattern.
  std::vector<index_t> outdeg(un, 0);
  for (index_t u = 0; u < n; ++u) {
    for (const T& v : a.row_vals(u)) {
      if (!(v == zero)) ++outdeg[static_cast<std::size_t>(u)];
    }
  }
  std::vector<double> rank(un, uniform);
  std::vector<double> next(un);
  for (int it = 0; it < max_iters; ++it) {
    double dangling = 0.0;
    for (index_t u = 0; u < n; ++u) {
      if (outdeg[static_cast<std::size_t>(u)] == 0) {
        dangling += rank[static_cast<std::size_t>(u)];
      }
    }
    const double base = (1.0 - damping) * uniform +
                        damping * dangling * uniform;
    std::fill(next.begin(), next.end(), base);
    for (index_t u = 0; u < n; ++u) {
      if (outdeg[static_cast<std::size_t>(u)] == 0) continue;
      const auto cs = a.row_cols(u);
      const auto vs = a.row_vals(u);
      const double share =
          damping * rank[static_cast<std::size_t>(u)] /
          static_cast<double>(outdeg[static_cast<std::size_t>(u)]);
      for (std::size_t k = 0; k < cs.size(); ++k) {
        if (!(vs[k] == zero)) next[static_cast<std::size_t>(cs[k])] += share;
      }
    }
    double delta = 0.0;
    for (std::size_t i = 0; i < un; ++i) {
      delta += std::abs(next[i] - rank[i]);
    }
    rank.swap(next);
    if (delta < tol) break;
  }
  return rank;
}

/// PageRank against a live builder's pinned snapshot. Power iteration
/// sweeps every row max_iters times, so this materializes the pinned
/// runs once (one k-way ⊕-merge, no further writer interaction) and
/// runs the CSR overload on the result; the zero element comes from the
/// snapshot's pair. Identical output to rebuilding the covered prefix.
template <typename P>
  requires algebra::Semiring<P>
std::vector<double> pagerank(const stream::PinnedSnapshot<P>& snap,
                             double damping, double tol, int max_iters) {
  return pagerank(snap.materialize(), damping, tol, max_iters,
                  snap.pair().zero());
}

}  // namespace i2a::graph
