#pragma once
/// \file graph/algorithms/bfs.hpp
/// \brief Level-synchronous BFS over a constructed adjacency array's
///        nonzero pattern — against a materialized CSR, or directly
///        against a live builder's pinned snapshot (no copy, no locks).

#include <stdexcept>
#include <vector>

#include "algebra/concepts.hpp"
#include "sparse/csr.hpp"
#include "stream/pinned_snapshot.hpp"

namespace i2a::graph {

/// BFS levels from `src`: level[src] = 0, unreachable vertices = -1.
/// An entry counts as an edge when its value differs from `zero`.
/// Throws `std::out_of_range` for an out-of-range source (indexing
/// level[src] unchecked was UB).
template <typename T>
std::vector<index_t> bfs_levels(const sparse::Csr<T>& a, index_t src, T zero) {
  const index_t n = a.nrows();
  if (src < 0 || src >= n) {
    throw std::out_of_range("bfs_levels: source vertex out of range");
  }
  std::vector<index_t> level(static_cast<std::size_t>(n), index_t{-1});
  std::vector<index_t> frontier{src};
  level[static_cast<std::size_t>(src)] = 0;
  index_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    std::vector<index_t> next;
    for (const index_t u : frontier) {
      const auto cs = a.row_cols(u);
      const auto vs = a.row_vals(u);
      for (std::size_t k = 0; k < cs.size(); ++k) {
        if (vs[k] == zero) continue;
        const index_t v = cs[k];
        if (level[static_cast<std::size_t>(v)] == -1) {
          level[static_cast<std::size_t>(v)] = depth;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  return level;
}

/// BFS straight off a pinned snapshot: frontier rows are ⊕-folded across
/// the pinned runs on the fly (`fold_row`, one reused scratch), so the
/// traversal touches only the rows it visits — no O(nnz) materialize,
/// no locks, fully concurrent with the writer. The pattern rule is the
/// CSR overload's: a folded value equal to the pair's zero element is
/// not an edge. Identical output to running the CSR overload on
/// `snap.materialize()`.
template <typename P>
  requires algebra::Semiring<P>
std::vector<index_t> bfs_levels(const stream::PinnedSnapshot<P>& snap,
                                index_t src) {
  using T = typename P::value_type;
  const index_t n = snap.num_vertices();
  if (src < 0 || src >= n) {
    throw std::out_of_range("bfs_levels: source vertex out of range");
  }
  const T zero = snap.pair().zero();
  auto scratch = snap.row_scratch();
  std::vector<index_t> level(static_cast<std::size_t>(n), index_t{-1});
  std::vector<index_t> frontier{src};
  level[static_cast<std::size_t>(src)] = 0;
  index_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    std::vector<index_t> next;
    for (const index_t u : frontier) {
      snap.fold_row(u, scratch, [&](index_t v, const T& val) {
        if (val == zero) return;
        if (level[static_cast<std::size_t>(v)] == -1) {
          level[static_cast<std::size_t>(v)] = depth;
          next.push_back(v);
        }
      });
    }
    frontier = std::move(next);
  }
  return level;
}

}  // namespace i2a::graph
