#pragma once
/// \file graph/algorithms/triangles.hpp
/// \brief Triangle counting on a symmetric adjacency array: the unmasked
///        variant materializes A·A and masks afterwards; the masked
///        variant fuses the mask into the row products (never building
///        A·A) — the ablation pair from bench_algorithms.

#include <algorithm>
#include <cstdint>

#include "algebra/concepts.hpp"
#include "algebra/pairs.hpp"
#include "sparse/csr.hpp"
#include "sparse/spgemm.hpp"
#include "stream/pinned_snapshot.hpp"

namespace i2a::graph {

namespace detail {

/// |N(u) ∩ N(v)| via sorted-merge of two CSR rows.
template <typename T>
std::uint64_t row_intersection_size(const sparse::Csr<T>& a, index_t u,
                                    index_t v) {
  const auto cu = a.row_cols(u);
  const auto cv = a.row_cols(v);
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < cu.size() && j < cv.size()) {
    if (cu[i] < cv[j]) {
      ++i;
    } else if (cv[j] < cu[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

/// Rebuild A's nonzero pattern with all values set to 1 so A·A counts
/// paths; entries equal to the zero element are not edges
/// (Definition I.5), so they are dropped here. Diagonal entries are
/// dropped too: a self-loop is not a triangle edge, but if kept it would
/// contribute spurious closed 2-walks through c.at(i,i) and inflate
/// |N(i) ∩ N(j)| whenever i ∈ N(j) — both counters would overcount.
template <typename T>
sparse::Csr<double> pattern_of(const sparse::Csr<T>& a, T zero) {
  sparse::Coo<double> coo(a.nrows(), a.ncols());
  for (index_t i = 0; i < a.nrows(); ++i) {
    const auto cs = a.row_cols(i);
    const auto vs = a.row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      if (cs[k] != i && !(vs[k] == zero)) coo.push(i, cs[k], 1.0);
    }
  }
  return sparse::Csr<double>::from_coo(std::move(coo),
                                       sparse::DupPolicy::kKeepFirst);
}

}  // namespace detail

/// Unmasked: C = A·A over +.* is materialized in full, then summed only
/// where A has an edge. Each triangle is counted 6 times on the
/// symmetric pattern (self-loops are normalized away by `pattern_of`).
template <typename T>
std::uint64_t count_triangles(const sparse::Csr<T>& a, T zero = T{}) {
  const auto pat = detail::pattern_of(a, zero);
  const auto c = sparse::spgemm(algebra::PlusTimes<double>{}, pat, pat);
  double total = 0.0;
  for (index_t i = 0; i < pat.nrows(); ++i) {
    for (const index_t j : pat.row_cols(i)) {
      total += c.at(i, j, 0.0);
    }
  }
  return static_cast<std::uint64_t>(total) / 6;
}

/// Masked: for each edge (i, j), accumulate |N(i) ∩ N(j)| directly —
/// the A·A intermediate never exists (the O(nnz) pattern rebuild
/// normalizes explicit zero-element entries and self-loops away).
template <typename T>
std::uint64_t count_triangles_masked(const sparse::Csr<T>& a, T zero = T{}) {
  const auto pat = detail::pattern_of(a, zero);
  std::uint64_t total = 0;
  for (index_t i = 0; i < pat.nrows(); ++i) {
    for (const index_t j : pat.row_cols(i)) {
      total += detail::row_intersection_size(pat, i, j);
    }
  }
  return total / 6;
}

/// Snapshot overloads: both counters read every row repeatedly (and
/// `pattern_of` normalizes the whole array anyway), so they materialize
/// the pinned runs once and delegate. The zero element — which entries
/// are not edges — comes from the snapshot's pair.
template <typename P>
  requires algebra::Semiring<P>
std::uint64_t count_triangles(const stream::PinnedSnapshot<P>& snap) {
  return count_triangles(snap.materialize(), snap.pair().zero());
}

template <typename P>
  requires algebra::Semiring<P>
std::uint64_t count_triangles_masked(const stream::PinnedSnapshot<P>& snap) {
  return count_triangles_masked(snap.materialize(), snap.pair().zero());
}

}  // namespace i2a::graph
