#pragma once
/// \file graph/graph.hpp
/// \brief Directed multigraph as an edge list — parallel edges,
///        self-loops, and isolated vertices are all first-class, because
///        the paper's theorem is precisely about surviving them.

#include <cassert>
#include <vector>

#include "core/types.hpp"

namespace i2a::graph {

struct Edge {
  index_t src;
  index_t dst;
  double weight = 1.0;
};

class Graph {
 public:
  explicit Graph(index_t num_vertices = 0) : num_vertices_(num_vertices) {}

  index_t num_vertices() const { return num_vertices_; }
  index_t num_edges() const { return static_cast<index_t>(edges_.size()); }

  void add_edge(index_t src, index_t dst, double weight = 1.0) {
    assert(src >= 0 && src < num_vertices_);
    assert(dst >= 0 && dst < num_vertices_);
    edges_.push_back(Edge{src, dst, weight});
  }

  std::vector<Edge>& edges() { return edges_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// The reverse multigraph: every edge flipped, weights kept.
  Graph reverse() const {
    Graph r(num_vertices_);
    r.edges_.reserve(edges_.size());
    for (const Edge& e : edges_) {
      r.edges_.push_back(Edge{e.dst, e.src, e.weight});
    }
    return r;
  }

 private:
  index_t num_vertices_;
  std::vector<Edge> edges_;
};

}  // namespace i2a::graph
