#pragma once
/// \file graph/validators.hpp
/// \brief Definition I.5 checker: is a given array *the adjacency array
///        of* a given multigraph?
///
/// Definition I.5 is a pattern statement: A (|V| × |V|) is an adjacency
/// array of G iff A(i, j) is nonzero exactly when G has at least one edge
/// i → j. Parallel edges collapse to one entry; self-loops sit on the
/// diagonal. Stored entries whose value equals the algebra's zero element
/// count as absent — an array that "stores a zero" where an edge should
/// be is *not* an adjacency array of G.

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sparse/csr.hpp"

namespace i2a::graph {

struct AdjacencyCheck {
  bool ok = true;
  std::string detail;  ///< first discrepancy, empty when ok
};

template <typename T>
AdjacencyCheck is_adjacency_of(const sparse::Csr<T>& a, const Graph& g,
                               T zero) {
  AdjacencyCheck res;
  const index_t n = g.num_vertices();
  if (a.nrows() != n || a.ncols() != n) {
    res.ok = false;
    std::ostringstream os;
    os << "shape " << a.nrows() << "x" << a.ncols() << " != " << n << "x" << n;
    res.detail = os.str();
    return res;
  }

  // Distinct (src, dst) pairs of the multigraph.
  std::vector<std::pair<index_t, index_t>> want;
  want.reserve(g.edges().size());
  for (const Edge& e : g.edges()) want.emplace_back(e.src, e.dst);
  std::sort(want.begin(), want.end());
  want.erase(std::unique(want.begin(), want.end()), want.end());

  // Stored pattern of A, ignoring explicit zero-element entries.
  std::vector<std::pair<index_t, index_t>> got;
  got.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t i = 0; i < n; ++i) {
    const auto cs = a.row_cols(i);
    const auto vs = a.row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      if (!(vs[k] == zero)) got.emplace_back(i, cs[k]);
    }
  }

  if (got == want) return res;
  res.ok = false;
  // Name the first pair on which the patterns disagree.
  std::vector<std::pair<index_t, index_t>> missing;
  std::set_difference(want.begin(), want.end(), got.begin(), got.end(),
                      std::back_inserter(missing));
  std::vector<std::pair<index_t, index_t>> spurious;
  std::set_difference(got.begin(), got.end(), want.begin(), want.end(),
                      std::back_inserter(spurious));
  std::ostringstream os;
  if (!missing.empty()) {
    os << "edge " << missing[0].first << "->" << missing[0].second
       << " has no nonzero entry";
  } else if (!spurious.empty()) {
    os << "spurious nonzero at (" << spurious[0].first << ", "
       << spurious[0].second << ")";
  }
  res.detail = os.str();
  return res;
}

}  // namespace i2a::graph
