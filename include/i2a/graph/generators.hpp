#pragma once
/// \file graph/generators.hpp
/// \brief Random graph families for the sweep and the bench suites:
///        R-MAT (Graph500 flavor), uniform multigraphs, Erdős–Rényi with
///        geometric skip-sampling, and random bipartite graphs.
///
/// Parallel generation via per-block PRNG streams (PR 3). Every
/// generator partitions its work into fixed-size blocks and draws block
/// b from its own SplitMix-decorrelated Xoshiro stream, so the produced
/// edge list is a **pure function of the arguments** — identical whether
/// generation runs serially or on any pool size (blocks are independent;
/// chunk boundaries only decide who runs a block, never what it
/// contains). That makes end-to-end construction parallel from generator
/// to adjacency while keeping workloads reproducible. The exact-count
/// generators (R-MAT, multigraph, bipartite) size the edge buffer
/// exactly once up front and write slots directly; Erdős–Rényi, whose
/// per-block yield is random, stages per-chunk edge slabs and stitches
/// them with one prefix sum.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

namespace i2a::graph::gen {

/// Work-block granularity for the per-block streams: small enough to
/// load-balance chunks, large enough that stream setup (four SplitMix
/// steps) is noise.
inline constexpr index_t kStreamBlock = 4096;

/// The PRNG stream owned by block `block` of a generator seeded with
/// `seed`. The Xoshiro seeder expands its input through SplitMix64, so
/// distinct (seed, block) pairs yield decorrelated streams even for
/// consecutive seeds.
inline util::Xoshiro256 stream_for_block(std::uint64_t seed, index_t block) {
  return util::Xoshiro256(
      seed ^
      (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(block) + 1)));
}

namespace detail {

/// Run `body(block_lo, block_hi)` over a partition of [0, nblocks):
/// chunked on the pool when one is given, one call serially otherwise.
template <typename Body>
void for_blocks(util::ThreadPool* pool, index_t nblocks, const Body& body) {
  if (nblocks <= 0) return;
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(nblocks, body);
  } else {
    body(0, nblocks);
  }
}

/// Iterate the kStreamBlock-sized blocks of [0, m), chunked on the pool
/// when one is given: `body(rng, lo, hi)` receives block [lo, hi)'s own
/// stream. The shared scaffolding of every exact-count loop.
template <typename PerBlock>
void for_each_block_stream(util::ThreadPool* pool, std::uint64_t seed,
                           index_t m, const PerBlock& body) {
  const index_t nblocks = (m + kStreamBlock - 1) / kStreamBlock;
  for_blocks(pool, nblocks, [&](index_t blo, index_t bhi) {
    for (index_t blk = blo; blk < bhi; ++blk) {
      auto rng = stream_for_block(seed, blk);
      body(rng, blk * kStreamBlock, std::min(m, (blk + 1) * kStreamBlock));
    }
  });
}

/// Exact-count generator driver: resize `edges` to `m` once, then fill
/// slot e with `gen(rng, e)` where `rng` is edge e's block stream.
template <typename PerEdge>
void fill_edges_blocked(std::vector<Edge>& edges, index_t m,
                        std::uint64_t seed, util::ThreadPool* pool,
                        const PerEdge& gen) {
  edges.resize(static_cast<std::size_t>(m));
  for_each_block_stream(
      pool, seed, m, [&](util::Xoshiro256& rng, index_t lo, index_t hi) {
        for (index_t e = lo; e < hi; ++e) {
          edges[static_cast<std::size_t>(e)] = gen(rng, e);
        }
      });
}

}  // namespace detail

/// R-MAT recursive-quadrant generator: n = 2^scale vertices,
/// n * edge_factor edges, quadrant probabilities (a, b, c, 1-a-b-c).
/// Duplicates and self-loops are kept — it generates a multigraph.
inline Graph rmat(int scale, index_t edge_factor, double a, double b, double c,
                  std::uint64_t seed, util::ThreadPool* pool = nullptr) {
  const index_t n = index_t{1} << scale;
  const index_t m = checked_mul(n, edge_factor);
  Graph g(n);
  detail::fill_edges_blocked(
      g.edges(), m, seed, pool, [&](util::Xoshiro256& rng, index_t) {
        index_t src = 0;
        index_t dst = 0;
        for (index_t bit = n >> 1; bit > 0; bit >>= 1) {
          const double r = rng.unit();
          if (r < a) {
            // top-left: neither bit set
          } else if (r < a + b) {
            dst |= bit;
          } else if (r < a + b + c) {
            src |= bit;
          } else {
            src |= bit;
            dst |= bit;
          }
        }
        return Edge{src, dst, 1.0};
      });
  return g;
}

/// Uniform multigraph: m independent uniform (src, dst) draws — parallel
/// edges and self-loops occur naturally. The validation sweep's workload.
inline Graph random_multigraph(index_t n, index_t m, std::uint64_t seed,
                               util::ThreadPool* pool = nullptr) {
  Graph g(n);
  if (n <= 0) return g;
  detail::fill_edges_blocked(
      g.edges(), m, seed, pool, [&](util::Xoshiro256& rng, index_t) {
        const index_t src = rng.between(0, n - 1);
        const index_t dst = rng.between(0, n - 1);
        return Edge{src, dst, 1.0};
      });
  return g;
}

/// Directed G(n, p) without self-loops, via geometric gap skipping
/// (util::sample_bernoulli_indices) so the cost is O(expected edges),
/// not O(n^2) coin flips. Cell blocks are sized for ~kStreamBlock
/// expected hits each — a pure function of (n, p), so the output stays
/// a pure function of the seed at any pool size — and per-chunk edge
/// slabs are stitched with one prefix sum, mirroring the SpGEMM engine.
inline Graph erdos_renyi(index_t n, double p, std::uint64_t seed,
                         util::ThreadPool* pool = nullptr) {
  Graph g(n);
  if (n <= 0 || p <= 0.0) return g;
  const index_t cells = checked_mul(n, n);
  const double want =
      static_cast<double>(kStreamBlock) / std::min(1.0, p);
  const index_t cells_per_block =
      want >= static_cast<double>(cells)
          ? cells
          : std::max<index_t>(static_cast<index_t>(want), 1);
  const index_t nblocks = (cells + cells_per_block - 1) / cells_per_block;

  const bool parallel = pool != nullptr && pool->size() > 1;
  const index_t nchunks = parallel ? pool->num_chunks(nblocks) : 1;
  std::vector<std::vector<Edge>> slabs(static_cast<std::size_t>(nchunks));
  auto body = [&](index_t chunk, index_t blo, index_t bhi) {
    auto& slab = slabs[static_cast<std::size_t>(chunk)];
    for (index_t blk = blo; blk < bhi; ++blk) {
      auto rng = stream_for_block(seed, blk);
      const index_t lo = blk * cells_per_block;
      const index_t hi = std::min(cells, lo + cells_per_block);
      util::sample_bernoulli_indices(rng, hi - lo, p, [&](index_t t) {
        const index_t cell = lo + t;
        const index_t i = cell / n;
        const index_t j = cell % n;
        if (i != j) slab.push_back(Edge{i, j, 1.0});
      });
    }
  };
  if (parallel) {
    pool->parallel_for_chunks(nblocks, body);
  } else {
    body(0, 0, nblocks);
  }

  // Stitch: chunks cover contiguous block ranges in order, so
  // concatenating slabs in chunk order is block order — the same edge
  // list a serial run produces.
  if (nchunks == 1) {
    g.edges() = std::move(slabs[0]);
    return g;
  }
  std::size_t total = 0;
  for (const auto& slab : slabs) total += slab.size();
  auto& edges = g.edges();
  edges.resize(total);
  std::size_t offset = 0;
  for (auto& slab : slabs) {
    std::copy(slab.begin(), slab.end(), edges.begin() + offset);
    offset += slab.size();
  }
  return g;
}

/// Bipartite multigraph: vertices [0, nl) on the left, [nl, nl+nr) on the
/// right, nl * deg uniform left→right edges.
inline Graph random_bipartite(index_t nl, index_t nr, index_t deg,
                              std::uint64_t seed,
                              util::ThreadPool* pool = nullptr) {
  Graph g(nl + nr);
  if (nl <= 0 || nr <= 0) return g;
  const index_t m = checked_mul(nl, deg);
  detail::fill_edges_blocked(
      g.edges(), m, seed, pool, [&](util::Xoshiro256& rng, index_t) {
        const index_t src = rng.between(0, nl - 1);
        const index_t dst = nl + rng.between(0, nr - 1);
        return Edge{src, dst, 1.0};
      });
  return g;
}

/// Overwrite every edge weight with a uniform draw from [lo, hi).
inline void randomize_weights(Graph& g, double lo, double hi,
                              std::uint64_t seed,
                              util::ThreadPool* pool = nullptr) {
  auto& edges = g.edges();
  detail::for_each_block_stream(
      pool, seed, static_cast<index_t>(edges.size()),
      [&](util::Xoshiro256& rng, index_t elo, index_t ehi) {
        for (index_t e = elo; e < ehi; ++e) {
          edges[static_cast<std::size_t>(e)].weight = rng.uniform(lo, hi);
        }
      });
}

}  // namespace i2a::graph::gen
