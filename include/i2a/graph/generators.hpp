#pragma once
/// \file graph/generators.hpp
/// \brief Random graph families for the sweep and the bench suites:
///        R-MAT (Graph500 flavor), uniform multigraphs, Erdős–Rényi with
///        geometric skip-sampling, and random bipartite graphs.

#include <cstdint>

#include "graph/graph.hpp"
#include "util/prng.hpp"

namespace i2a::graph::gen {

/// R-MAT recursive-quadrant generator: n = 2^scale vertices,
/// n * edge_factor edges, quadrant probabilities (a, b, c, 1-a-b-c).
/// Duplicates and self-loops are kept — it generates a multigraph.
inline Graph rmat(int scale, index_t edge_factor, double a, double b, double c,
                  std::uint64_t seed) {
  const index_t n = index_t{1} << scale;
  const index_t m = checked_mul(n, edge_factor);
  util::Xoshiro256 rng(seed);
  Graph g(n);
  for (index_t e = 0; e < m; ++e) {
    index_t src = 0;
    index_t dst = 0;
    for (index_t bit = n >> 1; bit > 0; bit >>= 1) {
      const double r = rng.unit();
      if (r < a) {
        // top-left: neither bit set
      } else if (r < a + b) {
        dst |= bit;
      } else if (r < a + b + c) {
        src |= bit;
      } else {
        src |= bit;
        dst |= bit;
      }
    }
    g.add_edge(src, dst);
  }
  return g;
}

/// Uniform multigraph: m independent uniform (src, dst) draws — parallel
/// edges and self-loops occur naturally. The validation sweep's workload.
inline Graph random_multigraph(index_t n, index_t m, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Graph g(n);
  if (n <= 0) return g;
  for (index_t e = 0; e < m; ++e) {
    g.add_edge(rng.between(0, n - 1), rng.between(0, n - 1));
  }
  return g;
}

/// Directed G(n, p) without self-loops, via geometric gap skipping
/// (util::sample_bernoulli_indices) so the cost is O(expected edges),
/// not O(n^2) coin flips.
inline Graph erdos_renyi(index_t n, double p, std::uint64_t seed) {
  Graph g(n);
  if (n <= 0) return g;
  util::Xoshiro256 rng(seed);
  util::sample_bernoulli_indices(rng, checked_mul(n, n), p, [&](index_t t) {
    const index_t i = t / n;
    const index_t j = t % n;
    if (i != j) g.add_edge(i, j);
  });
  return g;
}

/// Bipartite multigraph: vertices [0, nl) on the left, [nl, nl+nr) on the
/// right, nl * deg uniform left→right edges.
inline Graph random_bipartite(index_t nl, index_t nr, index_t deg,
                              std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Graph g(nl + nr);
  if (nl <= 0 || nr <= 0) return g;
  const index_t m = checked_mul(nl, deg);
  for (index_t e = 0; e < m; ++e) {
    g.add_edge(rng.between(0, nl - 1), nl + rng.between(0, nr - 1));
  }
  return g;
}

/// Overwrite every edge weight with a uniform draw from [lo, hi).
inline void randomize_weights(Graph& g, double lo, double hi,
                              std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  for (Edge& e : g.edges()) e.weight = rng.uniform(lo, hi);
}

}  // namespace i2a::graph::gen
