#pragma once
/// \file core/selection.hpp
/// \brief D4M-style sub-array selection: `select(a, rowsel, colsel)`
///        with `":"` (everything), `"lo : hi"` key ranges, and exact
///        keys — the operation behind E1 = E(:, 'Genre|A : Genre|Z').
///
/// Range semantics: a key matches "lo : hi" when lo ≤ key ≤ hi *or* key
/// starts with hi. The prefix rule makes 'Writer|A : Writer|Z' capture
/// 'Writer|Zedd' the way the D4M shorthand intends, instead of cutting
/// the range off at the bare prefix.

#include <string>
#include <string_view>
#include <vector>

#include "core/associative_array.hpp"

namespace i2a::core {

namespace detail {

struct Selector {
  bool all = false;
  bool range = false;
  std::string lo;
  std::string hi;  // exact key when !range

  bool matches(const std::string& key) const {
    if (all) return true;
    if (!range) return key == lo;
    if (key < lo) return false;
    if (key <= hi) return true;
    return key.compare(0, hi.size(), hi) == 0;  // prefix-inclusive upper end
  }
};

inline Selector parse_selector(std::string_view s) {
  Selector sel;
  if (s == ":") {
    sel.all = true;
    return sel;
  }
  const auto pos = s.find(" : ");
  if (pos != std::string_view::npos) {
    sel.range = true;
    sel.lo = std::string(s.substr(0, pos));
    sel.hi = std::string(s.substr(pos + 3));
  } else {
    sel.lo = std::string(s);
    sel.hi = sel.lo;
  }
  return sel;
}

}  // namespace detail

/// Sub-array of `a` restricted to the row/column keys matching the
/// selectors. Key order (and hence index order) is preserved.
template <typename T>
AssocArray<T> select(const AssocArray<T>& a, std::string_view rowsel,
                     std::string_view colsel) {
  const auto rsel = detail::parse_selector(rowsel);
  const auto csel = detail::parse_selector(colsel);

  std::vector<std::string> rows;
  std::vector<index_t> row_map(a.row_keys().size(), index_t{-1});
  for (std::size_t i = 0; i < a.row_keys().size(); ++i) {
    if (rsel.matches(a.row_keys()[i])) {
      row_map[i] = static_cast<index_t>(rows.size());
      rows.push_back(a.row_keys()[i]);
    }
  }
  std::vector<std::string> cols;
  std::vector<index_t> col_map(a.col_keys().size(), index_t{-1});
  for (std::size_t j = 0; j < a.col_keys().size(); ++j) {
    if (csel.matches(a.col_keys()[j])) {
      col_map[j] = static_cast<index_t>(cols.size());
      cols.push_back(a.col_keys()[j]);
    }
  }

  sparse::Coo<T> coo(static_cast<index_t>(rows.size()),
                     static_cast<index_t>(cols.size()));
  for (index_t i = 0; i < a.data().nrows(); ++i) {
    if (row_map[static_cast<std::size_t>(i)] == -1) continue;
    const auto cs = a.data().row_cols(i);
    const auto vs = a.data().row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      const index_t cj = col_map[static_cast<std::size_t>(cs[k])];
      if (cj == -1) continue;
      coo.push(row_map[static_cast<std::size_t>(i)], cj, vs[k]);
    }
  }
  return AssocArray<T>(std::move(rows), std::move(cols),
                       sparse::Csr<T>::from_coo(std::move(coo),
                                                sparse::DupPolicy::kKeepFirst));
}

}  // namespace i2a::core
