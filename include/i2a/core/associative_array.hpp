#pragma once
/// \file core/associative_array.hpp
/// \brief D4M-style associative array: a sparse matrix whose rows and
///        columns are addressed by sorted string keys instead of integer
///        indices. The figure binaries work in this representation; the
///        integer-indexed kernels (sparse/) do the arithmetic underneath.

#include <algorithm>
#include <cassert>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace i2a::core {

/// One entry of an associative array, addressed by its string keys.
template <typename T>
struct KeyedTriple {
  std::string row;
  std::string col;
  T val;

  friend bool operator==(const KeyedTriple&, const KeyedTriple&) = default;
};

template <typename T>
class AssocArray {
 public:
  AssocArray() = default;

  /// Wrap pre-sorted key vectors around a CSR payload.
  AssocArray(std::vector<std::string> row_keys,
             std::vector<std::string> col_keys, sparse::Csr<T> data)
      : row_keys_(std::move(row_keys)),
        col_keys_(std::move(col_keys)),
        data_(std::move(data)) {
    assert(std::is_sorted(row_keys_.begin(), row_keys_.end()));
    assert(std::is_sorted(col_keys_.begin(), col_keys_.end()));
    assert(data_.nrows() == static_cast<index_t>(row_keys_.size()));
    assert(data_.ncols() == static_cast<index_t>(col_keys_.size()));
  }

  /// Build from keyed triples: key sets are the distinct keys that occur,
  /// sorted lexicographically (the D4M convention).
  static AssocArray from_triples(const std::vector<KeyedTriple<T>>& triples,
                                 sparse::DupPolicy policy =
                                     sparse::DupPolicy::kSum) {
    std::vector<std::string> rows;
    std::vector<std::string> cols;
    rows.reserve(triples.size());
    cols.reserve(triples.size());
    for (const auto& t : triples) {
      rows.push_back(t.row);
      cols.push_back(t.col);
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());

    sparse::Coo<T> coo(static_cast<index_t>(rows.size()),
                       static_cast<index_t>(cols.size()));
    for (const auto& t : triples) {
      coo.push(key_index(rows, t.row), key_index(cols, t.col), t.val);
    }
    return AssocArray(std::move(rows), std::move(cols),
                      sparse::Csr<T>::from_coo(std::move(coo), policy));
  }

  index_t nrows() const { return static_cast<index_t>(row_keys_.size()); }
  index_t ncols() const { return static_cast<index_t>(col_keys_.size()); }
  index_t nnz() const { return data_.nnz(); }

  const std::vector<std::string>& row_keys() const { return row_keys_; }
  const std::vector<std::string>& col_keys() const { return col_keys_; }
  const sparse::Csr<T>& data() const { return data_; }

  /// Index of `key` in a sorted key vector, or -1 when absent.
  static index_t find_key(const std::vector<std::string>& keys,
                          const std::string& key) {
    const auto it = std::lower_bound(keys.begin(), keys.end(), key);
    if (it == keys.end() || *it != key) return -1;
    return static_cast<index_t>(it - keys.begin());
  }

  /// All stored entries as keyed triples, in row-major key order.
  std::vector<KeyedTriple<T>> triples() const {
    std::vector<KeyedTriple<T>> out;
    out.reserve(static_cast<std::size_t>(data_.nnz()));
    for (index_t i = 0; i < data_.nrows(); ++i) {
      const auto cs = data_.row_cols(i);
      const auto vs = data_.row_vals(i);
      for (std::size_t k = 0; k < cs.size(); ++k) {
        out.push_back(KeyedTriple<T>{
            row_keys_[static_cast<std::size_t>(i)],
            col_keys_[static_cast<std::size_t>(cs[k])], vs[k]});
      }
    }
    return out;
  }

 private:
  static index_t key_index(const std::vector<std::string>& keys,
                           const std::string& key) {
    const index_t i = find_key(keys, key);
    assert(i >= 0);
    return i;
  }

  std::vector<std::string> row_keys_;
  std::vector<std::string> col_keys_;
  sparse::Csr<T> data_;
};

using AssocArrayD = AssocArray<double>;

}  // namespace i2a::core
