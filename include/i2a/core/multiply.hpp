#pragma once
/// \file core/multiply.hpp
/// \brief Keyed array product A = E1ᵀ ⊕.⊗ E2: rows of the result are
///        E1's column keys, columns are E2's column keys, and the fold
///        runs over the *shared* row keys — exactly the figure-3/5
///        operation "for each track, combine its genre and writer
///        entries".

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/associative_array.hpp"

namespace i2a::core {

/// Sparse-shortcut keyed product (valid for conforming pairs): only
/// stored⊗stored terms enter the fold, with first-touch initialization so
/// no ⊕-identity is assumed. Accepts any pair type — the templated Table
/// I functors or the type-erased AnyPairD the figure binaries iterate.
template <typename P, typename T = typename P::value_type>
AssocArray<T> multiply_at_b(const P& p, const AssocArray<T>& a,
                            const AssocArray<T>& b) {
  // Align on shared row keys (both arrays keep sorted key vectors).
  std::map<std::pair<index_t, index_t>, T> acc;
  for (std::size_t ra = 0; ra < a.row_keys().size(); ++ra) {
    const index_t rb =
        AssocArray<T>::find_key(b.row_keys(), a.row_keys()[ra]);
    if (rb == -1) continue;
    const auto acols = a.data().row_cols(static_cast<index_t>(ra));
    const auto avals = a.data().row_vals(static_cast<index_t>(ra));
    const auto bcols = b.data().row_cols(rb);
    const auto bvals = b.data().row_vals(rb);
    for (std::size_t ka = 0; ka < acols.size(); ++ka) {
      for (std::size_t kb = 0; kb < bcols.size(); ++kb) {
        const T term = p.mul(avals[ka], bvals[kb]);
        const auto key = std::make_pair(acols[ka], bcols[kb]);
        const auto it = acc.find(key);
        if (it == acc.end()) {
          acc.emplace(key, term);
        } else {
          it->second = p.add(it->second, term);
        }
      }
    }
  }

  std::vector<KeyedTriple<T>> triples;
  triples.reserve(acc.size());
  for (const auto& [key, val] : acc) {
    triples.push_back(KeyedTriple<T>{
        a.col_keys()[static_cast<std::size_t>(key.first)],
        b.col_keys()[static_cast<std::size_t>(key.second)], val});
  }
  return AssocArray<T>::from_triples(triples, sparse::DupPolicy::kKeepFirst);
}

}  // namespace i2a::core
