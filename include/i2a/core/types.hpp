#pragma once
/// \file core/types.hpp
/// \brief Fundamental scalar types shared by every layer of i2a.

#include <cstdint>
#include <stdexcept>

namespace i2a {

/// Row/column/vertex/edge index type.
///
/// Deliberately 64-bit: the bench workloads already size matrices as
/// `nr * nc` products (e.g. expected-nnz estimates) and the roadmap calls
/// for billion-edge graphs, so a 32-bit index would overflow long before
/// memory runs out. Signed so that `-1` sentinels (BFS levels, parent
/// pointers) and backwards loops stay natural.
using index_t = std::int64_t;

/// a * b, throwing std::overflow_error instead of invoking signed-overflow
/// UB. Use for cell/element counts derived from user-supplied dimensions:
/// domains with >= 2^63 cells are unsupported and must fail loudly, not
/// wrap into a silently empty result.
inline index_t checked_mul(index_t a, index_t b) {
  index_t out;
  if (__builtin_mul_overflow(a, b, &out)) {
    throw std::overflow_error("index_t product overflow: domain too large");
  }
  return out;
}

}  // namespace i2a
