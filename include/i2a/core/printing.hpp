#pragma once
/// \file core/printing.hpp
/// \brief Figure-style rendering of associative arrays: aligned grid with
///        row keys down the left and column keys across the top, blank
///        cells for absent entries — the closest terminal analogue of the
///        paper's figure layout.

#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "core/associative_array.hpp"

namespace i2a::core {

namespace detail {

inline std::string value_string(double v) {
  std::ostringstream os;
  os << v;  // default format: "1", "2.5", "inf"
  return os.str();
}

}  // namespace detail

/// Render the array as an aligned grid. Wide arrays produce long lines;
/// that is fine for a reproduction dump — verification is done on the
/// triples, not on this string.
template <typename T>
std::string figure_string(const AssocArray<T>& a) {
  const auto& rows = a.row_keys();
  const auto& cols = a.col_keys();

  // Cell text for every entry, empty string for holes.
  std::vector<std::vector<std::string>> cells(
      rows.size(), std::vector<std::string>(cols.size()));
  for (index_t i = 0; i < a.data().nrows(); ++i) {
    const auto cs = a.data().row_cols(i);
    const auto vs = a.data().row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      cells[static_cast<std::size_t>(i)][static_cast<std::size_t>(cs[k])] =
          detail::value_string(static_cast<double>(vs[k]));
    }
  }

  std::size_t row_w = 0;
  for (const auto& r : rows) row_w = std::max(row_w, r.size());
  std::vector<std::size_t> col_w(cols.size());
  for (std::size_t j = 0; j < cols.size(); ++j) {
    col_w[j] = cols[j].size();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      col_w[j] = std::max(col_w[j], cells[i][j].size());
    }
  }

  std::ostringstream os;
  os << std::left << std::setw(static_cast<int>(row_w)) << "";
  for (std::size_t j = 0; j < cols.size(); ++j) {
    os << "  " << std::setw(static_cast<int>(col_w[j])) << cols[j];
  }
  os << '\n';
  for (std::size_t i = 0; i < rows.size(); ++i) {
    os << std::setw(static_cast<int>(row_w)) << rows[i];
    for (std::size_t j = 0; j < cols.size(); ++j) {
      os << "  " << std::setw(static_cast<int>(col_w[j])) << cells[i][j];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace i2a::core
