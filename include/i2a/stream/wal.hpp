#pragma once
/// \file stream/wal.hpp
/// \brief Write-ahead log for the streaming builder: one checksummed
///        frame per ingested batch, segment rotation, torn-tail repair,
///        and the replay scanner recovery drives (DESIGN.md §12).
///
/// **What is logged.** The WAL records the *input* stream, not derived
/// state: each `ingest()` batch becomes one frame carrying its epoch and
/// the raw COO edge list. Replay pushes the recorded batches back
/// through the normal publish path, and because every per-(i,j) value is
/// a ⊕-fold over parallel edges with ⊕ associative (the algebraic
/// condition the paper's Theorem II.1 rests on), re-merging replayed
/// runs reproduces the pre-crash builder byte-for-byte — the same
/// rebuild-oracle identity test_stream enforces, extended across a kill
/// boundary.
///
/// **Append is all-or-nothing.** `append()` gives the strong guarantee
/// the ingest path requires: on any failure (write, fsync, or an armed
/// failpoint) the segment is ftruncated back to its pre-append length
/// before the exception propagates, so a batch either occupies exactly
/// one durable frame or leaves no bytes behind. Consequently each epoch
/// appears at most once in the log and replay can insist on a strictly
/// sequential epoch chain. If even the rollback truncate fails the WAL
/// enters a failed state and every later append throws — the builder
/// surfaces that as an ordinary ingest failure and commits nothing it
/// cannot log.
///
/// **Durability contract** (`Durability`):
///   * `kFsyncEachBatch` — fsync before `append()` returns: once
///     `ingest()` returns, the batch survives power loss. This is the
///     mode whose acknowledgements the crash harness treats as binding.
///   * `kAsync` — frames go to the page cache; fsync happens on segment
///     rotation, checkpoint, and `close()`. Acknowledged batches survive
///     SIGKILL (the kernel still owns the pages) but not power loss.
///   * `kNone` — never fsyncs. Same SIGKILL story, no power-loss story
///     at all; for tests and bulk loads.
///
/// **Segments.** Frames land in `wal-<seqno>.log` files, rotated once a
/// segment exceeds `segment_bytes`. Every segment opens with a header
/// frame naming the manifest (algebra tag, vertex count, shard count,
/// weighting) and the epoch the segment starts after, so recovery can
/// refuse a mismatched log and checkpointing can retire fully-covered
/// segments.
///
/// Failpoints: `wal.append.write` fires inside a frame's torn window
/// (after the header write, before the payload write) and
/// `wal.append.fsync` fires in place of a successful fsync — the
/// exception-safety sweep in test_recovery drives both through the
/// rollback path.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/contract.hpp"
#include "util/failpoint.hpp"
#include "util/io.hpp"

namespace i2a::stream {

/// When an acknowledged (`ingest()` returned) batch is durable.
enum class Durability {
  kNone,            ///< never fsync: page-cache only
  kAsync,           ///< fsync on rotation/checkpoint/close
  kFsyncEachBatch,  ///< fsync before ingest returns (acknowledged ⇒ durable)
};

/// Typed failure for recovery-time *format* problems: corrupt or
/// mismatched durable state (bad manifest, epoch gap, mid-log
/// corruption, unparseable checkpoint). Environment-level syscall
/// failures stay util::IoError.
class RecoveryError : public std::runtime_error {
 public:
  explicit RecoveryError(const std::string& what)
      : std::runtime_error("i2a recovery: " + what) {}
};

/// Identity of a durable directory. Recovery refuses to replay state
/// written under a different manifest (wrong algebra instantiation,
/// vertex count, shard count, or weighting) — replaying "+.*" frames
/// into a min.+ builder would be silently wrong, so it is an error.
struct WalManifest {
  std::string algebra;        ///< P::name() + "/" + sizeof(value_type)
  std::uint64_t num_vertices = 0;
  std::uint32_t shard_count = 1;
  std::uint32_t weighting = 0;  ///< underlying value of stream::Weighting

  friend bool operator==(const WalManifest&, const WalManifest&) = default;

  std::string describe() const {
    return "{algebra=" + algebra + ", n=" + std::to_string(num_vertices) +
           ", shards=" + std::to_string(shard_count) +
           ", weighting=" + std::to_string(weighting) + "}";
  }
};

/// Build the manifest algebra tag for a pair type: the pair's spelled
/// name plus the value-type width, so distinct instantiations of the
/// same symbolic algebra (e.g. double vs float carriers) don't alias.
template <typename P>
std::string algebra_tag() {
  return std::string(P::name()) + "/" +
         std::to_string(sizeof(typename P::value_type));
}

// On-disk frame discriminators (first u32 of every payload) and format
// version, shared with stream/checkpoint.hpp.
inline constexpr std::uint32_t kFrameSegmentHeader = 1;
inline constexpr std::uint32_t kFrameBatch = 2;
inline constexpr std::uint32_t kFrameCheckpointHeader = 3;
inline constexpr std::uint32_t kFrameCheckpointRun = 4;
inline constexpr std::uint32_t kWalFormatVersion = 1;

inline void encode_manifest(util::ByteWriter& w, const WalManifest& m) {
  w.str(m.algebra);
  w.u64(m.num_vertices);
  w.u32(m.shard_count);
  w.u32(m.weighting);
}

inline WalManifest decode_manifest(util::ByteReader& r) {
  WalManifest m;
  m.algebra = r.str();
  m.num_vertices = r.u64();
  m.shard_count = r.u32();
  m.weighting = r.u32();
  return m;
}

inline std::string wal_segment_name(std::uint64_t seqno) {
  std::string digits = std::to_string(seqno);
  I2A_EXPECTS(digits.size() <= 16, "wal: seqno too large");
  return "wal-" + std::string(16 - digits.size(), '0') + digits + ".log";
}

/// Parse `wal-<seqno>.log`; nullopt for anything else.
inline std::optional<std::uint64_t> parse_wal_segment_name(
    std::string_view name) {
  constexpr std::string_view prefix = "wal-";
  constexpr std::string_view suffix = ".log";
  if (name.size() != prefix.size() + 16 + suffix.size()) return std::nullopt;
  if (name.substr(0, prefix.size()) != prefix) return std::nullopt;
  if (name.substr(prefix.size() + 16) != suffix) return std::nullopt;
  std::uint64_t seqno = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const char c = name[prefix.size() + i];
    if (c < '0' || c > '9') return std::nullopt;
    seqno = seqno * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seqno;
}

/// Append-side WAL over one directory. Single writer (the same external
/// serialization `ingest()` already requires); not thread-safe.
class Wal {
 public:
  /// Open a fresh segment `wal-<seqno>.log` whose header says "batches
  /// after epoch `start_epoch` follow". The directory must exist.
  Wal(std::string dir, WalManifest manifest, Durability durability,
      std::uint64_t segment_bytes, std::uint64_t seqno,
      std::uint64_t start_epoch)
      : dir_(std::move(dir)),
        manifest_(std::move(manifest)),
        durability_(durability),
        segment_bytes_(segment_bytes),
        seqno_(seqno),
        next_epoch_(start_epoch + 1) {
    I2A_EXPECTS(segment_bytes_ > 0, "wal: zero segment size");
    open_segment(start_epoch);
  }

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;
  Wal(Wal&&) = default;
  Wal& operator=(Wal&&) = default;
  ~Wal() {
    try {
      close();  // kAsync promises an fsync on close
    } catch (...) {
      // A failed final fsync has no remaining caller to report to; the
      // frames are still in the page cache (SIGKILL-safe, not
      // power-loss-safe), which is also kAsync's mid-run contract.
    }
  }

  /// Log one batch under `epoch`. Strong guarantee (see file comment);
  /// epochs must arrive strictly sequentially.
  void append(std::uint64_t epoch, std::span<const graph::Edge> batch) {
    if (failed_) {
      throw util::IoError("wal '" + dir_ + "' is failed (rollback truncate " +
                          "did not complete); no further appends accepted");
    }
    I2A_EXPECTS(epoch == next_epoch_, "wal: non-sequential epoch");
    util::ByteWriter w;
    w.u32(kFrameBatch);
    w.u64(epoch);
    w.u64(batch.size());
    for (const graph::Edge& e : batch) {
      w.i64(static_cast<std::int64_t>(e.src));
      w.i64(static_cast<std::int64_t>(e.dst));
      w.f64(e.weight);
    }
    const std::uint64_t pre_append = file_.size();
    try {
      util::write_frame(file_, w.buffer(),
                        [] { I2A_FAILPOINT("wal.append.write"); });
      if (durability_ == Durability::kFsyncEachBatch) {
        I2A_FAILPOINT("wal.append.fsync");
        file_.sync();
      }
    } catch (...) {
      rollback_to(pre_append);
      throw;
    }
    ++next_epoch_;
    if (file_.size() >= segment_bytes_) rotate();
  }

  /// fsync the current segment (checkpointing syncs the log before
  /// trusting its coverage; kAsync acknowledgement boundary).
  void sync() {
    if (durability_ != Durability::kNone) file_.sync();
  }

  /// Flush and close the current segment. The Wal is unusable after.
  void close() {
    if (file_.is_open()) {
      sync();
      file_.close();
    }
  }

  /// Delete every segment made fully redundant by a checkpoint at
  /// `checkpoint_epoch`: segment i is redundant when segment i+1 exists,
  /// has a readable header, and starts at or before that epoch (an
  /// unreadable successor header proves nothing about coverage, so its
  /// predecessor is kept). Segments with seqno ≥ `active_seqno` are
  /// never deleted. Static (dir + values only) so the background
  /// checkpoint task can retire without referencing the live Wal
  /// object — the task may run concurrently with appends and rotation.
  static void retire_segments(const std::string& dir,
                              std::uint64_t checkpoint_epoch,
                              std::uint64_t active_seqno) {
    const auto segments = list_segments(dir);
    bool removed = false;
    for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
      if (segments[i + 1].header_ok &&
          segments[i + 1].start_epoch <= checkpoint_epoch &&
          segments[i].seqno < active_seqno) {
        util::remove_file(segments[i].path);
        removed = true;
      }
    }
    if (removed) util::fsync_dir(dir);
  }

  const std::string& dir() const { return dir_; }
  std::uint64_t seqno() const { return seqno_; }
  std::uint64_t next_epoch() const { return next_epoch_; }
  bool failed() const { return failed_; }

  /// One on-disk segment, as discovered by `list_segments`.
  struct SegmentInfo {
    std::string path;
    std::uint64_t seqno = 0;
    std::uint64_t start_epoch = 0;  ///< epochs > start_epoch live here
    bool header_ok = false;         ///< header frame parsed and CRC-valid
  };

  /// Discover segments in `dir`, sorted by seqno. Reads only each
  /// file's header frame; a segment whose header is unreadable gets
  /// start_epoch from the scan (the replay pass classifies it properly).
  static std::vector<SegmentInfo> list_segments(const std::string& dir) {
    std::vector<SegmentInfo> out;
    for (const std::string& name : util::list_dir(dir)) {
      const auto seqno = parse_wal_segment_name(name);
      if (!seqno) continue;
      SegmentInfo info;
      info.path = dir + "/" + name;
      info.seqno = *seqno;
      out.push_back(std::move(info));
    }
    // list_dir sorts lexically and the names zero-pad seqno, so `out`
    // is already seqno-sorted; fill in header epochs where readable.
    for (SegmentInfo& info : out) {
      const std::vector<unsigned char> image = util::read_file(info.path);
      util::FrameReader reader(image);
      std::vector<unsigned char> payload;
      if (reader.next(payload) == util::FrameStatus::kOk) {
        try {
          util::ByteReader r(payload);
          if (r.u32() == kFrameSegmentHeader && r.u32() == kWalFormatVersion) {
            r.u64();  // seqno (redundant with the name)
            info.start_epoch = r.u64();
            info.header_ok = true;
          }
        } catch (const util::IoError&) {
          // Leave start_epoch = 0; replay rejects the segment.
        }
      }
    }
    return out;
  }

 private:
  void open_segment(std::uint64_t start_epoch) {
    const std::string path = dir_ + "/" + wal_segment_name(seqno_);
    if (util::file_exists(path)) {
      throw util::IoError("wal segment already exists: " + path);
    }
    file_ = util::File::create_append(path);
    util::ByteWriter w;
    w.u32(kFrameSegmentHeader);
    w.u32(kWalFormatVersion);
    w.u64(seqno_);
    w.u64(start_epoch);
    encode_manifest(w, manifest_);
    util::write_frame(file_, w.buffer());
    // The header must be durable before any batch frame can be: a
    // segment whose header never reached disk would orphan the batches
    // behind it.
    if (durability_ != Durability::kNone) {
      file_.sync();
      util::fsync_dir(dir_);
    }
  }

  void rotate() {
    // Seal the old segment (fsync under any durability mode that ever
    // syncs), then open the next one.
    sync();
    file_.close();
    ++seqno_;
    open_segment(next_epoch_ - 1);
  }

  void rollback_to(std::uint64_t pre_append) noexcept {
    try {
      file_.truncate(pre_append);
    } catch (...) {
      failed_ = true;  // can no longer promise at-most-once epochs
    }
  }

  std::string dir_;
  WalManifest manifest_;
  Durability durability_ = Durability::kFsyncEachBatch;
  std::uint64_t segment_bytes_ = 0;
  std::uint64_t seqno_ = 0;
  std::uint64_t next_epoch_ = 0;
  bool failed_ = false;
  util::File file_;
};

/// Replay outcome for one directory scan.
struct WalReplayStats {
  std::uint64_t segments_scanned = 0;
  std::uint64_t batches_replayed = 0;
  std::uint64_t batches_skipped = 0;   ///< epochs the checkpoint already covers
  std::uint64_t tail_bytes_truncated = 0;
  std::uint64_t last_seqno = 0;        ///< highest segment seqno seen
  bool any_segment = false;
};

/// ftruncate `path` to `keep` bytes (torn-tail repair), recording the
/// loss in `stats`. Separate function so the crash harness can count
/// repairs.
inline void truncate_segment(const std::string& path, std::uint64_t keep,
                             std::size_t file_size, WalReplayStats& stats) {
  stats.tail_bytes_truncated += static_cast<std::uint64_t>(file_size) - keep;
  util::File f = util::File::open_append(path);
  f.truncate(keep);
  f.sync();
  f.close();
}
/// Scan every segment in `dir` and replay each batch frame with epoch >
/// `start_epoch` through `sink(epoch, edges)`, in epoch order.
///
/// Torn-tail policy: an invalid tail (short header, impossible length,
/// CRC mismatch — indistinguishable classes, by design of the format)
/// in the **last** segment is the expected SIGKILL residue: the file is
/// ftruncated back to the last valid frame boundary and replay
/// succeeds. The same residue in any earlier segment cannot come from a
/// tail crash (a later segment exists, so this one was sealed) and is
/// reported as RecoveryError. Epoch gaps and manifest mismatches are
/// always RecoveryError.
///
/// Idempotent: re-running on the directory it just repaired replays the
/// identical batch sequence (truncation only ever removes bytes replay
/// ignored).
template <typename Sink>
WalReplayStats replay_wal(const std::string& dir,
                          const WalManifest& expected,
                          std::uint64_t start_epoch, Sink&& sink) {
  WalReplayStats stats;
  const auto segments = Wal::list_segments(dir);
  std::uint64_t epoch = start_epoch;
  for (std::size_t si = 0; si < segments.size(); ++si) {
    const bool last = si + 1 == segments.size();
    const Wal::SegmentInfo& seg = segments[si];
    stats.any_segment = true;
    stats.last_seqno = seg.seqno;
    ++stats.segments_scanned;
    const std::vector<unsigned char> image = util::read_file(seg.path);
    util::FrameReader reader(image);
    std::vector<unsigned char> payload;

    const auto corrupt = [&](const std::string& what) -> RecoveryError {
      return RecoveryError(what + " in segment '" + seg.path + "' at offset " +
                           std::to_string(reader.offset()));
    };

    // Header frame first. An empty segment file (crash between segment
    // creation and the header write, or a previous recovery's repair)
    // carries nothing and is skipped; a torn header in the last segment
    // is the same residue and is truncated back to empty.
    {
      const util::FrameStatus st = reader.next(payload);
      if (st == util::FrameStatus::kEnd) continue;
      if (st != util::FrameStatus::kOk) {
        if (last) {
          truncate_segment(seg.path, 0, image.size(), stats);
          break;
        }
        throw corrupt("unreadable segment header");
      }
      try {
        util::ByteReader r(payload);
        if (r.u32() != kFrameSegmentHeader) {
          throw corrupt("first frame is not a segment header");
        }
        if (const std::uint32_t v = r.u32(); v != kWalFormatVersion) {
          throw RecoveryError("segment '" + seg.path +
                              "' has format version " + std::to_string(v) +
                              ", expected " +
                              std::to_string(kWalFormatVersion));
        }
        r.u64();  // seqno
        r.u64();  // segment start epoch (informational; the chain rules)
        if (const WalManifest m = decode_manifest(r); m != expected) {
          throw RecoveryError("manifest mismatch in '" + seg.path +
                              "': log has " + m.describe() + ", builder is " +
                              expected.describe());
        }
      } catch (const util::IoError&) {
        throw corrupt("truncated segment header payload");
      }
    }

    // Batch frames.
    for (;;) {
      const std::uint64_t frame_start = reader.offset();
      const util::FrameStatus st = reader.next(payload);
      if (st == util::FrameStatus::kEnd) break;
      if (st == util::FrameStatus::kTorn) {
        if (!last) throw corrupt("torn frame in sealed segment");
        truncate_segment(seg.path, frame_start, image.size(), stats);
        break;
      }
      std::uint64_t frame_epoch = 0;
      std::vector<graph::Edge> edges;
      try {
        util::ByteReader r(payload);
        if (r.u32() != kFrameBatch) throw corrupt("unexpected frame type");
        frame_epoch = r.u64();
        const std::uint64_t count = r.u64();
        if (count > r.remaining() / 24 || count * 24 != r.remaining()) {
          throw corrupt("batch frame size does not match edge count");
        }
        edges.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          graph::Edge e;
          e.src = static_cast<index_t>(r.i64());
          e.dst = static_cast<index_t>(r.i64());
          e.weight = r.f64();
          edges.push_back(e);
        }
      } catch (const util::IoError&) {
        throw corrupt("malformed batch payload");
      }
      if (frame_epoch <= start_epoch) {
        // The checkpoint already covers this batch.
        ++stats.batches_skipped;
        continue;
      }
      if (frame_epoch != epoch + 1) {
        throw RecoveryError("epoch chain broken in '" + seg.path +
                            "': expected epoch " + std::to_string(epoch + 1) +
                            ", found " + std::to_string(frame_epoch));
      }
      sink(frame_epoch, edges);
      epoch = frame_epoch;
      ++stats.batches_replayed;
    }
  }
  return stats;
}

}  // namespace i2a::stream
