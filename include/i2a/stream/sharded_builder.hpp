#pragma once
/// \file stream/sharded_builder.hpp
/// \brief Shared-nothing row sharding over the streaming builder:
///        hash-partition source vertices across N independent
///        `AdjacencyBuilder` shards, serve one fused `PinnedSnapshot`.
///
/// Sharding by *source vertex* is exact for this workload, not an
/// approximation: adjacency row i is the ⊕-fold of precisely the edges
/// with src = i, so routing each edge to the shard that owns its source
/// partitions the fold by row. Every shard builds over the full n × n
/// shape (rows it doesn't own stay empty), which keeps run shapes
/// conformant for the k-way merge; the fused snapshot is simply the
/// concatenation of every shard's pinned run-list. Per row, all
/// contributing runs come from the one shard that owns it and stay in
/// batch-age order, so the fused snapshot is byte-identical to a
/// single-builder snapshot and to a full rebuild — pinned per prefix by
/// test_sharded_differential.
///
/// Shards share nothing on the hot path: each has its own ladder,
/// mutex, and background compaction chain. The only cross-shard state
/// is one coordination mutex making (publish to all shards) and (pin
/// all shards) atomic with respect to each other, so a fused snapshot
/// always covers the same batch prefix on every shard. Staging — the
/// expensive incidence + SpGEMM work — happens for all shards *before*
/// that mutex is taken; the critical section is N cheap run-list
/// appends (background mode) or the ladder merges (inline mode).
///
/// The shard hash is a splitmix64-style finalizer over the vertex id,
/// not `src % N`: generator vertex ids are dense, and real-world id
/// schemes stripe (hubs at round numbers, region prefixes), so a plain
/// modulus can systematically starve shards. The finalizer decorrelates
/// shard choice from id structure at ~1 ns cost (DESIGN.md §9).
///
/// Exception safety: sharded ingest is **two-phase** and carries the
/// same strong guarantee as the single builder (swept by
/// tests/test_failpoints.cpp). Phase 1 *prepares* every shard — staging,
/// and in inline mode the compaction merges, all on private state; any
/// failure (a throwing ⊕, allocation, an armed failpoint) unwinds with
/// no shard touched. Phase 2 *commits* every shard under the
/// coordination mutex with `commit_publish`, which has no fallible step
/// before the batch counts — so shard epochs can never tear: either all
/// shards advance or none does. Background-merge failures follow the
/// single-builder deferred-error rules, surfacing from `drain()` / the
/// next `ingest()` (exactly once per failure) and peeking into
/// `snapshot().pending_error()`.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "algebra/concepts.hpp"
#include "core/types.hpp"
#include "graph/graph.hpp"
#include "sparse/csr.hpp"
#include "sparse/spgemm.hpp"
#include "stream/adjacency_builder.hpp"
#include "stream/checkpoint.hpp"
#include "stream/pinned_snapshot.hpp"
#include "stream/wal.hpp"
#include "util/failpoint.hpp"
#include "util/io.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace i2a::stream {

/// N independent single-writer builders behind one writer-facing
/// `ingest` and one reader-facing `snapshot`. Same thread contract as
/// `AdjacencyBuilder`: ingest calls externally serialized, everything
/// else callable from any thread concurrently.
template <typename P>
  requires algebra::Semiring<P>
class ShardedBuilder {
 public:
  using value_type = typename P::value_type;
  using Stats = typename AdjacencyBuilder<P>::Stats;

  /// `max_pending_merges` is forwarded to every shard: each shard's
  /// compaction debt is bounded independently (debt is per-ladder).
  ShardedBuilder(index_t num_vertices, std::size_t num_shards, P p = P{},
                 Weighting weighting = Weighting::kUnweighted,
                 sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kAuto,
                 util::ThreadPool* pool = nullptr,
                 Compaction compaction = Compaction::kInline,
                 std::size_t max_pending_merges = kUnboundedPendingMerges)
      : ShardedBuilder(num_vertices, num_shards, std::move(p),
                       Options{weighting, algo, pool, compaction,
                               max_pending_merges, {},
                               Durability::kFsyncEachBatch, 64ULL << 20,
                               0}) {}

  /// Options-struct constructor — the durable entry point. The sharded
  /// builder owns ONE WAL for the whole group (each shard gets
  /// durability-stripped options): a batch is logged once, un-routed,
  /// and the deterministic shard hash re-routes it identically on
  /// replay. The manifest records the shard count, so recovery refuses
  /// a directory written under a different sharding.
  ShardedBuilder(index_t num_vertices, std::size_t num_shards, P p,
                 const Options& opts)
      : n_(num_vertices), p_(std::move(p)), wal_dir_(opts.wal_dir),
        durability_(opts.durability),
        wal_segment_bytes_(opts.wal_segment_bytes),
        checkpoint_every_(opts.checkpoint_every) {
    if (num_shards == 0) {
      throw std::invalid_argument("ShardedBuilder: zero shards");
    }
    const Options shard_opts = opts.without_durability();
    shards_.reserve(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
      shards_.emplace_back(num_vertices, p_, shard_opts);
    }
    if (!wal_dir_.empty()) {
      manifest_ = shards_.front().make_manifest(
          static_cast<std::uint32_t>(num_shards));
      util::ensure_dir(wal_dir_);
      require_no_durable_state(wal_dir_);
      wal_.emplace(wal_dir_, manifest_, durability_, wal_segment_bytes_,
                   /*seqno=*/0, /*start_epoch=*/0);
    }
  }

  /// Rebuild a sharded builder from the durable state in
  /// `opts.wal_dir` — same contract as `AdjacencyBuilder::recover`
  /// (checkpoint + WAL-suffix replay, torn-tail repair, typed refusal
  /// of mismatched manifests, idempotent). `num_shards` must match the
  /// recorded manifest or recovery throws `RecoveryError`.
  static ShardedBuilder recover(index_t num_vertices, std::size_t num_shards,
                                P p, const Options& opts) {
    return ShardedBuilder(RecoverTag{}, num_vertices, num_shards,
                          std::move(p), opts);
  }

  ShardedBuilder(const ShardedBuilder&) = delete;
  ShardedBuilder& operator=(const ShardedBuilder&) = delete;

  index_t num_vertices() const { return n_; }
  std::size_t num_shards() const { return shards_.size(); }

  /// Which shard owns source vertex `src` (and adjacency row `src`).
  std::size_t shard_of(index_t src) const {
    return shard_index(src, shards_.size());
  }

  /// Route the batch's edges to their shards, stage and *prepare* every
  /// shard's publish (no coordination lock; any failure unwinds with no
  /// shard touched), then *commit* all shards under the coordination
  /// mutex — a loop of noexcept steps, so concurrent snapshots never
  /// observe a half-applied batch and shard epochs cannot tear. Every
  /// shard ingests every batch — shards a batch sends no edges to
  /// publish an empty delta — keeping all shard epochs in lockstep.
  /// Backpressure (if configured) runs last, per shard, outside the
  /// coordination mutex.
  void ingest(std::span<const graph::Edge> batch) I2A_EXCLUDES(mu_) {
    ingest_impl(batch, /*log=*/true);
  }

  /// Edge-list convenience overload.
  void ingest(const std::vector<graph::Edge>& batch) {
    ingest(std::span<const graph::Edge>(batch.data(), batch.size()));
  }

  /// Pin every shard's run-list under the coordination mutex and fuse
  /// them (shard order, oldest first within a shard) into one
  /// `PinnedSnapshot`. Rows are disjoint across shards, so the fused
  /// read paths fold each row from exactly its owning shard's runs —
  /// byte-identical to the single-builder snapshot of the same prefix.
  PinnedSnapshot<P> snapshot() const I2A_EXCLUDES(mu_) {
    std::vector<std::shared_ptr<const sparse::Csr<value_type>>> fused;
    std::uint64_t epoch = 0;
    std::exception_ptr pending;
    {
      util::MutexLock lock(mu_);
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        PinnedSnapshot<P> pin = shards_[s].snapshot();
        if (s == 0) epoch = pin.batches();
        if (!pending && pin.pending_error()) pending = pin.pending_error();
        const auto& handles = pin.run_handles();
        fused.insert(fused.end(), handles.begin(), handles.end());
      }
    }
    return PinnedSnapshot<P>(n_, p_, epoch, std::move(fused), pending);
  }

  /// Materialized fused adjacency (query-side fan-in: one k-way merge
  /// across every shard's pinned runs).
  sparse::Csr<value_type> adjacency() const {
    return snapshot().materialize(pool());
  }

  /// Aggregate maintenance stats: batches is the shard-lockstep epoch;
  /// the cost counters (including pending_merges and
  /// backpressure_events) sum across shards; failpoints_hit is the
  /// process-wide fire count (identical in every shard).
  Stats stats() const {
    Stats total;
    bool first = true;
    for (const auto& shard : shards_) {
      const Stats s = shard.stats();
      if (first) {
        total.batches = s.batches;
        first = false;
      }
      total.edges += s.edges;
      total.compactions += s.compactions;
      total.delta_entries += s.delta_entries;
      total.merged_entries += s.merged_entries;
      total.pending_merges += s.pending_merges;
      total.backpressure_events += s.backpressure_events;
      total.checkpoints += s.checkpoints;
      total.failpoints_hit = s.failpoints_hit;
    }
    return total;
  }

  /// Wait for every shard's background compaction chain to settle, then
  /// rethrow the first pending failure encountered (shard order). Every
  /// shard is drained even when an early shard throws; each shard
  /// reports at most one failure per drain call, so repeated drains (or
  /// subsequent ingests) deliver any remaining queued failures —
  /// exactly once each.
  void drain() const {
    std::exception_ptr first;
    for (const auto& shard : shards_) {
      try {
        shard.drain();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
  }

 private:
  /// Tag-dispatched recovery constructor (see `recover`): delegate with
  /// durability stripped, restore the checkpoint into every shard,
  /// replay the WAL suffix through the normal (un-logged) publish path,
  /// attach a fresh segment. ShardedBuilder holds a util::Mutex
  /// directly so it is not movable — the tag constructor plus prvalue
  /// return in `recover` is what stands in for a move.
  struct RecoverTag {};
  ShardedBuilder(RecoverTag, index_t num_vertices, std::size_t num_shards,
                 P p, const Options& opts)
      : ShardedBuilder(num_vertices, num_shards, std::move(p),
                       opts.without_durability()) {
    if (opts.wal_dir.empty()) {
      throw std::invalid_argument("ShardedBuilder::recover: empty wal_dir");
    }
    wal_dir_ = opts.wal_dir;
    durability_ = opts.durability;
    wal_segment_bytes_ = opts.wal_segment_bytes;
    checkpoint_every_ = opts.checkpoint_every;
    manifest_ = shards_.front().make_manifest(
        static_cast<std::uint32_t>(num_shards));
    util::ensure_dir(wal_dir_);
    std::uint64_t start_epoch = 0;
    if (auto ckpt =
            load_newest_checkpoint<value_type>(wal_dir_, manifest_)) {
      start_epoch = ckpt->epoch;
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        shards_[s].restore_runs(std::move(ckpt->shards[s]), ckpt->epoch,
                                ckpt->edges[s]);
      }
    }
    const WalReplayStats rstats = replay_wal(
        wal_dir_, manifest_, start_epoch,
        [this](std::uint64_t, const std::vector<graph::Edge>& edges) {
          // Injection site: shared with the single-builder recovery —
          // one evaluation per replayed batch.
          I2A_FAILPOINT("recover.replay");
          ingest_impl(
              std::span<const graph::Edge>(edges.data(), edges.size()),
              /*log=*/false);
        });
    std::uint64_t epoch_now = 0;
    {
      util::MutexLock lock(mu_);
      epoch_now = shards_.front().stats().batches;
    }
    wal_.emplace(wal_dir_, manifest_, durability_, wal_segment_bytes_,
                 rstats.any_segment ? rstats.last_seqno + 1 : 0, epoch_now);
  }

  /// The shared body of `ingest` (log = true) and recovery replay
  /// (log = false): route, stage + prepare every shard, append the
  /// un-routed batch to the WAL between prepare and commit (so a crash
  /// mid-commit recovers the whole cross-shard batch — commit is
  /// noexcept per shard, so once logging succeeded every shard
  /// advances), commit all shards under the coordination mutex, then
  /// checkpoint/backpressure.
  void ingest_impl(std::span<const graph::Edge> batch, bool log)
      I2A_EXCLUDES(mu_) {
    for (auto& shard : shards_) shard.rethrow_pending_error();
    for (const graph::Edge& e : batch) {
      if (e.src < 0 || e.src >= n_ || e.dst < 0 || e.dst >= n_) {
        throw std::out_of_range("ShardedBuilder::ingest: edge endpoint "
                                "out of range");
      }
    }
    const std::size_t k = shards_.size();
    std::vector<std::vector<graph::Edge>> routed(k);
    for (const graph::Edge& e : batch) {
      routed[shard_index(e.src, k)].push_back(e);
    }
    // Phase 1: stage + prepare, all fallible work. Nothing is consumed
    // until every shard has a Prepared in hand.
    std::vector<typename AdjacencyBuilder<P>::Prepared> preps;
    preps.reserve(k);
    for (std::size_t s = 0; s < k; ++s) {
      auto delta = shards_[s].stage(std::span<const graph::Edge>(
          routed[s].data(), routed[s].size()));
      preps.push_back(
          shards_[s].prepare_publish(std::move(delta), routed[s].size()));
    }
    // The WAL append is the last fallible step: its strong guarantee
    // (rollback on failure) extends the un-torn property across the
    // log and the ladders together.
    if (log && wal_) {
      wal_->append(shards_.front().stats().batches + 1, batch);
    }
    // Phase 2: commit every shard — noexcept per shard — atomically with
    // respect to fused snapshots.
    {
      util::MutexLock lock(mu_);
      for (std::size_t s = 0; s < k; ++s) {
        shards_[s].commit_publish(std::move(preps[s]));
      }
    }
    if (log) maybe_checkpoint();
    for (auto& shard : shards_) shard.maybe_backpressure();
  }

  /// Cross-shard checkpoint scheduling. The checkpoint token lives on
  /// shard 0's ladder (`checkpointing` + its cv), so `drain()` and
  /// every shard-0 teardown path wait on it with no extra machinery;
  /// failures land in shard 0's deferred-error queue. The run lists of
  /// all shards are pinned under the coordination mutex, which orders
  /// the pin against publishes — every shard is captured at the same
  /// epoch.
  void maybe_checkpoint() I2A_EXCLUDES(mu_) {
    if (!wal_ || checkpoint_every_ == 0) return;
    using Builder = AdjacencyBuilder<P>;
    const std::size_t k = shards_.size();
    std::uint64_t epoch = 0;
    std::vector<std::vector<CheckpointRun<value_type>>> shard_runs(k);
    std::vector<std::uint64_t> edges(k, 0);
    {
      util::MutexLock lock(mu_);
      auto& lad0 = *shards_.front().ladder_;
      {
        util::MutexLock l0(lad0.mu);
        epoch = lad0.stats.batches;
        if (epoch == 0 || epoch % checkpoint_every_ != 0) return;
        if (lad0.checkpointing) return;  // one in flight; skip boundary
      }
      for (std::size_t s = 0; s < k; ++s) {
        auto& lad = *shards_[s].ladder_;
        util::MutexLock ls(lad.mu);
        shard_runs[s].reserve(lad.runs.size());
        for (const auto& r : lad.runs) {
          shard_runs[s].push_back(CheckpointRun<value_type>{r.csr, r.weight});
        }
        edges[s] = lad.stats.edges;
      }
      util::MutexLock l0(lad0.mu);
      lad0.checkpointing = true;  // the last fallible step was above
    }
    Builder::dispatch_checkpoint(shards_.front().ladder_, pool(), wal_dir_,
                                 manifest_, epoch, std::move(shard_runs),
                                 std::move(edges), wal_->seqno());
  }
  static std::size_t shard_index(index_t src, std::size_t shards) {
    auto x = static_cast<std::uint64_t>(src);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x % static_cast<std::uint64_t>(shards));
  }

  util::ThreadPool* pool() const {
    return shards_.empty() ? nullptr : shards_.front().pool_;
  }

  index_t n_;
  P p_;
  /// Orders (publish-to-all) against (pin-all): a fused snapshot always
  /// sees every shard at the same epoch. The per-shard ladders are
  /// guarded by their own mutexes (see AdjacencyBuilder::Ladder); this
  /// capability only sequences the two cross-shard composites, so it is
  /// always the outermost lock (DESIGN.md §11).
  mutable util::Mutex mu_;
  std::vector<AdjacencyBuilder<P>> shards_;
  // Durability (inert unless wal_ is engaged; writer-thread-only).
  std::string wal_dir_;
  Durability durability_ = Durability::kFsyncEachBatch;
  std::uint64_t wal_segment_bytes_ = 64ULL << 20;
  std::uint64_t checkpoint_every_ = 0;
  WalManifest manifest_;
  std::optional<Wal> wal_;
};

}  // namespace i2a::stream
