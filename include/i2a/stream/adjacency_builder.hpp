#pragma once
/// \file stream/adjacency_builder.hpp
/// \brief Streaming/batched adjacency maintenance: ingest edge batches,
///        keep the adjacency array A = Eᵀout ⊕.⊗ Ein current without ever
///        rebuilding it from the full edge list.
///
/// The paper states Theorem II.1 for a static edge list; a serving
/// system sees edges in batches. Because the theorem's per-(i,j) value
/// is a ⊕-fold over parallel edges and ⊕ is associative, the fold can be
/// computed incrementally: build each batch's *delta* adjacency with the
/// ordinary sort-free incidence + SpGEMM path (graph/incidence.hpp),
/// then ⊕-merge deltas into the running array (sparse/merge.hpp). Age
/// order is preserved end to end — older batches always fold first — so
/// the maintained array is byte-identical to a full rebuild from the
/// concatenated edge list (pinned by test_stream.cpp across batch sizes,
/// pool sizes, and algebras).
///
/// Merging every batch into one master array would cost O(master nnz)
/// per batch — quadratic over a stream of small batches. Instead the
/// builder keeps a **geometric compaction ladder** (the LSM-tree /
/// logarithmic-method shape): level i holds one immutable CSR run
/// covering exactly 2^i consecutive batches, occupancy follows the
/// binary representation of the batch count, and an ingest that finds
/// levels 0..j-1 occupied compacts them — one (j+1)-way ⊕-merge of
/// [level j-1 … level 0, delta], oldest first — into level j. Each
/// stored entry is rewritten O(log #batches) times total, so sustained
/// ingest is amortized O(nnz · log batches) instead of O(nnz · batches),
/// and a snapshot query is a single k-way merge of the ≤ log₂(batches)+1
/// live runs.

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "algebra/concepts.hpp"
#include "core/types.hpp"
#include "graph/graph.hpp"
#include "graph/incidence.hpp"
#include "sparse/csr.hpp"
#include "sparse/merge.hpp"
#include "sparse/spgemm.hpp"
#include "util/contract.hpp"
#include "util/thread_pool.hpp"

namespace i2a::stream {

/// How a batch's incidence arrays draw their entries — mirrors the two
/// batch-construction entry points (`incidence_arrays` /
/// `weighted_incidence_arrays`).
enum class Weighting {
  kUnweighted,  ///< every incidence entry is 1: A(i,j) folds edge counts
  kWeighted,    ///< Ein carries w(e), Eout carries ⊗-identity: A(i,j)
                ///< folds edge weights (min.+ SSSP-ready, etc.)
};

/// Maintains A over a batched edge stream for one operator pair.
/// Thread-compatible, not thread-safe: all builder calls must be
/// externally serialized (one at a time; any thread may make them when a
/// mutex orders the handoff — pinned under TSan by test_stream's
/// concurrent ingest/snapshot stress). `adjacency` snapshots are value
/// copies the caller owns outright. The ladder regroups the ⊕-fold
/// across batches and the per-batch delta is a full ⊕.⊗ product, so the
/// pair must declare the complete `Semiring` contract.
template <typename P>
  requires algebra::Semiring<P>
class AdjacencyBuilder {
 public:
  using value_type = typename P::value_type;

  /// Maintenance-cost accounting, the bench_stream counters.
  struct Stats {
    std::uint64_t batches = 0;          ///< ingested batches (incl. empty)
    std::uint64_t edges = 0;            ///< ingested edges
    std::uint64_t compactions = 0;      ///< ladder k-way merges run
    std::uint64_t delta_entries = 0;    ///< nnz across per-batch deltas
    std::uint64_t merged_entries = 0;   ///< nnz written by compactions
  };

  explicit AdjacencyBuilder(index_t num_vertices, P p = P{},
                            Weighting weighting = Weighting::kUnweighted,
                            sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kAuto,
                            util::ThreadPool* pool = nullptr)
      : n_(num_vertices), p_(p), weighting_(weighting), algo_(algo),
        pool_(pool) {
    if (num_vertices < 0) {
      throw std::invalid_argument("AdjacencyBuilder: negative vertex count");
    }
  }

  index_t num_vertices() const { return n_; }
  const Stats& stats() const { return stats_; }

  /// Live ladder runs (≤ log₂(batches) + 1).
  index_t num_levels() const {
    index_t live = 0;
    for (const auto& l : levels_) live += l.has_value() ? 1 : 0;
    return live;
  }

  /// Ingest one batch: validate, run the batch through the sort-free
  /// incidence + SpGEMM path to a delta CSR, and push the delta onto the
  /// compaction ladder. Out-of-range endpoints reject the whole batch
  /// before any state changes.
  void ingest(std::span<const graph::Edge> batch) {
    for (const graph::Edge& e : batch) {
      if (e.src < 0 || e.src >= n_ || e.dst < 0 || e.dst >= n_) {
        throw std::out_of_range("AdjacencyBuilder::ingest: edge endpoint "
                                "out of range");
      }
    }
    if (batch.empty()) {  // ⊕-identity contribution: nothing to fold
      ++stats_.batches;
      return;
    }
    graph::Graph g(n_);
    g.edges().assign(batch.begin(), batch.end());
    const auto inc = weighting_ == Weighting::kWeighted
                         ? graph::weighted_incidence_arrays(g, p_, pool_)
                         : graph::incidence_arrays(g, p_, pool_);
    auto delta = graph::adjacency_array(p_, inc, algo_, pool_);
    const auto delta_nnz = static_cast<std::uint64_t>(delta.nnz());
    push_run(std::move(delta));
    // Accounting last: if the delta build or a ladder merge throws (⊕ may
    // throw; allocation can fail), stats must not claim a batch the
    // ladder never received.
    ++stats_.batches;
    stats_.edges += batch.size();
    stats_.delta_entries += delta_nnz;
  }

  /// Edge-list convenience overload.
  void ingest(const std::vector<graph::Edge>& batch) {
    ingest(std::span<const graph::Edge>(batch.data(), batch.size()));
  }

  /// Snapshot of the maintained adjacency array: one k-way ⊕-merge of
  /// the live runs, oldest first. Byte-identical to
  /// `build_adjacency` / `adjacency_array` over the concatenation of
  /// every ingested batch.
  sparse::Csr<value_type> adjacency() const {
    std::vector<const sparse::Csr<value_type>*> runs;
    runs.reserve(levels_.size());
    for (std::size_t i = levels_.size(); i-- > 0;) {  // oldest (highest) first
      if (levels_[i].has_value()) runs.push_back(&*levels_[i]);
    }
    if (runs.empty()) {
      return sparse::Csr<value_type>(
          n_, n_, std::vector<index_t>(static_cast<std::size_t>(n_) + 1, 0),
          {}, {});
    }
    return sparse::merge_add_k(runs, add_fn(), pool_);
  }

 private:
  auto add_fn() const {
    return [p = p_](const value_type& x, const value_type& y) {
      return p.add(x, y);
    };
  }

  /// Binary-counter carry: the delta lands at the first free level, after
  /// compacting every occupied level below it in one k-way merge (oldest
  /// run first, delta last — fold order is batch order).
  void push_run(sparse::Csr<value_type> delta) {
    std::size_t j = 0;
    while (j < levels_.size() && levels_[j].has_value()) ++j;
    if (j >= levels_.size()) levels_.resize(j + 1);
    if (j == 0) {
      levels_[0] = std::move(delta);
      return;
    }
    std::vector<const sparse::Csr<value_type>*> runs;
    runs.reserve(j + 1);
    for (std::size_t i = j; i-- > 0;) runs.push_back(&*levels_[i]);
    runs.push_back(&delta);
    auto merged = sparse::merge_add_k(runs, add_fn(), pool_);
    I2A_ENSURES(merged.is_canonical(),
                "AdjacencyBuilder: compaction produced non-canonical run");
    ++stats_.compactions;
    stats_.merged_entries += static_cast<std::uint64_t>(merged.nnz());
    for (std::size_t i = 0; i < j; ++i) levels_[i].reset();
    levels_[j] = std::move(merged);
  }

  index_t n_;
  P p_;
  Weighting weighting_;
  sparse::SpGemmAlgo algo_;
  util::ThreadPool* pool_;
  /// levels_[i], when occupied, is the ⊕-fold of 2^i consecutive batches;
  /// higher levels hold strictly older batches.
  std::vector<std::optional<sparse::Csr<value_type>>> levels_;
  Stats stats_;
};

}  // namespace i2a::stream
