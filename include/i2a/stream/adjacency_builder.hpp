#pragma once
/// \file stream/adjacency_builder.hpp
/// \brief Concurrent streaming adjacency maintenance: ingest edge
///        batches, keep A = Eᵀout ⊕.⊗ Ein current, and serve lock-free
///        epoch-pinned snapshots to readers while the writer appends and
///        compacts.
///
/// The paper states Theorem II.1 for a static edge list; a serving
/// system sees edges in batches *and queries between them*. Because the
/// theorem's per-(i,j) value is a ⊕-fold over parallel edges and ⊕ is
/// associative, the fold can be computed incrementally: build each
/// batch's *delta* adjacency with the ordinary sort-free incidence +
/// SpGEMM path (graph/incidence.hpp), keep the deltas as immutable
/// refcounted runs, and ⊕-merge them — lazily for queries, eagerly for
/// compaction (sparse/merge.hpp). Age order is preserved end to end, so
/// every snapshot is byte-identical to a full rebuild from the
/// concatenated prefix of batches it covers.
///
/// **Run-list ladder.** The builder keeps a list of immutable CSR runs,
/// oldest first, each covering a consecutive interval of batches — the
/// logarithmic-method / LSM shape expressed as a list instead of
/// fixed-power-of-two slots, so compaction can happen asynchronously.
/// After appending a batch's delta (weight 1), the *compaction policy*
/// merges the maximal balanced suffix: the longest tail of runs in which
/// every run's weight is ≤ the combined weight of the runs after it.
/// Settled run weights are therefore super-increasing, which bounds live
/// runs by log₂(batches) + 1 and rewrites each stored entry O(log
/// batches) times total — the same amortized O(nnz · log batches)
/// maintenance as the PR 4 binary-counter ladder, with identical bytes.
///
/// **Concurrency model (the serving core).** Single writer, any number
/// of readers:
///
///   * `snapshot()` — callable from ANY thread at ANY time, concurrent
///     with ingest and compaction. It takes the ladder lock only to copy
///     O(log batches) shared_ptrs plus the epoch counter, then the
///     reader traverses its `PinnedSnapshot` with no further
///     synchronization. Retired runs are reclaimed when the last
///     snapshot pinning them drops (refcount = epoch drain).
///   * `ingest()` — one thread at a time (external serialization; any
///     thread may be the writer when a mutex orders the handoff). The
///     expensive delta build runs without the ladder lock; publishing
///     the delta is an O(log batches) append under the lock.
///   * Compaction — `Compaction::kInline` (default) merges synchronously
///     inside `ingest`; `Compaction::kBackground` only *schedules* the
///     merge as a detached `ThreadPool::submit` task: the task replaces
///     the merged group under the lock when done and re-schedules itself
///     while more suffixes qualify. Readers are never blocked by a merge
///     in either mode: every merge works on private run handles and
///     commits by pointer splice under the lock.
///
/// **Failure model (DESIGN.md §10; swept by tests/test_failpoints.cpp).**
/// Every fallible step is classified, and each class has one documented
/// delivery rule:
///
///   * *Strong guarantee on ingest.* Anything that throws out of
///     `ingest()` — batch validation, delta staging (incidence assembly,
///     SpGEMM), and in inline mode the compaction merges themselves —
///     leaves the builder exactly as before the call: same runs, same
///     stats, same epoch; snapshots never see a torn batch. Inline
///     compaction earns this by settling a private copy of the run list
///     and committing it with a single noexcept splice.
///   * *Deferred errors from background compaction.* A background merge
///     failure (⊕ may throw; so may allocation) cannot be thrown at the
///     writer synchronously — the batch that scheduled it was already
///     consumed. The failure is queued; the compaction chain parks. Each
///     queued failure is delivered **exactly once**, at the next
///     `drain()` or `ingest()` (whichever comes first; ingest rethrows
///     before consuming its batch). `snapshot()` stays non-throwing — it
///     *peeks* the oldest pending failure into
///     `PinnedSnapshot::pending_error()` without consuming it, so
///     readers can observe degraded freshness while the writer still
///     gets its exactly-once delivery.
///   * *Absorbed degradation.* A failed `ThreadPool::submit` of a
///     compaction task (queue allocation) falls back to running the
///     merge inline on the writer thread — counted in
///     `Stats::backpressure_events`, never thrown: the batch is already
///     published and scheduling is a quality-of-service concern, not a
///     correctness one.
///
/// **Backpressure.** In background mode an unbounded writer can outrun
/// the compactor, growing the run list (and every reader's per-row merge
/// fan-in) without bound. `max_pending_merges` caps the debt: after each
/// publish, if the number of merges the policy still owes exceeds the
/// cap, `ingest` stalls: it waits out the in-flight task (whose splice
/// usually replans the chain and clears the debt) and, if still over
/// budget, claims the compaction token and settles the ladder inline
/// before returning — the writer pays the merge cost the background
/// lane deferred. Each such stall increments
/// `Stats::backpressure_events`; `Stats::pending_merges` is the live
/// debt. The default is unbounded (PR 7 behavior).
///
/// Canonical-CSR postconditions (`I2A_ENSURES`) hold for every run the
/// ladder ever exposes, whether an inline merge, a background-task
/// merge, or a per-batch delta produced it — the Debug/
/// `I2A_CHECK_INVARIANTS` CI legs execute the background path too.

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "algebra/concepts.hpp"
#include "core/types.hpp"
#include "graph/graph.hpp"
#include "graph/incidence.hpp"
#include "sparse/csr.hpp"
#include "sparse/merge.hpp"
#include "sparse/spgemm.hpp"
#include "stream/checkpoint.hpp"
#include "stream/pinned_snapshot.hpp"
#include "stream/wal.hpp"
#include "util/contract.hpp"
#include "util/failpoint.hpp"
#include "util/io.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace i2a::stream {

template <typename P>
  requires algebra::Semiring<P>
class ShardedBuilder;

/// How a batch's incidence arrays draw their entries — mirrors the two
/// batch-construction entry points (`incidence_arrays` /
/// `weighted_incidence_arrays`).
enum class Weighting {
  kUnweighted,  ///< every incidence entry is 1: A(i,j) folds edge counts
  kWeighted,    ///< Ein carries w(e), Eout carries ⊗-identity: A(i,j)
                ///< folds edge weights (min.+ SSSP-ready, etc.)
};

/// Where ladder compactions run (see the file comment's concurrency
/// model).
enum class Compaction {
  kInline,      ///< merge synchronously inside ingest (PR 4 semantics)
  kBackground,  ///< schedule merges as detached ThreadPool tasks
};

/// `max_pending_merges` value meaning "no backpressure" (the default).
inline constexpr std::size_t kUnboundedPendingMerges =
    static_cast<std::size_t>(-1);

/// Aggregated construction options for `AdjacencyBuilder` /
/// `ShardedBuilder`. The first block mirrors the positional constructor
/// parameters; the second configures the durability subsystem
/// (DESIGN.md §12) — all of it inert while `wal_dir` is empty.
struct Options {
  Weighting weighting = Weighting::kUnweighted;
  sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kAuto;
  util::ThreadPool* pool = nullptr;
  Compaction compaction = Compaction::kInline;
  std::size_t max_pending_merges = kUnboundedPendingMerges;

  /// Directory for WAL segments + checkpoints. Empty = in-memory only
  /// (no logging, no recovery — the pre-durability behavior, bit for
  /// bit). A fresh builder refuses a directory that already holds
  /// durable state: that data is recoverable, so constructing over it
  /// would be silent data loss — use `recover()` instead.
  std::string wal_dir;
  /// When an acknowledged batch is durable (see stream/wal.hpp).
  Durability durability = Durability::kFsyncEachBatch;
  /// WAL segment rotation threshold.
  std::uint64_t wal_segment_bytes = 64ULL << 20;
  /// Write a run-level checkpoint every this many batches via the
  /// background pool (0 = never). Checkpoints bound replay time and let
  /// fully-covered WAL segments retire.
  std::uint64_t checkpoint_every = 0;

  /// Copy with durability stripped — what each shard of a
  /// `ShardedBuilder` gets (the sharded builder owns the one WAL).
  Options without_durability() const {
    Options o = *this;
    o.wal_dir.clear();
    o.checkpoint_every = 0;
    return o;
  }
};

/// Maintains A over a batched edge stream for one operator pair.
/// Writer calls (`ingest`) must be externally serialized; `snapshot`,
/// `adjacency`, `stats`, `num_levels` and `drain` are safe from any
/// thread concurrently with the writer and with background compaction
/// (pinned under TSan by test_serve). The ladder regroups the ⊕-fold
/// across batches and the per-batch delta is a full ⊕.⊗ product, so the
/// pair must declare the complete `Semiring` contract.
template <typename P>
  requires algebra::Semiring<P>
class AdjacencyBuilder {
 public:
  using value_type = typename P::value_type;

  /// Maintenance-cost accounting, the bench counters.
  struct Stats {
    std::uint64_t batches = 0;          ///< ingested batches (incl. empty)
    std::uint64_t edges = 0;            ///< ingested edges
    std::uint64_t compactions = 0;      ///< ladder k-way merges run
    std::uint64_t delta_entries = 0;    ///< nnz across per-batch deltas
    std::uint64_t merged_entries = 0;   ///< nnz written by compactions
    std::uint64_t pending_merges = 0;   ///< merges the policy still owes
                                        ///< (computed at stats() time)
    std::uint64_t backpressure_events = 0;  ///< over-budget writer stalls
                                            ///< + submit-failure fallbacks
    std::uint64_t checkpoints = 0;      ///< durable checkpoints written
    std::uint64_t failpoints_hit = 0;   ///< process-wide failpoint fires
                                        ///< (always 0 in production
                                        ///< builds; see util/failpoint.hpp)
  };

  /// `max_pending_merges` bounds the background-compaction debt (see the
  /// file comment's backpressure section); ignored in inline mode, where
  /// the ladder settles every ingest anyway.
  explicit AdjacencyBuilder(index_t num_vertices, P p = P{},
                            Weighting weighting = Weighting::kUnweighted,
                            sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kAuto,
                            util::ThreadPool* pool = nullptr,
                            Compaction compaction = Compaction::kInline,
                            std::size_t max_pending_merges =
                                kUnboundedPendingMerges)
      : AdjacencyBuilder(num_vertices, std::move(p),
                         Options{weighting, algo, pool, compaction,
                                 max_pending_merges, {},
                                 Durability::kFsyncEachBatch, 64ULL << 20,
                                 0}) {}

  /// Options-struct constructor — the durable entry point. A non-empty
  /// `opts.wal_dir` attaches a fresh WAL (segment 0, epoch 0); the
  /// directory must not already hold durable state (use `recover()`).
  AdjacencyBuilder(index_t num_vertices, P p, const Options& opts)
      : n_(num_vertices), p_(std::move(p)), weighting_(opts.weighting),
        algo_(opts.algo), pool_(opts.pool), compaction_(opts.compaction),
        max_pending_merges_(opts.max_pending_merges),
        ladder_(std::make_shared<Ladder>()), wal_dir_(opts.wal_dir),
        durability_(opts.durability),
        wal_segment_bytes_(opts.wal_segment_bytes),
        checkpoint_every_(opts.checkpoint_every) {
    if (num_vertices < 0) {
      throw std::invalid_argument("AdjacencyBuilder: negative vertex count");
    }
    if (compaction_ == Compaction::kBackground && pool_ == nullptr) {
      // No pool means nothing can host the task; degrade to inline
      // rather than silently never compacting.
      compaction_ = Compaction::kInline;
    }
    if (!wal_dir_.empty()) {
      manifest_ = make_manifest(/*shard_count=*/1);
      util::ensure_dir(wal_dir_);
      require_no_durable_state(wal_dir_);
      wal_.emplace(wal_dir_, manifest_, durability_, wal_segment_bytes_,
                   /*seqno=*/0, /*start_epoch=*/0);
    }
  }

  /// Rebuild a builder from the durable state in `opts.wal_dir`: load
  /// the newest fully-valid checkpoint (if any), replay the WAL suffix
  /// through the normal publish path — repairing a torn tail in the
  /// last segment — and attach a fresh segment for new batches. Refuses
  /// mismatched durable state (wrong algebra instantiation, vertex
  /// count, shard count, or weighting) with `RecoveryError`; throws
  /// `RecoveryError` on mid-log corruption or a broken epoch chain.
  /// Idempotent: recovering an already-recovered directory replays the
  /// identical batch sequence. An empty (or absent) directory yields a
  /// fresh builder at epoch 0. Cost counters other than `batches` and
  /// `edges` restart at zero for the checkpointed prefix.
  static AdjacencyBuilder recover(index_t num_vertices, P p,
                                  const Options& opts) {
    return AdjacencyBuilder(RecoverTag{}, num_vertices, std::move(p), opts);
  }

  // One ladder, one owner: copying would alias the mutable run list.
  // Moves keep vector<AdjacencyBuilder> (the shard array) workable.
  AdjacencyBuilder(const AdjacencyBuilder&) = delete;
  AdjacencyBuilder& operator=(const AdjacencyBuilder&) = delete;
  AdjacencyBuilder(AdjacencyBuilder&&) noexcept = default;
  AdjacencyBuilder& operator=(AdjacencyBuilder&&) noexcept = default;

  /// Destruction settles first: any in-flight background compaction or
  /// checkpoint completes (the tasks own the ladder via shared_ptr and
  /// the pool must outlive the builder, as for all pool users), so no
  /// task ever observes a dead builder and no error can arrive after
  /// the check below. A queued background failure that nothing drained
  /// is then an asserted contract violation in checked builds — the
  /// owner must either `drain()` (deliver) or `dismiss_pending_errors()`
  /// (explicitly discard) before destruction; silently dropping a
  /// failure is not an option the API offers anymore.
  ~AdjacencyBuilder() {
    if (!ladder_) return;  // moved-from
    util::MutexLock lock(ladder_->mu);
    while (ladder_->compacting || ladder_->checkpointing) {
      ladder_->cv.wait(ladder_->mu);
    }
    I2A_ASSERT(ladder_->errors.empty(),
               "AdjacencyBuilder destroyed with undelivered background "
               "errors; drain() or dismiss_pending_errors() first");
  }

  /// Settle in-flight background work, then acknowledge-and-discard
  /// every queued background failure without rethrowing. Returns the
  /// number discarded. This is the explicit escape hatch the destructor
  /// contract points at: "I know this builder may hold failures and I
  /// am choosing not to look".
  std::size_t dismiss_pending_errors() noexcept I2A_EXCLUDES(ladder_->mu) {
    if (!ladder_) return 0;
    util::MutexLock lock(ladder_->mu);
    while (ladder_->compacting || ladder_->checkpointing) {
      ladder_->cv.wait(ladder_->mu);
    }
    const std::size_t n = ladder_->errors.size();
    ladder_->errors.clear();
    return n;
  }

  index_t num_vertices() const { return n_; }

  Stats stats() const I2A_EXCLUDES(ladder_->mu) {
    util::MutexLock lock(ladder_->mu);
    Stats s = ladder_->stats;
    s.pending_merges = static_cast<std::uint64_t>(pending_merges_locked());
    s.failpoints_hit = util::failpoints_fired_total();
    return s;
  }

  /// Live ladder runs. ≤ log₂(batches) + 1 whenever the ladder is
  /// settled — always after an inline-mode `ingest`, and after `drain()`
  /// in background mode (mid-flight the count may transiently exceed the
  /// bound while appends outpace the in-flight merge).
  index_t num_levels() const I2A_EXCLUDES(ladder_->mu) {
    util::MutexLock lock(ladder_->mu);
    return static_cast<index_t>(ladder_->runs.size());
  }

  /// Ingest one batch: rethrow any pending background-merge failure
  /// (before touching the batch), validate, build the batch's delta CSR
  /// (sort-free incidence + SpGEMM, no ladder lock held), log it to the
  /// WAL (durable builders only), publish it onto the run list, and
  /// apply backpressure if configured.
  ///
  /// Strong guarantee: if this throws — validation, a pending deferred
  /// error, staging, a WAL append (which rolls its own bytes back), or
  /// an inline-mode merge — the batch was not consumed and the builder
  /// (runs, stats, epoch, log) is unchanged. Under
  /// `Durability::kFsyncEachBatch` a normal return additionally means
  /// the batch is on stable storage (the acknowledged-durability
  /// contract the crash harness holds recovery to).
  void ingest(std::span<const graph::Edge> batch) {
    rethrow_pending_error();
    validate_batch(batch, "AdjacencyBuilder");
    Prepared prep = prepare_publish(stage(batch), batch.size());
    if (wal_) {
      std::uint64_t epoch = 0;
      {
        util::MutexLock lock(ladder_->mu);
        epoch = ladder_->stats.batches + 1;
      }
      wal_->append(epoch, batch);
    }
    commit_publish(std::move(prep));
    maybe_checkpoint();
    maybe_backpressure();
  }

  /// Edge-list convenience overload.
  void ingest(const std::vector<graph::Edge>& batch) {
    ingest(std::span<const graph::Edge>(batch.data(), batch.size()));
  }

  /// Pin the live run-set: O(log batches) shared_ptr copies under the
  /// ladder lock, then the returned snapshot is traversed with no
  /// further synchronization. Never throws past allocation: a pending
  /// background failure is *peeked* (not consumed) into the snapshot's
  /// `pending_error()`. See stream/pinned_snapshot.hpp.
  PinnedSnapshot<P> snapshot() const I2A_EXCLUDES(ladder_->mu) {
    std::vector<std::shared_ptr<const sparse::Csr<value_type>>> pins;
    std::uint64_t epoch;
    std::exception_ptr pending;
    {
      util::MutexLock lock(ladder_->mu);
      pins.reserve(ladder_->runs.size());
      for (const auto& run : ladder_->runs) pins.push_back(run.csr);
      epoch = ladder_->stats.batches;
      pending = ladder_->errors.empty() ? nullptr : ladder_->errors.front();
    }
    return PinnedSnapshot<P>(n_, p_, epoch, std::move(pins), pending);
  }

  /// Materialized snapshot of the maintained adjacency array: one k-way
  /// ⊕-merge of the live runs, oldest first. Byte-identical to
  /// `build_adjacency` / `adjacency_array` over the concatenation of
  /// every ingested batch.
  sparse::Csr<value_type> adjacency() const {
    return snapshot().materialize(pool_);
  }

  /// Block until no background compaction or checkpoint is in flight
  /// and no further one is scheduled (no-op in inline mode), then
  /// rethrow the oldest still-undelivered background failure, if any —
  /// each queued failure is delivered exactly once across `drain()` and
  /// `ingest()`.
  void drain() const I2A_EXCLUDES(ladder_->mu) {
    std::exception_ptr err;
    {
      util::MutexLock lock(ladder_->mu);
      while (ladder_->compacting || ladder_->checkpointing) {
        ladder_->cv.wait(ladder_->mu);
      }
      err = pop_error_locked();
    }
    if (err) std::rethrow_exception(err);
  }

 private:
  template <typename Q>
    requires algebra::Semiring<Q>
  friend class ShardedBuilder;

  /// One immutable ladder run: the ⊕-fold of `weight` consecutive
  /// non-empty batches.
  struct Run {
    std::shared_ptr<const sparse::Csr<value_type>> csr;
    std::uint64_t weight;
  };

  /// Shared ladder state. Refcounted so background compaction tasks can
  /// outlive the builder object itself; `mu` guards every member, and
  /// the `I2A_GUARDED_BY` annotations make `-Wthread-safety` prove it on
  /// every access path (writer, reader pin, background task).
  struct Ladder {
    mutable util::Mutex mu;
    util::CondVar cv;             ///< signaled when a compaction settles
    /// Run list, oldest first, consecutive intervals.
    std::vector<Run> runs I2A_GUARDED_BY(mu);
    Stats stats I2A_GUARDED_BY(mu);
    /// True while a compaction holds the token.
    bool compacting I2A_GUARDED_BY(mu) = false;
    /// True while a background checkpoint is in flight (at most one; a
    /// ShardedBuilder parks its cross-shard checkpoint token on shard
    /// 0's ladder, so drain/destruction wait on it through the same cv).
    bool checkpointing I2A_GUARDED_BY(mu) = false;
    /// Failed background merges, oldest first; each entry is delivered
    /// exactly once (drain / ingest pop, snapshot peeks).
    std::vector<std::exception_ptr> errors I2A_GUARDED_BY(mu);
  };

  /// The staged-but-uncommitted half of a publish. `prepare_publish` does
  /// everything that can throw; `commit_publish` consumes the result with
  /// no fallible step before the batch counts as ingested — which is what
  /// lets `ShardedBuilder` prepare every shard first and then commit them
  /// all under one lock without risking a torn cross-shard epoch.
  struct Prepared {
    bool inline_mode = false;
    std::vector<Run> runs;  ///< inline mode: the fully settled new list
    std::uint64_t compactions = 0;
    std::uint64_t merged_entries = 0;
    /// Background mode: the delta to append (capacity already reserved).
    std::shared_ptr<const sparse::Csr<value_type>> delta;
    std::uint64_t delta_nnz = 0;
    std::size_t batch_edges = 0;
  };

  /// Tag-dispatched recovery constructor (see `recover`). Delegates to
  /// the normal constructor with durability stripped (so no fresh WAL
  /// is attached yet), restores the checkpoint, replays the WAL suffix
  /// through the normal publish path, then attaches a fresh segment.
  struct RecoverTag {};
  AdjacencyBuilder(RecoverTag, index_t num_vertices, P p, const Options& opts)
      : AdjacencyBuilder(num_vertices, std::move(p),
                         opts.without_durability()) {
    if (opts.wal_dir.empty()) {
      throw std::invalid_argument("AdjacencyBuilder::recover: empty wal_dir");
    }
    wal_dir_ = opts.wal_dir;
    durability_ = opts.durability;
    wal_segment_bytes_ = opts.wal_segment_bytes;
    checkpoint_every_ = opts.checkpoint_every;
    manifest_ = make_manifest(/*shard_count=*/1);
    util::ensure_dir(wal_dir_);
    std::uint64_t start_epoch = 0;
    if (auto ckpt = load_newest_checkpoint<value_type>(wal_dir_, manifest_)) {
      start_epoch = ckpt->epoch;
      restore_runs(std::move(ckpt->shards[0]), ckpt->epoch, ckpt->edges[0]);
    }
    const WalReplayStats rstats = replay_wal(
        wal_dir_, manifest_, start_epoch,
        [this](std::uint64_t, const std::vector<graph::Edge>& edges) {
          // Injection site: one evaluation per replayed batch, so the
          // sweep can kill recovery itself mid-replay and prove a
          // second recover() of the same directory still succeeds.
          I2A_FAILPOINT("recover.replay");
          ingest_unlogged(
              std::span<const graph::Edge>(edges.data(), edges.size()));
        });
    std::uint64_t epoch_now = 0;
    {
      util::MutexLock lock(ladder_->mu);
      epoch_now = ladder_->stats.batches;
    }
    wal_.emplace(wal_dir_, manifest_, durability_, wal_segment_bytes_,
                 rstats.any_segment ? rstats.last_seqno + 1 : 0, epoch_now);
  }

  /// The durable-directory identity this instantiation writes/expects.
  WalManifest make_manifest(std::uint32_t shard_count) const {
    return WalManifest{algebra_tag<P>(),
                       static_cast<std::uint64_t>(n_), shard_count,
                       static_cast<std::uint32_t>(weighting_)};
  }

  void validate_batch(std::span<const graph::Edge> batch,
                      const char* who) const {
    for (const graph::Edge& e : batch) {
      if (e.src < 0 || e.src >= n_ || e.dst < 0 || e.dst >= n_) {
        throw std::out_of_range(std::string(who) +
                                "::ingest: edge endpoint out of range");
      }
    }
  }

  /// The full publish path minus WAL append and checkpoint scheduling —
  /// what replay feeds recorded batches through (logging them again
  /// would duplicate frames).
  void ingest_unlogged(std::span<const graph::Edge> batch) {
    rethrow_pending_error();
    validate_batch(batch, "AdjacencyBuilder");
    Prepared prep = prepare_publish(stage(batch), batch.size());
    commit_publish(std::move(prep));
    maybe_backpressure();
  }

  /// Install a checkpoint's run list into an untouched ladder
  /// (recovery only).
  void restore_runs(std::vector<CheckpointRun<value_type>>&& runs,
                    std::uint64_t epoch, std::uint64_t edges)
      I2A_EXCLUDES(ladder_->mu) {
    util::MutexLock lock(ladder_->mu);
    I2A_EXPECTS(ladder_->runs.empty() && ladder_->stats.batches == 0,
                "restore_runs: ladder already has state");
    ladder_->runs.reserve(runs.size());
    for (CheckpointRun<value_type>& r : runs) {
      ladder_->runs.push_back(Run{std::move(r.csr), r.weight});
    }
    ladder_->stats.batches = epoch;
    ladder_->stats.edges = edges;
  }

  /// If a checkpoint boundary was just crossed and none is in flight,
  /// pin the run list + counters under the lock and dispatch the
  /// background checkpoint task. Failures surface through the
  /// deferred-error queue (never synchronously from ingest): the batch
  /// is already committed, so the strong-guarantee channel is closed —
  /// same classification as a background-merge failure.
  void maybe_checkpoint() I2A_EXCLUDES(ladder_->mu) {
    if (!wal_ || checkpoint_every_ == 0) return;
    std::uint64_t epoch = 0;
    std::uint64_t edges = 0;
    std::vector<std::vector<CheckpointRun<value_type>>> shard_runs(1);
    {
      util::MutexLock lock(ladder_->mu);
      epoch = ladder_->stats.batches;
      if (epoch == 0 || epoch % checkpoint_every_ != 0) return;
      if (ladder_->checkpointing) return;  // one in flight; skip boundary
      shard_runs[0].reserve(ladder_->runs.size());
      for (const Run& r : ladder_->runs) {
        shard_runs[0].push_back(CheckpointRun<value_type>{r.csr, r.weight});
      }
      edges = ladder_->stats.edges;
      ladder_->checkpointing = true;  // the last fallible step was above
    }
    dispatch_checkpoint(ladder_, pool_, wal_dir_, manifest_, epoch,
                        std::move(shard_runs), {edges}, wal_->seqno());
  }

  /// Build and hand off the checkpoint task. `lad` must already hold
  /// the checkpoint token; the task clears it, signals the cv, bumps
  /// `stats.checkpoints` on success, and queues failures as deferred
  /// errors. A failed submit runs the task inline (absorbed, counted in
  /// `backpressure_events`, like the compaction-submit fallback).
  /// Static and `this`-free: the task may outlive the builder object
  /// (it shares the ladder), and the WAL is referenced only through
  /// captured values (dir + active seqno).
  static void dispatch_checkpoint(
      std::shared_ptr<Ladder> lad, util::ThreadPool* pool, std::string dir,
      WalManifest manifest, std::uint64_t epoch,
      std::vector<std::vector<CheckpointRun<value_type>>> shard_runs,
      std::vector<std::uint64_t> edges, std::uint64_t active_seqno)
      I2A_EXCLUDES(lad->mu) {
    auto task = [lad, dir = std::move(dir), manifest = std::move(manifest),
                 epoch, shard_runs = std::move(shard_runs),
                 edges = std::move(edges), active_seqno]() {
      std::exception_ptr failure;
      try {
        write_checkpoint<value_type>(dir, manifest, epoch, shard_runs, edges);
        gc_checkpoints(dir, epoch);
        Wal::retire_segments(dir, epoch, active_seqno);
      } catch (...) {
        failure = std::current_exception();
      }
      {
        util::MutexLock lock(lad->mu);
        if (failure) {
          try {
            lad->errors.push_back(failure);
          } catch (...) {
            // Reporting itself failed on allocation (prepare reserves a
            // spare slot to make this a corner of a corner). The token
            // release below must still happen, so the failure is
            // dropped here — the checkpoint file was already cleaned
            // up, so no durable state is inconsistent.
          }
        } else {
          ++lad->stats.checkpoints;
        }
        lad->checkpointing = false;
      }
      lad->cv.notify_all();
    };
    bool fallback = (pool == nullptr);
    if (pool != nullptr) {
      try {
        auto backup = task;  // submit may consume its argument on throw
        pool->submit(std::move(backup));
      } catch (...) {
        fallback = true;
        util::MutexLock lock(lad->mu);
        ++lad->stats.backpressure_events;
      }
    }
    if (fallback) task();  // the task body delivers its own failures
  }

  void rethrow_pending_error() I2A_EXCLUDES(ladder_->mu) {
    std::exception_ptr err;
    {
      util::MutexLock lock(ladder_->mu);
      err = pop_error_locked();
    }
    if (err) std::rethrow_exception(err);
  }

  std::exception_ptr pop_error_locked() const I2A_REQUIRES(ladder_->mu) {
    if (ladder_->errors.empty()) return nullptr;
    std::exception_ptr err = ladder_->errors.front();
    ladder_->errors.erase(ladder_->errors.begin());
    return err;
  }

  /// Build a batch's delta adjacency — no ladder state is touched, so
  /// staging runs lock-free (and `ShardedBuilder` stages every shard
  /// before taking its publish lock). Returns nullptr for an empty batch
  /// (the ⊕-identity contribution).
  std::shared_ptr<const sparse::Csr<value_type>> stage(
      std::span<const graph::Edge> batch) const {
    if (batch.empty()) return nullptr;
    // Injection site: the whole staging pipeline for a non-empty batch.
    // A fire here (or in the incidence/SpGEMM sites downstream) leaves
    // the ladder untouched — ingest's strong guarantee.
    I2A_FAILPOINT("builder.stage.batch");
    graph::Graph g(n_);
    g.edges().assign(batch.begin(), batch.end());
    const auto inc = weighting_ == Weighting::kWeighted
                         ? graph::weighted_incidence_arrays(g, p_, pool_)
                         : graph::incidence_arrays(g, p_, pool_);
    auto delta = graph::adjacency_array(p_, inc, algo_, pool_);
    I2A_ENSURES(delta.is_canonical(),
                "AdjacencyBuilder: staged delta not canonical");
    return std::make_shared<const sparse::Csr<value_type>>(std::move(delta));
  }

  /// Phase 1 of a publish: everything fallible. Inline mode settles the
  /// whole ladder on a private copy of the run list (cheap shared_ptr
  /// copies — concurrent readers keep pinning the old list mid-merge,
  /// and a throwing ⊕ leaves runs and stats untouched). Background mode
  /// only reserves the capacity `commit_publish` will need, so the
  /// commit's push_back cannot throw.
  Prepared prepare_publish(
      std::shared_ptr<const sparse::Csr<value_type>> delta,
      std::size_t batch_edges) I2A_EXCLUDES(ladder_->mu) {
    Prepared prep;
    prep.batch_edges = batch_edges;
    prep.delta_nnz = static_cast<std::uint64_t>(delta ? delta->nnz() : 0);
    if (compaction_ == Compaction::kInline) {
      prep.inline_mode = true;
      {
        util::MutexLock lock(ladder_->mu);
        prep.runs = ladder_->runs;
      }
      if (delta) prep.runs.push_back(Run{std::move(delta), 1});
      settle_runs(prep.runs, prep.compactions, prep.merged_entries);
    } else {
      prep.delta = std::move(delta);
      util::MutexLock lock(ladder_->mu);
      ladder_->runs.reserve(ladder_->runs.size() + 1);
      // One spare error slot, so a background task's failure report
      // cannot itself die on allocation in the common case.
      ladder_->errors.reserve(ladder_->errors.size() + 1);
    }
    return prep;
  }

  /// Phase 2 of a publish: consume a `Prepared` with no fallible step
  /// before the batch is committed. Inline mode is a splice + stat bumps
  /// under the lock. Background mode appends the delta (capacity
  /// reserved), bumps stats, then *tries* to schedule the compaction
  /// task — a failed plan parks the chain (replanned on the next
  /// publish) and a failed submit runs the task inline on this thread
  /// (an absorbed degradation, counted in `backpressure_events`); in no
  /// case does a scheduling failure un-ingest the batch.
  // NOLINTNEXTLINE(bugprone-exception-escape): every fallible step ran
  // in prepare_publish (capacities reserved, merges settled on private
  // state); what remains is pointer splices, counter bumps, and the
  // absorb boundaries documented in DESIGN.md §10. The lint rule
  // `commit-noexcept` (tools/lint/) enforces that commit-phase
  // functions keep this declaration.
  void commit_publish(Prepared&& prep) noexcept I2A_EXCLUDES(ladder_->mu) {
    if (prep.inline_mode) {
      util::MutexLock lock(ladder_->mu);
      ladder_->runs = std::move(prep.runs);
      ++ladder_->stats.batches;
      ladder_->stats.edges += prep.batch_edges;
      ladder_->stats.delta_entries += prep.delta_nnz;
      ladder_->stats.compactions += prep.compactions;
      ladder_->stats.merged_entries += prep.merged_entries;
      return;
    }
    std::function<void()> task;
    {
      util::MutexLock lock(ladder_->mu);
      if (prep.delta) {
        ladder_->runs.push_back(Run{std::move(prep.delta), 1});
      }
      ++ladder_->stats.batches;
      ladder_->stats.edges += prep.batch_edges;
      ladder_->stats.delta_entries += prep.delta_nnz;
      try {
        task = plan_task_locked(ladder_, pool_, p_);
      } catch (...) {
        // Planning allocates (group copy, std::function). On failure the
        // token was never taken; the chain parks until the next publish
        // replans. The batch itself is already committed.
      }
    }
    if (!task) return;
    bool fallback = false;
    try {
      // Injection site: handing the compaction task to the pool. A fire
      // (or a real queue-allocation failure) must not lose the merge:
      // it runs inline below instead.
      I2A_FAILPOINT("builder.background.submit");
      auto backup = task;  // submit may consume its argument even on throw
      pool_->submit(std::move(backup));
    } catch (...) {
      fallback = true;
    }
    if (fallback) {
      {
        util::MutexLock lock(ladder_->mu);
        ++ladder_->stats.backpressure_events;
      }
      try {
        task();  // the task body handles its own failures (error queue)
      } catch (...) {
        // Only reachable if the task's own failure *reporting* failed on
        // allocation (prepare reserves a slot to prevent exactly this);
        // there is no channel left, and commit_publish is noexcept.
      }
    }
  }

  /// Post-publish backpressure (background mode with a bounded
  /// `max_pending_merges` only): if the compaction debt exceeds the cap,
  /// the writer stalls — every such stall is a `backpressure_events`
  /// tick, the observable "the bound bit" signal. Usually waiting out
  /// the in-flight task is enough (the chain replans as it splices); if
  /// the debt is still over budget after the wait (parked chain,
  /// cascade), claim the compaction token and settle the ladder on this
  /// thread. A merge failure here is recorded in the deferred-error
  /// queue (the batch is already consumed, so the strong-guarantee
  /// channel is closed); the old run list stays.
  void maybe_backpressure() I2A_EXCLUDES(ladder_->mu) {
    if (compaction_ != Compaction::kBackground) return;
    if (max_pending_merges_ == kUnboundedPendingMerges) return;
    util::MutexLock lock(ladder_->mu);
    if (pending_merges_locked() <= max_pending_merges_) return;
    ++ladder_->stats.backpressure_events;
    while (ladder_->compacting) ladder_->cv.wait(ladder_->mu);
    if (pending_merges_locked() <= max_pending_merges_) return;
    ladder_->compacting = true;
    std::vector<Run> runs = ladder_->runs;
    lock.unlock();
    std::uint64_t compactions = 0;
    std::uint64_t merged_entries = 0;
    // The settle runs unlocked on a private copy; success/failure is
    // recorded and applied under one relock below, so no lock
    // transition sits on an exceptional edge (the thread-safety
    // analysis does not model unwinding).
    std::exception_ptr failure;
    try {
      settle_runs(runs, compactions, merged_entries);
    } catch (...) {
      failure = std::current_exception();
    }
    lock.lock();
    if (!failure) {
      ladder_->runs = std::move(runs);
      ladder_->stats.compactions += compactions;
      ladder_->stats.merged_entries += merged_entries;
    } else {
      // Partial settle progress is discarded (private copy); the failure
      // is delivered exactly once via drain()/the next ingest().
      ladder_->errors.push_back(failure);
    }
    ladder_->compacting = false;
    lock.unlock();
    ladder_->cv.notify_all();
  }

  /// How many merges the compaction policy still owes on the current run
  /// list — simulated on the weights alone (no data touched). Caller
  /// holds the ladder lock.
  std::size_t pending_merges_locked() const I2A_REQUIRES(ladder_->mu) {
    std::vector<std::uint64_t> w;
    w.reserve(ladder_->runs.size());
    for (const Run& r : ladder_->runs) w.push_back(r.weight);
    std::size_t merges = 0;
    for (auto [lo, hi] = plan_suffix(w); hi > lo;
         std::tie(lo, hi) = plan_suffix(w)) {
      std::uint64_t sum = 0;
      for (std::size_t i = lo; i < hi; ++i) sum += w[i];
      w.erase(w.begin() + static_cast<std::ptrdiff_t>(lo + 1),
              w.begin() + static_cast<std::ptrdiff_t>(hi));
      w[lo] = sum;
      ++merges;
    }
    return merges;
  }

  auto add_fn() const {
    return [p = p_](const value_type& x, const value_type& y) {
      return p.add(x, y);
    };
  }

  /// Run the compaction policy to a fixed point on a private run list,
  /// accumulating stat deltas. Throws on merge failure (callers decide
  /// the delivery channel); the list is then mid-settle but private.
  void settle_runs(std::vector<Run>& runs, std::uint64_t& compactions,
                   std::uint64_t& merged_entries) const {
    for (auto [lo, hi] = plan_suffix(runs); hi > lo;
         std::tie(lo, hi) = plan_suffix(runs)) {
      Run merged = merge_group(runs, lo, hi, p_, pool_);
      // Injection site: between a finished merge and its splice — the
      // point where a failure has already paid the merge cost but must
      // still not corrupt the published list.
      I2A_FAILPOINT("builder.ladder.splice");
      merged_entries += static_cast<std::uint64_t>(merged.csr->nnz());
      ++compactions;
      runs.erase(runs.begin() + static_cast<std::ptrdiff_t>(lo + 1),
                 runs.begin() + static_cast<std::ptrdiff_t>(hi));
      runs[lo] = std::move(merged);
    }
  }

  static std::uint64_t weight_of(const Run& r) { return r.weight; }
  static std::uint64_t weight_of(std::uint64_t w) { return w; }

  /// The compaction policy: merge the maximal *balanced* suffix — the
  /// longest tail in which every run's weight is ≤ the combined weight
  /// of the runs after it. Returns [lo, hi) over `runs`, empty (hi ==
  /// lo) when nothing qualifies. Settled lists are super-increasing ⇒
  /// ≤ log₂(total weight) + 1 runs, and each entry is remerged O(log)
  /// times — the logarithmic method, async-friendly. Works on the run
  /// list or on a bare weight list (the pending-merges simulation).
  template <typename RunsVec>
  static std::pair<std::size_t, std::size_t> plan_suffix(
      const RunsVec& runs) {
    if (runs.size() < 2) return {0, 0};
    std::size_t lo = runs.size() - 1;
    std::uint64_t tail = weight_of(runs[lo]);
    while (lo > 0 && weight_of(runs[lo - 1]) <= tail) {
      tail += weight_of(runs[lo - 1]);
      --lo;
    }
    if (runs.size() - lo < 2) return {0, 0};
    return {lo, runs.size()};
  }

  /// k-way ⊕-merge of runs[lo, hi), oldest first. Background tasks call
  /// this with pool == nullptr: the merge is pool-size invariant, and a
  /// detached task must not fan back into the pool it occupies.
  static Run merge_group(const std::vector<Run>& runs, std::size_t lo,
                         std::size_t hi, const P& p,
                         util::ThreadPool* pool) {
    std::vector<const sparse::Csr<value_type>*> group;
    group.reserve(hi - lo);
    std::uint64_t weight = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      group.push_back(runs[i].csr.get());
      weight += runs[i].weight;
    }
    auto merged = sparse::merge_add_k(
        group,
        [&p](const value_type& x, const value_type& y) {
          return p.add(x, y);
        },
        pool);
    I2A_ENSURES(merged.is_canonical(),
                "AdjacencyBuilder: compaction produced non-canonical run");
    return Run{std::make_shared<const sparse::Csr<value_type>>(
                   std::move(merged)),
               weight};
  }

  /// Under the ladder lock: if no merge is in flight and a suffix
  /// qualifies, mark one in flight and return the task that performs it.
  /// The task owns the ladder via shared_ptr (it may outlive the
  /// builder), captures the group's run handles by value (the runs are
  /// immutable; list indices stay valid because the writer only appends
  /// and only this task replaces), and re-plans on completion so carry
  /// chains keep compacting without writer involvement. All allocation
  /// happens *before* the token is taken, so a throw from here leaves
  /// the ladder unclaimed.
  static std::function<void()> plan_task_locked(std::shared_ptr<Ladder> lad,
                                                util::ThreadPool* pool, P p)
      I2A_REQUIRES(lad->mu) {
    if (lad->compacting) return nullptr;
    const auto [lo, hi] = plan_suffix(lad->runs);
    if (hi <= lo) return nullptr;
    std::vector<Run> group(lad->runs.begin() + static_cast<std::ptrdiff_t>(lo),
                           lad->runs.begin() + static_cast<std::ptrdiff_t>(hi));
    std::function<void()> task =
        [lad, pool, p = std::move(p),
         group = std::move(group), lo, hi]() mutable {
      // The merge runs unlocked; its outcome is committed under one
      // locked scope below so no lock operation sits on an exceptional
      // edge (the thread-safety analysis does not model unwinding).
      Run merged{};
      std::exception_ptr failure;
      try {
        merged = merge_group(group, 0, group.size(), p, nullptr);
        // Injection site: the background twin of the inline splice site —
        // the merge succeeded, the commit under the lock has not happened.
        I2A_FAILPOINT("builder.ladder.splice");
      } catch (...) {
        failure = std::current_exception();
      }
      std::function<void()> next;
      {
        util::MutexLock lock(lad->mu);
        if (!failure) {
          lad->runs.erase(
              lad->runs.begin() + static_cast<std::ptrdiff_t>(lo + 1),
              lad->runs.begin() + static_cast<std::ptrdiff_t>(hi));
          lad->runs[lo] = std::move(merged);
          ++lad->stats.compactions;
          lad->stats.merged_entries +=
              static_cast<std::uint64_t>(lad->runs[lo].csr->nnz());
          lad->compacting = false;
          try {
            next = plan_task_locked(lad, pool, p);
          } catch (...) {
            // Replanning failed to allocate: the chain parks (token free),
            // the next publish replans. Nothing to report — no work lost.
          }
        } else {
          // The chain parks; the failure is delivered exactly once via
          // drain()/the next ingest(). (This push_back is the one spot
          // where reporting can itself fail on allocation — prepare
          // reserves a spare slot to keep that a corner of a corner; an
          // escape here lands in the pool's submit-error slot, never
          // std::terminate.)
          lad->errors.push_back(failure);
          lad->compacting = false;
        }
        lad->cv.notify_all();
      }
      if (next) {
        try {
          pool->submit(std::move(next));
        } catch (...) {
          // Re-chain submit failed: release the token the replan took
          // and park — the next publish replans the same suffix.
          util::MutexLock lock(lad->mu);
          lad->compacting = false;
          lad->cv.notify_all();
        }
      }
    };
    lad->compacting = true;  // only after every fallible step above
    return task;
  }

  index_t n_;
  P p_;
  Weighting weighting_;
  sparse::SpGemmAlgo algo_;
  util::ThreadPool* pool_;
  Compaction compaction_;
  std::size_t max_pending_merges_;
  std::shared_ptr<Ladder> ladder_;
  // Durability (inert unless wal_ is engaged; writer-thread-only, like
  // every other ingest-path member).
  std::string wal_dir_;
  Durability durability_ = Durability::kFsyncEachBatch;
  std::uint64_t wal_segment_bytes_ = 64ULL << 20;
  std::uint64_t checkpoint_every_ = 0;
  WalManifest manifest_;
  std::optional<Wal> wal_;
};

}  // namespace i2a::stream
