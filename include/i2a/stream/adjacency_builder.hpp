#pragma once
/// \file stream/adjacency_builder.hpp
/// \brief Concurrent streaming adjacency maintenance: ingest edge
///        batches, keep A = Eᵀout ⊕.⊗ Ein current, and serve lock-free
///        epoch-pinned snapshots to readers while the writer appends and
///        compacts.
///
/// The paper states Theorem II.1 for a static edge list; a serving
/// system sees edges in batches *and queries between them*. Because the
/// theorem's per-(i,j) value is a ⊕-fold over parallel edges and ⊕ is
/// associative, the fold can be computed incrementally: build each
/// batch's *delta* adjacency with the ordinary sort-free incidence +
/// SpGEMM path (graph/incidence.hpp), keep the deltas as immutable
/// refcounted runs, and ⊕-merge them — lazily for queries, eagerly for
/// compaction (sparse/merge.hpp). Age order is preserved end to end, so
/// every snapshot is byte-identical to a full rebuild from the
/// concatenated prefix of batches it covers.
///
/// **Run-list ladder.** The builder keeps a list of immutable CSR runs,
/// oldest first, each covering a consecutive interval of batches — the
/// logarithmic-method / LSM shape expressed as a list instead of
/// fixed-power-of-two slots, so compaction can happen asynchronously.
/// After appending a batch's delta (weight 1), the *compaction policy*
/// merges the maximal balanced suffix: the longest tail of runs in which
/// every run's weight is ≤ the combined weight of the runs after it.
/// Settled run weights are therefore super-increasing, which bounds live
/// runs by log₂(batches) + 1 and rewrites each stored entry O(log
/// batches) times total — the same amortized O(nnz · log batches)
/// maintenance as the PR 4 binary-counter ladder, with identical bytes.
///
/// **Concurrency model (the serving core).** Single writer, any number
/// of readers:
///
///   * `snapshot()` — callable from ANY thread at ANY time, concurrent
///     with ingest and compaction. It takes the ladder lock only to copy
///     O(log batches) shared_ptrs plus the epoch counter, then the
///     reader traverses its `PinnedSnapshot` with no further
///     synchronization. Retired runs are reclaimed when the last
///     snapshot pinning them drops (refcount = epoch drain).
///   * `ingest()` — one thread at a time (external serialization; any
///     thread may be the writer when a mutex orders the handoff). The
///     expensive delta build runs without the ladder lock; publishing
///     the delta is an O(log batches) append under the lock.
///   * Compaction — `Compaction::kInline` (default) merges synchronously
///     inside `ingest`, preserving the PR 4 semantics (strict ladder
///     bound after every ingest, merge exceptions thrown from the
///     offending `ingest`, stats untouched on failure). In
///     `Compaction::kBackground` mode, `ingest` only *schedules* the
///     merge as a detached `ThreadPool::submit` task and returns; the
///     task replaces the merged group under the lock when done and
///     re-schedules itself while more suffixes qualify. Readers are
///     never blocked by a merge in either mode: inline compaction works
///     on a private copy of the run list and commits by pointer swap.
///     A background merge failure (⊕ may throw; so may allocation) is
///     captured and rethrown from the *next* `ingest()` call —
///     `drain()` lets tests and shutdown paths wait for the ladder to
///     settle first.
///
/// Canonical-CSR postconditions (`I2A_ENSURES`) hold for every run the
/// ladder ever exposes, whether an inline merge, a background-task
/// merge, or a per-batch delta produced it — the Debug/
/// `I2A_CHECK_INVARIANTS` CI legs execute the background path too.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "algebra/concepts.hpp"
#include "core/types.hpp"
#include "graph/graph.hpp"
#include "graph/incidence.hpp"
#include "sparse/csr.hpp"
#include "sparse/merge.hpp"
#include "sparse/spgemm.hpp"
#include "stream/pinned_snapshot.hpp"
#include "util/contract.hpp"
#include "util/thread_pool.hpp"

namespace i2a::stream {

template <typename P>
  requires algebra::Semiring<P>
class ShardedBuilder;

/// How a batch's incidence arrays draw their entries — mirrors the two
/// batch-construction entry points (`incidence_arrays` /
/// `weighted_incidence_arrays`).
enum class Weighting {
  kUnweighted,  ///< every incidence entry is 1: A(i,j) folds edge counts
  kWeighted,    ///< Ein carries w(e), Eout carries ⊗-identity: A(i,j)
                ///< folds edge weights (min.+ SSSP-ready, etc.)
};

/// Where ladder compactions run (see the file comment's concurrency
/// model).
enum class Compaction {
  kInline,      ///< merge synchronously inside ingest (PR 4 semantics)
  kBackground,  ///< schedule merges as detached ThreadPool tasks
};

/// Maintains A over a batched edge stream for one operator pair.
/// Writer calls (`ingest`) must be externally serialized; `snapshot`,
/// `adjacency`, `stats`, `num_levels` and `drain` are safe from any
/// thread concurrently with the writer and with background compaction
/// (pinned under TSan by test_serve). The ladder regroups the ⊕-fold
/// across batches and the per-batch delta is a full ⊕.⊗ product, so the
/// pair must declare the complete `Semiring` contract.
template <typename P>
  requires algebra::Semiring<P>
class AdjacencyBuilder {
 public:
  using value_type = typename P::value_type;

  /// Maintenance-cost accounting, the bench counters.
  struct Stats {
    std::uint64_t batches = 0;          ///< ingested batches (incl. empty)
    std::uint64_t edges = 0;            ///< ingested edges
    std::uint64_t compactions = 0;      ///< ladder k-way merges run
    std::uint64_t delta_entries = 0;    ///< nnz across per-batch deltas
    std::uint64_t merged_entries = 0;   ///< nnz written by compactions
  };

  explicit AdjacencyBuilder(index_t num_vertices, P p = P{},
                            Weighting weighting = Weighting::kUnweighted,
                            sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kAuto,
                            util::ThreadPool* pool = nullptr,
                            Compaction compaction = Compaction::kInline)
      : n_(num_vertices), p_(p), weighting_(weighting), algo_(algo),
        pool_(pool), compaction_(compaction),
        ladder_(std::make_shared<Ladder>()) {
    if (num_vertices < 0) {
      throw std::invalid_argument("AdjacencyBuilder: negative vertex count");
    }
    if (compaction_ == Compaction::kBackground && pool_ == nullptr) {
      // No pool means nothing can host the task; degrade to inline
      // rather than silently never compacting.
      compaction_ = Compaction::kInline;
    }
  }

  // One ladder, one owner: copying would alias the mutable run list.
  // Moves keep vector<AdjacencyBuilder> (the shard array) workable.
  AdjacencyBuilder(const AdjacencyBuilder&) = delete;
  AdjacencyBuilder& operator=(const AdjacencyBuilder&) = delete;
  AdjacencyBuilder(AdjacencyBuilder&&) noexcept = default;
  AdjacencyBuilder& operator=(AdjacencyBuilder&&) noexcept = default;

  /// Destruction is safe while a background compaction is still in
  /// flight: the task owns the ladder via shared_ptr and the pool drains
  /// queued tasks before its own teardown. (The pool must simply outlive
  /// every call into this builder, as for all pool users.)
  ~AdjacencyBuilder() = default;

  index_t num_vertices() const { return n_; }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(ladder_->mu);
    return ladder_->stats;
  }

  /// Live ladder runs. ≤ log₂(batches) + 1 whenever the ladder is
  /// settled — always after an inline-mode `ingest`, and after `drain()`
  /// in background mode (mid-flight the count may transiently exceed the
  /// bound while appends outpace the in-flight merge).
  index_t num_levels() const {
    std::lock_guard<std::mutex> lock(ladder_->mu);
    return static_cast<index_t>(ladder_->runs.size());
  }

  /// Ingest one batch: validate, rethrow any pending background-merge
  /// failure, build the batch's delta CSR (sort-free incidence + SpGEMM,
  /// no ladder lock held), and publish it onto the run list.
  /// Out-of-range endpoints reject the whole batch before any state
  /// changes.
  void ingest(std::span<const graph::Edge> batch) {
    rethrow_pending_error();
    for (const graph::Edge& e : batch) {
      if (e.src < 0 || e.src >= n_ || e.dst < 0 || e.dst >= n_) {
        throw std::out_of_range("AdjacencyBuilder::ingest: edge endpoint "
                                "out of range");
      }
    }
    publish(stage(batch), batch.size());
  }

  /// Edge-list convenience overload.
  void ingest(const std::vector<graph::Edge>& batch) {
    ingest(std::span<const graph::Edge>(batch.data(), batch.size()));
  }

  /// Pin the live run-set: O(log batches) shared_ptr copies under the
  /// ladder lock, then the returned snapshot is traversed with no
  /// further synchronization. See stream/pinned_snapshot.hpp.
  PinnedSnapshot<P> snapshot() const {
    std::vector<std::shared_ptr<const sparse::Csr<value_type>>> pins;
    std::uint64_t epoch;
    {
      std::lock_guard<std::mutex> lock(ladder_->mu);
      pins.reserve(ladder_->runs.size());
      for (const auto& run : ladder_->runs) pins.push_back(run.csr);
      epoch = ladder_->stats.batches;
    }
    return PinnedSnapshot<P>(n_, p_, epoch, std::move(pins));
  }

  /// Materialized snapshot of the maintained adjacency array: one k-way
  /// ⊕-merge of the live runs, oldest first. Byte-identical to
  /// `build_adjacency` / `adjacency_array` over the concatenation of
  /// every ingested batch.
  sparse::Csr<value_type> adjacency() const {
    return snapshot().materialize(pool_);
  }

  /// Block until no background compaction is in flight and no further
  /// one is scheduled (no-op in inline mode). A merge failure ends the
  /// chain too — it then surfaces on the next `ingest()`.
  void drain() const {
    std::unique_lock<std::mutex> lock(ladder_->mu);
    ladder_->cv.wait(lock, [this] { return !ladder_->compacting; });
  }

 private:
  template <typename Q>
    requires algebra::Semiring<Q>
  friend class ShardedBuilder;

  /// One immutable ladder run: the ⊕-fold of `weight` consecutive
  /// non-empty batches.
  struct Run {
    std::shared_ptr<const sparse::Csr<value_type>> csr;
    std::uint64_t weight;
  };

  /// Shared ladder state. Refcounted so background compaction tasks can
  /// outlive the builder object itself; `mu` guards every member.
  struct Ladder {
    mutable std::mutex mu;
    std::condition_variable cv;   ///< signaled when a compaction settles
    std::vector<Run> runs;        ///< oldest first, consecutive intervals
    Stats stats;
    bool compacting = false;      ///< a background merge is in flight
    std::exception_ptr error;     ///< failed background merge, if any
  };

  auto add_fn() const {
    return [p = p_](const value_type& x, const value_type& y) {
      return p.add(x, y);
    };
  }

  void rethrow_pending_error() {
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> lock(ladder_->mu);
      err = std::exchange(ladder_->error, nullptr);
    }
    if (err) std::rethrow_exception(err);
  }

  /// Build a batch's delta adjacency — no ladder state is touched, so
  /// staging runs lock-free (and `ShardedBuilder` stages every shard
  /// before taking its publish lock). Returns nullptr for an empty batch
  /// (the ⊕-identity contribution).
  std::shared_ptr<const sparse::Csr<value_type>> stage(
      std::span<const graph::Edge> batch) const {
    if (batch.empty()) return nullptr;
    graph::Graph g(n_);
    g.edges().assign(batch.begin(), batch.end());
    const auto inc = weighting_ == Weighting::kWeighted
                         ? graph::weighted_incidence_arrays(g, p_, pool_)
                         : graph::incidence_arrays(g, p_, pool_);
    auto delta = graph::adjacency_array(p_, inc, algo_, pool_);
    I2A_ENSURES(delta.is_canonical(),
                "AdjacencyBuilder: staged delta not canonical");
    return std::make_shared<const sparse::Csr<value_type>>(std::move(delta));
  }

  /// Publish a staged delta: append it to the run list and compact per
  /// the configured mode. Inline mode commits runs + stats atomically
  /// only after every merge succeeded (a throwing ⊕ leaves the builder
  /// exactly as before the batch); background mode appends, bumps stats,
  /// and schedules the merge task.
  void publish(std::shared_ptr<const sparse::Csr<value_type>> delta,
               std::size_t batch_edges) {
    const auto delta_nnz = static_cast<std::uint64_t>(
        delta ? delta->nnz() : 0);
    if (compaction_ == Compaction::kInline) {
      publish_inline(std::move(delta), batch_edges, delta_nnz);
      return;
    }
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(ladder_->mu);
      if (delta) ladder_->runs.push_back(Run{std::move(delta), 1});
      ++ladder_->stats.batches;
      ladder_->stats.edges += batch_edges;
      ladder_->stats.delta_entries += delta_nnz;
      task = plan_task_locked(ladder_, pool_, p_);
    }
    // Submitted outside the lock: on a workerless pool the task runs
    // inline, and it must be able to take the ladder lock itself.
    if (task) pool_->submit(std::move(task));
  }

  void publish_inline(std::shared_ptr<const sparse::Csr<value_type>> delta,
                      std::size_t batch_edges, std::uint64_t delta_nnz) {
    // Work on a private copy of the run list (cheap shared_ptr copies):
    // concurrent readers keep pinning the old list mid-merge, and a
    // throwing ⊕ must leave runs and stats untouched.
    std::vector<Run> runs;
    {
      std::lock_guard<std::mutex> lock(ladder_->mu);
      runs = ladder_->runs;
    }
    if (delta) runs.push_back(Run{std::move(delta), 1});
    std::uint64_t compactions = 0;
    std::uint64_t merged_entries = 0;
    for (auto [lo, hi] = compaction_plan(runs); hi > lo;
         std::tie(lo, hi) = compaction_plan(runs)) {
      Run merged = merge_group(runs, lo, hi, p_, pool_);
      merged_entries += static_cast<std::uint64_t>(merged.csr->nnz());
      ++compactions;
      runs.erase(runs.begin() + static_cast<std::ptrdiff_t>(lo + 1),
                 runs.begin() + static_cast<std::ptrdiff_t>(hi));
      runs[lo] = std::move(merged);
    }
    std::lock_guard<std::mutex> lock(ladder_->mu);
    ladder_->runs = std::move(runs);
    ++ladder_->stats.batches;
    ladder_->stats.edges += batch_edges;
    ladder_->stats.delta_entries += delta_nnz;
    ladder_->stats.compactions += compactions;
    ladder_->stats.merged_entries += merged_entries;
  }

  /// The compaction policy: merge the maximal *balanced* suffix — the
  /// longest tail in which every run's weight is ≤ the combined weight
  /// of the runs after it. Returns [lo, hi) over `runs`, empty (hi ==
  /// lo) when nothing qualifies. Settled lists are super-increasing ⇒
  /// ≤ log₂(total weight) + 1 runs, and each entry is remerged O(log)
  /// times — the logarithmic method, async-friendly.
  static std::pair<std::size_t, std::size_t> compaction_plan(
      const std::vector<Run>& runs) {
    if (runs.size() < 2) return {0, 0};
    std::size_t lo = runs.size() - 1;
    std::uint64_t tail = runs[lo].weight;
    while (lo > 0 && runs[lo - 1].weight <= tail) {
      tail += runs[lo - 1].weight;
      --lo;
    }
    if (runs.size() - lo < 2) return {0, 0};
    return {lo, runs.size()};
  }

  /// k-way ⊕-merge of runs[lo, hi), oldest first. Background tasks call
  /// this with pool == nullptr: the merge is pool-size invariant, and a
  /// detached task must not fan back into the pool it occupies.
  static Run merge_group(const std::vector<Run>& runs, std::size_t lo,
                         std::size_t hi, const P& p,
                         util::ThreadPool* pool) {
    std::vector<const sparse::Csr<value_type>*> group;
    group.reserve(hi - lo);
    std::uint64_t weight = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      group.push_back(runs[i].csr.get());
      weight += runs[i].weight;
    }
    auto merged = sparse::merge_add_k(
        group,
        [&p](const value_type& x, const value_type& y) {
          return p.add(x, y);
        },
        pool);
    I2A_ENSURES(merged.is_canonical(),
                "AdjacencyBuilder: compaction produced non-canonical run");
    return Run{std::make_shared<const sparse::Csr<value_type>>(
                   std::move(merged)),
               weight};
  }

  /// Under the ladder lock: if no merge is in flight and a suffix
  /// qualifies, mark one in flight and return the task that performs it.
  /// The task owns the ladder via shared_ptr (it may outlive the
  /// builder), captures the group's run handles by value (the runs are
  /// immutable; list indices stay valid because the writer only appends
  /// and only this task replaces), and re-plans on completion so carry
  /// chains keep compacting without writer involvement.
  static std::function<void()> plan_task_locked(std::shared_ptr<Ladder> lad,
                                                util::ThreadPool* pool, P p) {
    if (lad->compacting) return nullptr;
    const auto [lo, hi] = compaction_plan(lad->runs);
    if (hi <= lo) return nullptr;
    lad->compacting = true;
    std::vector<Run> group(lad->runs.begin() + static_cast<std::ptrdiff_t>(lo),
                           lad->runs.begin() + static_cast<std::ptrdiff_t>(hi));
    return [lad = std::move(lad), pool, p = std::move(p),
            group = std::move(group), lo, hi]() mutable {
      std::function<void()> next;
      try {
        Run merged = merge_group(group, 0, group.size(), p, nullptr);
        std::lock_guard<std::mutex> lock(lad->mu);
        lad->runs.erase(
            lad->runs.begin() + static_cast<std::ptrdiff_t>(lo + 1),
            lad->runs.begin() + static_cast<std::ptrdiff_t>(hi));
        lad->runs[lo] = std::move(merged);
        ++lad->stats.compactions;
        lad->stats.merged_entries +=
            static_cast<std::uint64_t>(lad->runs[lo].csr->nnz());
        lad->compacting = false;
        next = plan_task_locked(lad, pool, p);
        lad->cv.notify_all();
      } catch (...) {
        std::lock_guard<std::mutex> lock(lad->mu);
        lad->error = std::current_exception();
        lad->compacting = false;
        lad->cv.notify_all();
      }
      if (next) pool->submit(std::move(next));
    };
  }

  index_t n_;
  P p_;
  Weighting weighting_;
  sparse::SpGemmAlgo algo_;
  util::ThreadPool* pool_;
  Compaction compaction_;
  std::shared_ptr<Ladder> ladder_;
};

}  // namespace i2a::stream
