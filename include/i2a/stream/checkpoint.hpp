#pragma once
/// \file stream/checkpoint.hpp
/// \brief Run-level checkpoints for the streaming builder: serialize the
///        settled run-list + epoch so recovery replays only the WAL
///        suffix (DESIGN.md §12).
///
/// A checkpoint is one file, `checkpoint-<epoch>.ckpt`, holding a header
/// frame (format version, epoch, manifest, total run count) followed by
/// one frame per ladder run — shard-tagged, so a ShardedBuilder's
/// per-shard ladders round-trip exactly. Every frame carries the usual
/// CRC32C (util/io.hpp), and the file becomes visible atomically:
/// written to a `.tmp` name, fsynced, renamed into place, parent
/// directory fsynced. A crash at any point leaves either the previous
/// checkpoint set or the previous set plus one complete new file —
/// never a half-visible checkpoint (a stray `.tmp` is ignored by the
/// loader and deleted by the next GC pass).
///
/// Because runs are immutable and refcounted, the background checkpoint
/// task serializes a *pinned* copy of the run handles while the writer
/// keeps ingesting — the same epoch-pinning discipline snapshots use.
/// Recovery loads the newest fully-valid checkpoint (a corrupt one
/// falls back to the next older; a *valid but mismatched-manifest* one
/// is refused with RecoveryError) and then replays WAL batches with
/// epoch greater than the checkpoint's.
///
/// Failpoint: `checkpoint.write` fires between the header and the run
/// frames of a checkpoint under construction — the injection sweep
/// proves a failed checkpoint deletes its temp file, reports through
/// the deferred-error channel, and never shadows an older good
/// checkpoint.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "sparse/csr.hpp"
#include "stream/wal.hpp"
#include "util/contract.hpp"
#include "util/failpoint.hpp"
#include "util/io.hpp"

namespace i2a::stream {

/// One serialized ladder run: the immutable CSR plus its ladder weight
/// (number of batches it covers), per shard.
template <typename V>
struct CheckpointRun {
  std::shared_ptr<const sparse::Csr<V>> csr;
  std::uint64_t weight = 0;
};

/// A fully parsed checkpoint.
template <typename V>
struct LoadedCheckpoint {
  std::uint64_t epoch = 0;
  /// Outer index = shard (size == manifest.shard_count), inner =
  /// oldest-first runs, matching the ladder's order.
  std::vector<std::vector<CheckpointRun<V>>> shards;
  /// Per-shard ingested-edge counters at `epoch`, so recovery restores
  /// `stats.edges` exactly (size == manifest.shard_count).
  std::vector<std::uint64_t> edges;
};

inline std::string checkpoint_name(std::uint64_t epoch) {
  std::string digits = std::to_string(epoch);
  I2A_EXPECTS(digits.size() <= 16, "checkpoint: epoch too large");
  return "checkpoint-" + std::string(16 - digits.size(), '0') + digits +
         ".ckpt";
}

/// Parse `checkpoint-<epoch>.ckpt`; nullopt for anything else (including
/// `.tmp` residue).
inline std::optional<std::uint64_t> parse_checkpoint_name(
    std::string_view name) {
  constexpr std::string_view prefix = "checkpoint-";
  constexpr std::string_view suffix = ".ckpt";
  if (name.size() != prefix.size() + 16 + suffix.size()) return std::nullopt;
  if (name.substr(0, prefix.size()) != prefix) return std::nullopt;
  if (name.substr(prefix.size() + 16) != suffix) return std::nullopt;
  std::uint64_t epoch = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const char c = name[prefix.size() + i];
    if (c < '0' || c > '9') return std::nullopt;
    epoch = epoch * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return epoch;
}

/// Write `checkpoint-<epoch>.ckpt` atomically (tmp + fsync + rename +
/// dir fsync). `shards[s]` is shard s's oldest-first run list; run CSRs
/// are read but not retained. Throws util::IoError / FailpointError on
/// failure, after deleting the temp file.
template <typename V>
std::string write_checkpoint(
    const std::string& dir, const WalManifest& manifest, std::uint64_t epoch,
    const std::vector<std::vector<CheckpointRun<V>>>& shards,
    const std::vector<std::uint64_t>& edges_per_shard) {
  I2A_EXPECTS(shards.size() == manifest.shard_count,
              "checkpoint: run lists do not match the manifest shard count");
  I2A_EXPECTS(edges_per_shard.size() == manifest.shard_count,
              "checkpoint: edge counters do not match the shard count");
  std::uint64_t total_runs = 0;
  for (const auto& runs : shards) total_runs += runs.size();

  const std::string final_path = dir + "/" + checkpoint_name(epoch);
  const std::string tmp_path = final_path + ".tmp";
  if (util::file_exists(tmp_path)) util::remove_file(tmp_path);
  try {
    util::File f = util::File::create_append(tmp_path);
    {
      util::ByteWriter w;
      w.u32(kFrameCheckpointHeader);
      w.u32(kWalFormatVersion);
      w.u64(epoch);
      encode_manifest(w, manifest);
      for (const std::uint64_t e : edges_per_shard) w.u64(e);
      w.u64(total_runs);
      util::write_frame(f, w.buffer());
    }
    I2A_FAILPOINT("checkpoint.write");
    for (std::size_t s = 0; s < shards.size(); ++s) {
      for (const CheckpointRun<V>& run : shards[s]) {
        const sparse::Csr<V>& csr = *run.csr;
        util::ByteWriter w;
        w.u32(kFrameCheckpointRun);
        w.u32(static_cast<std::uint32_t>(s));
        w.u64(run.weight);
        w.u64(static_cast<std::uint64_t>(csr.nrows()));
        w.u64(static_cast<std::uint64_t>(csr.ncols()));
        w.u64(static_cast<std::uint64_t>(csr.nnz()));
        for (const index_t v : csr.row_ptr()) w.i64(v);
        for (const index_t v : csr.cols()) w.i64(v);
        // Values ride as raw bit patterns; the manifest's algebra tag
        // pins sizeof(V), so a mismatched instantiation can't misread
        // them.
        w.bytes(csr.vals().data(), csr.vals().size() * sizeof(V));
        util::write_frame(f, w.buffer());
      }
    }
    f.sync();
    f.close();
  } catch (...) {
    if (util::file_exists(tmp_path)) util::remove_file(tmp_path);
    throw;
  }
  util::rename_file(tmp_path, final_path);
  util::fsync_dir(dir);
  return final_path;
}

/// Parse one checkpoint file completely. Throws RecoveryError on any
/// structural problem (torn frame, bad counts, manifest mismatch — the
/// caller distinguishes mismatch by catching ManifestMismatch below).
struct ManifestMismatch final : RecoveryError {
  explicit ManifestMismatch(const std::string& what) : RecoveryError(what) {}
};

template <typename V>
LoadedCheckpoint<V> parse_checkpoint(const std::string& path,
                                     const WalManifest& expected) {
  const std::vector<unsigned char> image = util::read_file(path);
  util::FrameReader reader(image);
  std::vector<unsigned char> payload;
  const auto corrupt = [&](const std::string& what) -> RecoveryError {
    return RecoveryError(what + " in checkpoint '" + path + "'");
  };
  try {
    if (reader.next(payload) != util::FrameStatus::kOk) {
      throw corrupt("unreadable header frame");
    }
    util::ByteReader r(payload);
    if (r.u32() != kFrameCheckpointHeader) {
      throw corrupt("first frame is not a checkpoint header");
    }
    if (const std::uint32_t v = r.u32(); v != kWalFormatVersion) {
      throw corrupt("format version " + std::to_string(v));
    }
    LoadedCheckpoint<V> out;
    out.epoch = r.u64();
    if (const WalManifest m = decode_manifest(r); m != expected) {
      throw ManifestMismatch("manifest mismatch in '" + path +
                             "': checkpoint has " + m.describe() +
                             ", builder is " + expected.describe());
    }
    out.edges.reserve(expected.shard_count);
    for (std::uint32_t s = 0; s < expected.shard_count; ++s) {
      out.edges.push_back(r.u64());
    }
    const std::uint64_t total_runs = r.u64();
    out.shards.resize(expected.shard_count);
    for (std::uint64_t i = 0; i < total_runs; ++i) {
      if (reader.next(payload) != util::FrameStatus::kOk) {
        throw corrupt("missing run frame " + std::to_string(i));
      }
      util::ByteReader rr(payload);
      if (rr.u32() != kFrameCheckpointRun) {
        throw corrupt("unexpected frame type for run " + std::to_string(i));
      }
      const std::uint32_t shard = rr.u32();
      if (shard >= expected.shard_count) {
        throw corrupt("run frame names shard " + std::to_string(shard));
      }
      CheckpointRun<V> run;
      run.weight = rr.u64();
      const std::uint64_t nrows = rr.u64();
      const std::uint64_t ncols = rr.u64();
      const std::uint64_t nnz = rr.u64();
      if (nrows != expected.num_vertices || ncols != expected.num_vertices) {
        throw corrupt("run dimensions disagree with manifest");
      }
      if (nnz > rr.remaining() / 8) throw corrupt("run nnz too large");
      const std::uint64_t want =
          (nrows + 1 + nnz) * 8 + nnz * sizeof(V);
      if (rr.remaining() != want) {
        throw corrupt("run frame size does not match its counts");
      }
      std::vector<index_t> row_ptr;
      row_ptr.reserve(nrows + 1);
      for (std::uint64_t k = 0; k <= nrows; ++k) row_ptr.push_back(rr.i64());
      std::vector<index_t> cols;
      cols.reserve(nnz);
      for (std::uint64_t k = 0; k < nnz; ++k) cols.push_back(rr.i64());
      std::vector<V> vals(nnz);
      rr.raw(vals.data(), nnz * sizeof(V));
      run.csr = std::make_shared<const sparse::Csr<V>>(
          static_cast<index_t>(nrows), static_cast<index_t>(ncols),
          std::move(row_ptr), std::move(cols), std::move(vals));
      out.shards[shard].push_back(std::move(run));
    }
    if (reader.next(payload) != util::FrameStatus::kEnd) {
      throw corrupt("trailing bytes after the declared run count");
    }
    return out;
  } catch (const util::IoError& e) {
    // Payload underruns (and any read failure) mean a malformed file.
    throw RecoveryError("malformed checkpoint '" + path + "': " + e.what());
  }
}

/// Load the newest fully-valid checkpoint in `dir`, or nullopt if none
/// exists (recovery then replays the WAL from epoch 0). A corrupt
/// newest checkpoint falls back to the next older one; a *valid* file
/// whose manifest disagrees is refused (ManifestMismatch propagates) —
/// that is operator error, not crash residue.
template <typename V>
std::optional<LoadedCheckpoint<V>> load_newest_checkpoint(
    const std::string& dir, const WalManifest& expected) {
  std::vector<std::string> names;
  for (const std::string& name : util::list_dir(dir)) {
    if (parse_checkpoint_name(name)) names.push_back(name);
  }
  // list_dir sorts ascending and names zero-pad the epoch: walk newest
  // first.
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    try {
      return parse_checkpoint<V>(dir + "/" + *it, expected);
    } catch (const ManifestMismatch&) {
      throw;
    } catch (const RecoveryError&) {
      continue;  // corrupt: fall back to the next older checkpoint
    }
  }
  return std::nullopt;
}

/// Throw std::invalid_argument if `dir` already holds WAL segments or
/// checkpoints: a *fresh* builder constructing over recoverable state
/// would be silent data loss — the caller should use `recover()`.
inline void require_no_durable_state(const std::string& dir) {
  for (const std::string& name : util::list_dir(dir)) {
    if (parse_wal_segment_name(name) || parse_checkpoint_name(name)) {
      throw std::invalid_argument(
          "i2a: durable state already present in '" + dir +
          "'; construct via recover() instead of a fresh builder");
    }
  }
}

/// Garbage-collect: delete checkpoints older than `keep_epoch` and any
/// stray `.tmp` residue. Called after a new checkpoint lands.
inline void gc_checkpoints(const std::string& dir, std::uint64_t keep_epoch) {
  bool removed = false;
  for (const std::string& name : util::list_dir(dir)) {
    const auto epoch = parse_checkpoint_name(name);
    const bool stale_ckpt = epoch && *epoch < keep_epoch;
    const bool tmp_residue =
        name.size() > 4 && name.substr(name.size() - 4) == ".tmp";
    if (stale_ckpt || tmp_residue) {
      util::remove_file(dir + "/" + name);
      removed = true;
    }
  }
  if (removed) util::fsync_dir(dir);
}

}  // namespace i2a::stream
