#pragma once
/// \file stream/pinned_snapshot.hpp
/// \brief Epoch-pinned, immutable view of a streaming builder's run-set:
///        the reader half of the concurrent serving core.
///
/// A `PinnedSnapshot` is what `AdjacencyBuilder::snapshot()` hands a
/// query thread: the refcounted set of immutable CSR runs that were live
/// at pin time (oldest first), plus the batch count they cover — its
/// *epoch*. Pinning is O(live runs) shared_ptr copies under a lock held
/// for pointer copies only; after that the reader touches no builder
/// state and takes no locks ever again. The writer keeps appending and
/// compacting; runs it retires stay alive exactly until the last
/// snapshot pinning them is destroyed (the shared_ptr refcount IS the
/// epoch drain — RCU-style reclamation with no grace-period machinery).
///
/// Two read paths:
///
///   * `materialize()` — one k-way ⊕-merge (sparse/merge.hpp) of the
///     pinned runs into a standalone CSR, byte-identical to what a
///     serial rebuild over the covered batch prefix would produce. Right
///     for algorithms that sweep all rows repeatedly (PageRank,
///     triangles).
///   * `fold_row()` / `for_each_in_row()` — merge one row across the
///     pinned runs on the fly with the same cursor-frontier kernel the
///     materializing merge uses, emitting (column, ⊕-folded value) in
///     strictly increasing column order. Right for traversal algorithms
///     that touch a sparse subset of rows (BFS) — no O(nnz) copy, no
///     lock, no writer interaction.
///
/// Both paths fold equal columns in run order = batch-age order, so a
/// snapshot is semantically exactly the adjacency array of the batch
/// prefix it pins (Theorem II.1 applied to the concatenation of those
/// batches; the ⊕-regrouping across runs is sound because ⊕ is
/// associative — the `Semiring` contract the builder already requires).

#include <cstdint>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "algebra/concepts.hpp"
#include "core/types.hpp"
#include "sparse/csr.hpp"
#include "sparse/merge.hpp"
#include "util/thread_pool.hpp"

namespace i2a::stream {

template <typename P>
  requires algebra::Semiring<P>
class PinnedSnapshot {
 public:
  using value_type = typename P::value_type;
  /// Reusable cursor scratch for `fold_row` — allocate once per reader,
  /// pass to every row fold (the BFS port does exactly this).
  using RowScratch = sparse::detail::MergeScratch<value_type>;

  /// Pins `runs` (oldest first; all shape n × n). Built by
  /// `AdjacencyBuilder::snapshot()` / `ShardedBuilder::snapshot()`;
  /// public so tests and custom serving layers can assemble run-sets of
  /// their own. `pending_error` is the builder's oldest undelivered
  /// background-compaction failure at pin time, if any (see
  /// `pending_error()`).
  PinnedSnapshot(index_t num_vertices, P p, std::uint64_t batches,
                 std::vector<std::shared_ptr<const sparse::Csr<value_type>>>
                     runs,
                 std::exception_ptr pending_error = nullptr)
      : n_(num_vertices), p_(std::move(p)), batches_(batches),
        owners_(std::move(runs)), pending_error_(std::move(pending_error)) {
    ptrs_.reserve(owners_.size());
    for (const auto& r : owners_) ptrs_.push_back(r.get());
  }

  index_t num_vertices() const { return n_; }
  /// The epoch: how many ingested batches (empty ones included) this
  /// snapshot covers — its contents are exactly the ⊕-fold of batches
  /// [0, batches()).
  std::uint64_t batches() const { return batches_; }
  std::size_t num_runs() const { return owners_.size(); }
  bool empty() const { return owners_.empty(); }
  const P& pair() const { return p_; }

  /// Observability for degraded snapshots: the oldest background-merge
  /// failure the builder had not yet delivered when this snapshot was
  /// pinned, or nullptr. A *peek*, not a consume — the writer still
  /// receives the failure exactly once through `drain()`/`ingest()`; the
  /// snapshot itself is always valid and readable (its runs cover the
  /// full ingested prefix; only compaction — freshness of the run
  /// *layout*, not of the data — is behind). Readers that care can
  /// `std::rethrow_exception` it or merely flag degraded service.
  const std::exception_ptr& pending_error() const { return pending_error_; }

  /// The pinned run handles, oldest first — what `ShardedBuilder`
  /// concatenates across shards.
  const std::vector<std::shared_ptr<const sparse::Csr<value_type>>>&
  run_handles() const {
    return owners_;
  }

  RowScratch row_scratch() const { return RowScratch{}; }

  /// Merge row `r` across the pinned runs and call `emit(col, value)`
  /// once per stored column, strictly increasing, values ⊕-folded in
  /// batch-age order. Lock-free; safe from any number of threads as long
  /// as each uses its own `scratch`.
  template <typename Emit>
  void fold_row(index_t r, RowScratch& scratch, const Emit& emit) const {
    if (ptrs_.empty()) return;
    sparse::detail::merge_row_k(
        ptrs_, r, scratch,
        [this](const value_type& x, const value_type& y) {
          return p_.add(x, y);
        },
        true, emit);
  }

  /// Convenience `fold_row` with throwaway scratch — fine for one-off
  /// probes; traversal loops should hold a `RowScratch` instead.
  template <typename Emit>
  void for_each_in_row(index_t r, const Emit& emit) const {
    RowScratch scratch;
    fold_row(r, scratch, emit);
  }

  /// One k-way ⊕-merge of the pinned runs into a standalone CSR —
  /// byte-identical to a serial rebuild over the covered batch prefix
  /// (pool-size invariant, pinned by test_serve / test_stream).
  sparse::Csr<value_type> materialize(util::ThreadPool* pool = nullptr) const {
    if (ptrs_.empty()) {
      return sparse::Csr<value_type>(
          n_, n_, std::vector<index_t>(static_cast<std::size_t>(n_) + 1, 0),
          {}, {});
    }
    return sparse::merge_add_k(
        ptrs_,
        [this](const value_type& x, const value_type& y) {
          return p_.add(x, y);
        },
        pool);
  }

 private:
  index_t n_;
  P p_;
  std::uint64_t batches_;
  /// The pins: each handle keeps its run alive past any writer-side
  /// retirement until this snapshot drops.
  std::vector<std::shared_ptr<const sparse::Csr<value_type>>> owners_;
  std::vector<const sparse::Csr<value_type>*> ptrs_;  ///< parallel to owners_
  std::exception_ptr pending_error_;  ///< peeked builder failure, if any
};

}  // namespace i2a::stream
