#pragma once
/// \file sparse/coo.hpp
/// \brief Coordinate-format staging buffer for sparse assembly.
///
/// COO is the append-friendly format: generators and the incidence
/// builders `push` entries in whatever order they discover them, then hand
/// the buffer to `Csr::from_coo` which sorts, deduplicates, and compresses.

#include <vector>

#include "core/types.hpp"

namespace i2a::sparse {

template <typename T>
class Coo {
 public:
  struct Entry {
    index_t row;
    index_t col;
    T val;
  };

  Coo(index_t nrows, index_t ncols) : nrows_(nrows), ncols_(ncols) {}

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  std::size_t nnz() const { return entries_.size(); }

  void push(index_t row, index_t col, T val) {
    entries_.push_back(Entry{row, col, val});
  }

  std::vector<Entry>& entries() { return entries_; }
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  index_t nrows_;
  index_t ncols_;
  std::vector<Entry> entries_;
};

}  // namespace i2a::sparse
