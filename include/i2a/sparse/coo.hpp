#pragma once
/// \file sparse/coo.hpp
/// \brief Coordinate-format staging buffer for sparse assembly.
///
/// COO is the append-friendly format: generators and bulk loaders `push`
/// entries in whatever order they discover them, then hand the buffer to
/// `Csr::from_coo` which groups, orders, deduplicates, and compresses.
/// (Incidence arrays no longer stage through COO at all — their one-
/// nonzero-per-row structure admits a direct CSR build; see
/// graph/incidence.hpp.)

#include <cassert>
#include <vector>

#include "core/types.hpp"

namespace i2a::sparse {

template <typename T>
class Coo {
 public:
  struct Entry {
    index_t row;
    index_t col;
    T val;
  };

  Coo(index_t nrows, index_t ncols) : nrows_(nrows), ncols_(ncols) {}

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  std::size_t nnz() const { return entries_.size(); }

  /// Pre-size the entry buffer; bulk producers (generators, workload
  /// builders) call this exactly once up front so staging costs one
  /// allocation total.
  void reserve(std::size_t n) { entries_.reserve(n); }

  void push(index_t row, index_t col, T val) {
    assert(row >= 0 && row < nrows_ && "Coo::push: row out of shape");
    assert(col >= 0 && col < ncols_ && "Coo::push: col out of shape");
    entries_.push_back(Entry{row, col, val});
  }

  std::vector<Entry>& entries() { return entries_; }
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  index_t nrows_;
  index_t ncols_;
  std::vector<Entry> entries_;
};

}  // namespace i2a::sparse
