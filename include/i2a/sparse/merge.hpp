#pragma once
/// \file sparse/merge.hpp
/// \brief Parallel semiring CSR ⊕-merge: fold k same-shape CSR arrays
///        into one, entrywise, with the caller's ⊕ — the kernel behind
///        streaming adjacency maintenance (stream/adjacency_builder.hpp).
///
/// The GraphBLAS framing (Kepner et al., 1606.05790) treats a sparse
/// update as ⊕-accumulation into an existing array: C = A ⊕ ΔA. When ⊕
/// is the fold of a conforming operator pair (Theorem II.1's hypothesis)
/// the merged array is exactly the adjacency array of the concatenated
/// edge lists, because the theorem's fold over parallel edges is
/// associative — folding per batch and then folding the folds is the
/// same as folding everything at once. The merge itself never needs ⊗:
/// each input row is already a folded adjacency row, so only ⊕ appears.
///
/// Engine shape — the same two-pass scheme as the SpGEMM and assembly
/// engines (sparse/spgemm.hpp, sparse/csr.hpp):
///
///   1. **count** — row chunks walk the k sorted input rows with a
///      cursor frontier (chunk-id-indexed scratch reused across both
///      passes via `ThreadPool::parallel_for_chunks`) and record each
///      output row's merged size;
///   2. **stitch** — one serial prefix sum turns the counts into the
///      final row pointer;
///   3. **scatter + fold** — the same chunk decomposition re-walks the
///      cursors and writes every merged entry straight into its final
///      slot, folding equal columns with ⊕ in *run order* (runs[0]
///      first). Run order is how callers encode batch age, which is what
///      keeps a non-commutative or FP ⊕ bitwise-reproducible.
///
/// Every row lands at a prefix-sum-determined offset and each row's
/// merge is independent and deterministic, so the output is
/// byte-identical across pool sizes (serial included). Exceptions thrown
/// by ⊕ in a worker chunk propagate to the caller (the pool captures and
/// rethrows the first one); the partially built output is discarded.
///
/// Definition I.5 (stored zeros are absent) is an opt-in knob: passing
/// `drop_zero` omits output entries whose *folded* value equals the zero
/// element, so an explicit stored zero never survives a merge. The
/// default keeps all stored entries, matching what the SpGEMM engine
/// produces — for conforming pairs (zero-sum-free carrier) a fold of
/// nonzeros can never manufacture a zero, so the adjacency-maintenance
/// path needs no dropping to stay byte-identical to a full rebuild.

#include <algorithm>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "algebra/concepts.hpp"
#include "core/types.hpp"
#include "sparse/csr.hpp"
#include "util/contract.hpp"
#include "util/failpoint.hpp"
#include "util/thread_pool.hpp"

namespace i2a::sparse {

namespace detail {

/// Per-chunk cursor frontier for the k-way row merge, reused across every
/// row of the chunk and across the count and scatter passes (which index
/// it by the same chunk id).
template <typename T>
struct MergeScratch {
  std::vector<const index_t*> cols;  ///< run r's row cursor (cols)
  std::vector<const T*> vals;        ///< run r's row cursor (vals)
  std::vector<index_t> len;          ///< entries left in run r's row
};

/// Walk row `r` of all runs simultaneously and call
/// `emit(col, folded_value)` once per merged column, strictly increasing.
/// Folding visits runs in index order — runs[0] ⊕ runs[1] ⊕ … — which is
/// the age order callers rely on. `need_vals` lets the count pass skip
/// value reads entirely when no zero-dropping is requested.
template <typename T, typename Add, typename Emit>
void merge_row_k(const std::vector<const Csr<T>*>& runs, index_t r,
                 MergeScratch<T>& s, const Add& add, bool need_vals,
                 const Emit& emit) {
  const std::size_t k = runs.size();
  s.cols.resize(k);
  s.vals.resize(k);
  s.len.resize(k);
  index_t live = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const auto cs = runs[i]->row_cols(r);
    s.cols[i] = cs.data();
    s.vals[i] = runs[i]->row_vals(r).data();
    s.len[i] = static_cast<index_t>(cs.size());
    live += s.len[i];
  }
  while (live > 0) {
    // Frontier minimum: the next merged column.
    index_t mc = -1;
    for (std::size_t i = 0; i < k; ++i) {
      if (s.len[i] > 0 && (mc < 0 || *s.cols[i] < mc)) mc = *s.cols[i];
    }
    // Fold every run holding `mc`, oldest (lowest index) first.
    bool open = false;
    T acc{};
    for (std::size_t i = 0; i < k; ++i) {
      if (s.len[i] > 0 && *s.cols[i] == mc) {
        if (need_vals) {
          acc = open ? add(acc, *s.vals[i]) : *s.vals[i];
        }
        open = true;
        ++s.cols[i];
        ++s.vals[i];
        --s.len[i];
        --live;
      }
    }
    emit(mc, acc);
  }
}

}  // namespace detail

/// C = runs[0] ⊕ runs[1] ⊕ … ⊕ runs[k-1], entrywise, all runs the same
/// shape. `add(a, b)` is ⊕; equal columns fold in run order, so callers
/// encoding batch age as run order get the same fold a single-shot build
/// would perform. `drop_zero`, when non-null, omits output entries whose
/// folded value equals `*drop_zero` (Definition I.5). Output is
/// byte-identical across pool sizes.
template <typename T, typename Add>
Csr<T> merge_add_k(const std::vector<const Csr<T>*>& runs, const Add& add,
                   util::ThreadPool* pool = nullptr,
                   const T* drop_zero = nullptr) {
  if (runs.empty()) {
    throw std::invalid_argument("merge_add_k: no input runs");
  }
  const index_t nrows = runs[0]->nrows();
  const index_t ncols = runs[0]->ncols();
  for (const auto* m : runs) {
    if (m->nrows() != nrows || m->ncols() != ncols) {
      throw std::invalid_argument("merge_add_k: run shape mismatch");
    }
    I2A_EXPECTS(m->is_canonical(), "merge_add_k: input run not canonical");
  }
  const bool dropping = drop_zero != nullptr;
  if (runs.size() == 1 && !dropping) return *runs[0];  // fold of one

  const bool parallel = pool != nullptr && pool->size() > 1 && nrows > 0;
  const index_t nchunks =
      parallel ? pool->num_chunks(nrows) : (nrows > 0 ? 1 : 0);
  // Injection site: the count pass's scratch/frontier allocations. A
  // fire here leaves every input run untouched — the merge has produced
  // nothing yet (DESIGN.md §10).
  I2A_FAILPOINT("merge.count.scratch");
  std::vector<detail::MergeScratch<T>> scratch(
      static_cast<std::size_t>(nchunks));

  // Pass 1 (count): per-row merged sizes, written into row_ptr[r + 1]
  // (rows are disjoint across chunks, so no histograms are needed —
  // unlike the COO scatter, a row merge has exactly one producer). The
  // count only touches values when zero-dropping makes sizes
  // value-dependent — that path deliberately folds twice (once to size,
  // once to write) in exchange for exact sizing with no compaction
  // copy; the default no-drop path, the adjacency-maintenance hot path,
  // folds exactly once.
  std::vector<index_t> row_ptr(static_cast<std::size_t>(nrows) + 1, 0);
  detail::run_chunked(
      pool, parallel, nrows, [&](index_t chunk, index_t lo, index_t hi) {
        auto& s = scratch[static_cast<std::size_t>(chunk)];
        for (index_t r = lo; r < hi; ++r) {
          index_t cnt = 0;
          detail::merge_row_k(runs, r, s, add, dropping,
                              [&](index_t, const T& v) {
                                if (!dropping || !(v == *drop_zero)) ++cnt;
                              });
          row_ptr[static_cast<std::size_t>(r) + 1] = cnt;
        }
      });

  // Stitch: one serial prefix sum sizes the output exactly.
  for (index_t r = 0; r < nrows; ++r) {
    row_ptr[static_cast<std::size_t>(r) + 1] +=
        row_ptr[static_cast<std::size_t>(r)];
  }
  // Injection site: the scatter pass's output allocation — the largest
  // single allocation a compaction makes, so the canonical place an
  // out-of-memory failure lands mid-merge. A fire discards only the
  // partially built output; the input runs stay live and pinned.
  I2A_FAILPOINT("merge.scatter.alloc");
  std::vector<index_t> cols(static_cast<std::size_t>(row_ptr.back()));
  std::vector<T> vals(static_cast<std::size_t>(row_ptr.back()));

  // Pass 2 (scatter + fold): same chunk decomposition, same scratch,
  // entries written straight into their final slots.
  detail::run_chunked(
      pool, parallel, nrows, [&](index_t chunk, index_t lo, index_t hi) {
        auto& s = scratch[static_cast<std::size_t>(chunk)];
        for (index_t r = lo; r < hi; ++r) {
          auto w = static_cast<std::size_t>(
              row_ptr[static_cast<std::size_t>(r)]);
          detail::merge_row_k(runs, r, s, add, true,
                              [&](index_t c, const T& v) {
                                if (dropping && v == *drop_zero) return;
                                cols[w] = c;
                                vals[w] = v;
                                ++w;
                              });
          I2A_ASSERT(w == static_cast<std::size_t>(
                              row_ptr[static_cast<std::size_t>(r) + 1]),
                     "merge_add_k: scatter count disagrees with count pass");
        }
      });

  Csr<T> out(nrows, ncols, std::move(row_ptr), std::move(cols),
             std::move(vals));
  I2A_ENSURES(out.is_canonical(), "merge_add_k: non-canonical merge");
  return out;
}

/// Refcounted-run overload: the shape `PinnedSnapshot` and the ladder
/// hold runs in. The handles pin the runs for the duration of the merge;
/// the fold itself is identical to the raw-pointer overload.
// i2a-lint: allow(kernel-entry-expects): forwarding overload — the
// kernel-boundary contract is checked by the raw-pointer kernel it
// immediately calls.
template <typename T, typename Add>
Csr<T> merge_add_k(
    const std::vector<std::shared_ptr<const Csr<T>>>& runs, const Add& add,
    util::ThreadPool* pool = nullptr, const T* drop_zero = nullptr) {
  std::vector<const Csr<T>*> ptrs;
  ptrs.reserve(runs.size());
  for (const auto& r : runs) ptrs.push_back(r.get());
  return merge_add_k<T, Add>(ptrs, add, pool, drop_zero);
}

/// Two-run convenience: C = a ⊕ b (a folds first — a is the *older*
/// array when maintaining an adjacency).
template <typename T, typename Add>
Csr<T> merge_add(const Csr<T>& a, const Csr<T>& b, const Add& add,
                 util::ThreadPool* pool = nullptr,
                 const T* drop_zero = nullptr) {
  return merge_add_k(std::vector<const Csr<T>*>{&a, &b}, add, pool,
                     drop_zero);
}

/// Operator-pair convenience: ⊕ is `p.add`, the same fold Theorem II.1's
/// construction applies to parallel edges. Only the ⊕ contract is
/// required — a merge never touches ⊗ — so the constraint is
/// `CommutativeMonoidAdd`, not the full `Semiring`.
template <typename P>
  requires algebra::CommutativeMonoidAdd<P>
Csr<typename P::value_type> merge(
    const P& p, const Csr<typename P::value_type>& a,
    const Csr<typename P::value_type>& b, util::ThreadPool* pool = nullptr) {
  using T = typename P::value_type;
  return merge_add(
      a, b, [&p](const T& x, const T& y) { return p.add(x, y); }, pool);
}

/// Serial oracle for the differential tests (the `from_coo_reference`
/// pattern): per row, concatenate the runs' entries in run order, stable
/// sort by column, fold left. Deliberately shares no code with the
/// engine.
template <typename T, typename Add>
Csr<T> merge_add_reference(const std::vector<const Csr<T>*>& runs,
                           const Add& add, const T* drop_zero = nullptr) {
  if (runs.empty()) {
    throw std::invalid_argument("merge_add_reference: no input runs");
  }
  const index_t nrows = runs[0]->nrows();
  const index_t ncols = runs[0]->ncols();
  std::vector<index_t> row_ptr(static_cast<std::size_t>(nrows) + 1, 0);
  std::vector<index_t> cols;
  std::vector<T> vals;
  std::vector<std::pair<index_t, T>> buf;
  for (index_t r = 0; r < nrows; ++r) {
    buf.clear();
    for (const auto* m : runs) {
      const auto cs = m->row_cols(r);
      const auto vs = m->row_vals(r);
      for (std::size_t i = 0; i < cs.size(); ++i) {
        buf.emplace_back(cs[i], vs[i]);
      }
    }
    std::stable_sort(
        buf.begin(), buf.end(),
        [](const auto& x, const auto& y) { return x.first < y.first; });
    for (std::size_t i = 0; i < buf.size();) {
      T acc = buf[i].second;
      std::size_t j = i + 1;
      for (; j < buf.size() && buf[j].first == buf[i].first; ++j) {
        acc = add(acc, buf[j].second);
      }
      if (drop_zero == nullptr || !(acc == *drop_zero)) {
        cols.push_back(buf[i].first);
        vals.push_back(acc);
        ++row_ptr[static_cast<std::size_t>(r) + 1];
      }
      i = j;
    }
  }
  for (index_t r = 0; r < nrows; ++r) {
    row_ptr[static_cast<std::size_t>(r) + 1] +=
        row_ptr[static_cast<std::size_t>(r)];
  }
  return Csr<T>(nrows, ncols, std::move(row_ptr), std::move(cols),
                std::move(vals));
}

}  // namespace i2a::sparse
