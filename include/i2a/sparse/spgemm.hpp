#pragma once
/// \file sparse/spgemm.hpp
/// \brief Two-pass sparse general matrix-matrix multiply over an
///        arbitrary operator pair ⊕.⊗: a symbolic pass sizes every output
///        row, a prefix sum stitches the final CSR arrays once, and a
///        numeric pass writes each row directly into its final slot.
///
/// All kernels implement the *sparse shortcut* semantics: only
/// stored⊗stored terms enter the ⊕ fold. By Theorem II.1 this equals the
/// full fold whenever the pair conforms (zero is an annihilator, the
/// carrier is zero-sum-free and has no zero divisors) — the seven paper
/// pairs all qualify.
///
/// Engine shape (the top ROADMAP perf item, now retired). The symbolic
/// strategy is per algorithm — exact two-pass where counting is cheap
/// relative to the numeric kernel, a fused chunk-slab pass where an
/// exact count would repeat the whole kernel:
///
///   kHash / kAuto — exact two-pass. Symbolic: epoch-stamped
///               open-addressing distinct count per row (no O(ncols)
///               arrays); kAuto also records flops and picks a kernel
///               per row from the (flops, nnz) estimates. One prefix sum
///               sizes the final arrays; the numeric pass writes each
///               row directly into its final slot.
///   kGustavson / kHeap — fused chunk-slab pass: the dense-accumulator
///               scatter (resp. the k-way merge) *is* the symbolic
///               count, so each chunk computes its rows once into a
///               contiguous slab (reserved to the chunk's capped flops
///               bound) and the prefix-sum stitch copies each slab into
///               place in one block — or moves it out copy-free when
///               the run is serial.
///
/// In every path, scratch (dense accumulator, hash table, merge heap,
/// sort buffer, slabs) is chunk-local and reused across rows: zero
/// per-row heap allocations in steady state, and no vector-of-vectors
/// row staging anywhere.
///
/// Parallel runs use ThreadPool::parallel_for_chunks; because every row
/// lands at a prefix-sum-determined offset and each row's computation is
/// independent and deterministic, the output is byte-identical across
/// pool sizes (including serial).

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "algebra/concepts.hpp"
#include "core/types.hpp"
#include "sparse/csr.hpp"
#include "util/contract.hpp"
#include "util/failpoint.hpp"
#include "util/thread_pool.hpp"

namespace i2a::sparse {

enum class SpGemmAlgo {
  kGustavson,  ///< dense accumulator + touched-column list (SPA)
  kHash,       ///< open-addressing hash accumulator per row
  kHeap,       ///< k-way merge of B rows via a binary heap
  kAuto,       ///< per-row choice from the symbolic pass's flop/nnz stats
};

namespace detail {

/// Uniform A-operand access for the engine: `Csr` rows or a `CscView`
/// (rows of Aᵀ without materializing the transpose).
template <typename T>
struct CsrRowsView {
  const Csr<T>& m;
  index_t nrows() const { return m.nrows(); }
  std::span<const index_t> row_cols(index_t i) const { return m.row_cols(i); }
  T row_val(index_t i, std::size_t k) const {
    return m.row_vals(i)[k];
  }
  /// Hoist the row's values — one span construction per row instead of
  /// one per entry in the kernels' hot loops. CSR values are already
  /// contiguous, so this is a direct span; `scratch` is only for views
  /// that must materialize (CscView).
  std::span<const T> gather_row_vals(index_t i,
                                     std::vector<T>& scratch) const {
    (void)scratch;
    return m.row_vals(i);
  }
};

/// Intermediate-product count of output row `i`: Σ_k |B(k,:)| over the
/// stored k of A(i,:). Upper-bounds the row nnz; exact when no column
/// collides.
template <typename AV, typename T>
index_t row_flops(const AV& a, const Csr<T>& b, index_t i) {
  index_t f = 0;
  for (const index_t k : a.row_cols(i)) f += b.row_nnz(k);
  return f;
}

/// Open-addressing accumulator with epoch-stamped slots. The table is
/// chunk-local: it grows geometrically to the largest row seen in the
/// chunk and is reset per row in O(1) by bumping the epoch, so steady
/// state performs no allocation at all. Capacity keeps load factor
/// <= 1/2 given the caller's distinct-key upper bound, so probing always
/// terminates.
template <typename T>
class HashAcc {
 public:
  void begin_row(index_t distinct_upper) {
    std::size_t want = 16;
    while (want < 2 * static_cast<std::size_t>(distinct_upper)) want <<= 1;
    if (want > keys_.size()) {
      keys_.assign(want, 0);
      epoch_of_.assign(want, 0);
      vals_.resize(want);
      epoch_ = 0;
      shift_ = 64;
      for (std::size_t c = want; c > 1; c >>= 1) --shift_;
    }
    ++epoch_;
    used_.clear();
  }

  /// Insert-or-find `j`; `fresh` reports whether the key is new this row.
  std::size_t upsert(index_t j, bool& fresh) {
    const std::size_t mask = keys_.size() - 1;
    std::size_t h =
        static_cast<std::size_t>(
            (static_cast<std::uint64_t>(j) * 0x9e3779b97f4a7c15ULL) >>
            shift_) &
        mask;
    for (;;) {
      if (epoch_of_[h] != epoch_) {
        epoch_of_[h] = epoch_;
        keys_[h] = j;
        used_.push_back(h);
        fresh = true;
        return h;
      }
      if (keys_[h] == j) {
        fresh = false;
        return h;
      }
      h = (h + 1) & mask;
    }
  }

  T& val(std::size_t slot) { return vals_[slot]; }
  index_t key(std::size_t slot) const { return keys_[slot]; }
  index_t count() const { return static_cast<index_t>(used_.size()); }
  std::span<const std::size_t> used() const {
    return std::span<const std::size_t>(used_.data(), used_.size());
  }

 private:
  std::vector<index_t> keys_;
  std::vector<std::uint64_t> epoch_of_;
  std::vector<T> vals_;
  std::vector<std::size_t> used_;  // slots live in the current epoch
  std::uint64_t epoch_ = 0;
  int shift_ = 64;  // 64 - log2(capacity): multiply-shift hash start
};

/// One stream of the k-way merge: `col` is the head column, `ka` the
/// A-entry the stream belongs to, `pos` the cursor within the B row.
struct HeapCursor {
  index_t col;
  index_t ka;
  index_t pos;
};

/// Min-heap-on-column sift-down for the merge cursors. The merge uses
/// replace-top (mutate the root, sift once) instead of pop+push, halving
/// the sift work per stream advance. Equal columns pop in whatever order
/// the (fully deterministic) heap structure yields — per-row determinism
/// is all the byte-identical-across-pool-sizes guarantee needs.
inline void cursor_sift_down(std::vector<HeapCursor>& h, std::size_t i) {
  const std::size_t n = h.size();
  const HeapCursor x = h[i];
  for (;;) {
    std::size_t kid = 2 * i + 1;
    if (kid >= n) break;
    if (kid + 1 < n && h[kid + 1].col < h[kid].col) ++kid;
    if (h[kid].col >= x.col) break;
    h[i] = h[kid];
    i = kid;
  }
  h[i] = x;
}

inline void cursor_heapify(std::vector<HeapCursor>& h) {
  for (std::size_t i = h.size() / 2; i-- > 0;) cursor_sift_down(h, i);
}

/// All chunk-local working memory, allocated lazily per algorithm and
/// reused across every row of the chunk — and across the symbolic and
/// numeric passes, which index the same scratch by chunk id.
template <typename T>
struct ChunkScratch {
  // Gustavson: dense accumulator + generation stamps + touched list.
  std::vector<T> acc;
  std::vector<index_t> stamp;
  std::vector<index_t> touched;
  index_t generation = 0;
  // Hash: accumulator table + (col, val) sort buffer for ordered emit.
  HashAcc<T> hash;
  std::vector<std::pair<index_t, T>> emit;
  // Heap: merge cursors + per-stream hoists (B-row pointers and the A
  // value), so the pop loop never reconstructs spans.
  std::vector<HeapCursor> heap;
  std::vector<const index_t*> stream_bcols;
  std::vector<const T*> stream_bvals;
  std::vector<index_t> stream_blen;
  std::vector<T> stream_aval;

  void ensure_dense(index_t ncols) {
    if (stamp.size() < static_cast<std::size_t>(ncols)) {
      acc.resize(static_cast<std::size_t>(ncols));
      stamp.assign(static_cast<std::size_t>(ncols), index_t{-1});
      generation = 0;
    }
  }
};

/// Exact row nnz via hash distinct-count (hash / auto symbolic): no
/// O(ncols) dense array, table sized by min(flops, ncols).
template <typename AV, typename T>
index_t symbolic_row_hash(const AV& a, const Csr<T>& b, index_t i,
                          index_t distinct_upper, ChunkScratch<T>& s) {
  s.hash.begin_row(distinct_upper);
  bool fresh;
  for (const index_t k : a.row_cols(i)) {
    for (const index_t j : b.row_cols(k)) s.hash.upsert(j, fresh);
  }
  return s.hash.count();
}

/// Gustavson scatter: accumulate row `i` into the dense accumulator,
/// leaving `s.touched` sorted and `s.acc` holding the folded values.
/// Callers emit from there — into a final slot (exact two-pass) or a
/// chunk slab (fused Gustavson path).
template <typename P, typename AV, typename T>
void gustavson_scatter(const P& p, const AV& a, const Csr<T>& b, index_t i,
                       ChunkScratch<T>& s) {
  const index_t gen = s.generation++;
  s.touched.clear();
  const auto acols = a.row_cols(i);
  const auto avals = a.gather_row_vals(i, s.stream_aval);
  for (std::size_t ka = 0; ka < acols.size(); ++ka) {
    const index_t k = acols[ka];
    const T av = avals[ka];
    const auto bcols = b.row_cols(k);
    const auto bvals = b.row_vals(k);
    for (std::size_t kb = 0; kb < bcols.size(); ++kb) {
      const index_t j = bcols[kb];
      const T term = p.mul(av, bvals[kb]);
      auto& st = s.stamp[static_cast<std::size_t>(j)];
      if (st != gen) {
        st = gen;
        s.acc[static_cast<std::size_t>(j)] = term;
        s.touched.push_back(j);
      } else {
        s.acc[static_cast<std::size_t>(j)] =
            p.add(s.acc[static_cast<std::size_t>(j)], term);
      }
    }
  }
  std::sort(s.touched.begin(), s.touched.end());
}

/// Numeric Gustavson: scatter, then gather the sorted touched list
/// straight into the row's final slot.
template <typename P, typename AV, typename T>
void numeric_row_gustavson(const P& p, const AV& a, const Csr<T>& b,
                           index_t i, ChunkScratch<T>& s, index_t* out_cols,
                           T* out_vals) {
  gustavson_scatter(p, a, b, i, s);
  for (std::size_t t = 0; t < s.touched.size(); ++t) {
    out_cols[t] = s.touched[t];
    out_vals[t] = s.acc[static_cast<std::size_t>(s.touched[t])];
  }
}

/// Numeric hash: accumulate in the epoch-stamped table (sized exactly by
/// the symbolic count), then sort the live entries into the final slot.
template <typename P, typename AV, typename T>
void numeric_row_hash(const P& p, const AV& a, const Csr<T>& b, index_t i,
                      index_t row_nnz, ChunkScratch<T>& s, index_t* out_cols,
                      T* out_vals) {
  s.hash.begin_row(row_nnz);
  bool fresh;
  const auto acols = a.row_cols(i);
  const auto avals = a.gather_row_vals(i, s.stream_aval);
  for (std::size_t ka = 0; ka < acols.size(); ++ka) {
    const index_t k = acols[ka];
    const T av = avals[ka];
    const auto bcols = b.row_cols(k);
    const auto bvals = b.row_vals(k);
    for (std::size_t kb = 0; kb < bcols.size(); ++kb) {
      const index_t j = bcols[kb];
      const T term = p.mul(av, bvals[kb]);
      const std::size_t slot = s.hash.upsert(j, fresh);
      s.hash.val(slot) = fresh ? term : p.add(s.hash.val(slot), term);
    }
  }
  s.emit.clear();
  for (const std::size_t slot : s.hash.used()) {
    s.emit.emplace_back(s.hash.key(slot), s.hash.val(slot));
  }
  std::sort(s.emit.begin(), s.emit.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  for (std::size_t t = 0; t < s.emit.size(); ++t) {
    out_cols[t] = s.emit[t].first;
    out_vals[t] = s.emit[t].second;
  }
}

/// Heap merge of row `i`, emitting (col, value) pairs in strictly
/// increasing column order through `emit` — no sort, no accumulator.
/// The emitter abstracts the destination: direct final-slot writes for
/// the exact two-pass engine, slab appends for the chunked engine.
template <typename P, typename AV, typename T, typename Emit>
void heap_merge_row(const P& p, const AV& a, const Csr<T>& b, index_t i,
                    ChunkScratch<T>& s, Emit&& emit) {
  auto& heap = s.heap;
  heap.clear();
  s.stream_bcols.clear();
  s.stream_bvals.clear();
  s.stream_blen.clear();
  const auto acols = a.row_cols(i);
  const auto avals = a.gather_row_vals(i, s.stream_aval);
  for (std::size_t ka = 0; ka < acols.size(); ++ka) {
    const auto bcols = b.row_cols(acols[ka]);
    const auto bvals = b.row_vals(acols[ka]);
    s.stream_bcols.push_back(bcols.data());
    s.stream_bvals.push_back(bvals.data());
    s.stream_blen.push_back(static_cast<index_t>(bcols.size()));
    if (!bcols.empty()) {
      heap.push_back(HeapCursor{bcols[0], static_cast<index_t>(ka), 0});
    }
  }
  cursor_heapify(heap);
  bool open = false;
  index_t cur_col = 0;
  T cur_val{};
  while (!heap.empty()) {
    HeapCursor& top = heap[0];
    const auto ka = static_cast<std::size_t>(top.ka);
    const index_t col = top.col;
    const T term =
        p.mul(avals[ka],
              s.stream_bvals[ka][static_cast<std::size_t>(top.pos)]);
    if (open && col == cur_col) {
      cur_val = p.add(cur_val, term);
    } else {
      if (open) emit(cur_col, cur_val);
      open = true;
      cur_col = col;
      cur_val = term;
    }
    if (top.pos + 1 < s.stream_blen[ka]) {
      // Replace-top: advance the stream in place, one sift.
      ++top.pos;
      top.col = s.stream_bcols[ka][static_cast<std::size_t>(top.pos)];
      cursor_sift_down(heap, 0);
    } else {
      heap[0] = heap.back();
      heap.pop_back();
      if (!heap.empty()) cursor_sift_down(heap, 0);
    }
  }
  if (open) emit(cur_col, cur_val);
}

/// Final-slot form of the heap merge for the exact two-pass engine.
template <typename P, typename AV, typename T>
index_t numeric_row_heap(const P& p, const AV& a, const Csr<T>& b, index_t i,
                         ChunkScratch<T>& s, index_t* out_cols, T* out_vals) {
  std::size_t t = 0;
  heap_merge_row(p, a, b, i, s, [&](index_t col, const T& val) {
    out_cols[t] = col;
    out_vals[t] = val;
    ++t;
  });
  return static_cast<index_t>(t);
}

/// kAuto per-row policy, fed by the symbolic pass:
///  - flops == nnz means no column ever collides, so with few streams the
///    allocator-free merge wins (no accumulator, no sort);
///  - a row filling a decent fraction of a small-ish output width wants
///    the dense accumulator (O(1) scatter, cache-resident);
///  - everything else (sparse rows of wide outputs, high compression)
///    goes to the hash accumulator.
inline SpGemmAlgo pick_row_algo(std::size_t a_row_nnz, index_t flops,
                                index_t nnz, index_t b_ncols) {
  if (flops == nnz && a_row_nnz <= 8) return SpGemmAlgo::kHeap;
  if (b_ncols <= 256 || nnz >= b_ncols / 8) return SpGemmAlgo::kGustavson;
  return SpGemmAlgo::kHash;
}

// run_chunked — the shared fork/join driver — lives in sparse/csr.hpp's
// detail namespace now: the COO→CSR assembly engine and the parallel
// transpose/CscView builders (PR 3) use the same chunk decomposition.

/// Chunk-slab engine for the kernels whose exact symbolic pass would
/// repeat their whole numeric cost (Gustavson's scatter *is* the count;
/// an exact heap symbolic would run the merge twice). Each chunk
/// computes its rows once into a contiguous chunk slab — exact per-row
/// counts fall out as a byproduct — and the prefix-sum stitch copies
/// each slab into the final arrays in one contiguous block. This is the
/// ROADMAP-prescribed shape: per-chunk contiguous col/val buffers
/// stitched by prefix sum, zero per-row allocations (slabs grow
/// geometrically, amortized across the chunk), peak memory O(output +
/// slack) regardless of the flops/nnz compression ratio.
/// `total_flops_hint` (optional, -1 = unknown) lets a caller that has
/// already scanned the structure (kAuto's matrix-level tier) skip the
/// per-chunk reserve rescan — the hint is apportioned by row share.
template <typename P, typename AV>
Csr<typename P::value_type> spgemm_chunk_slab(
    const P& p, const AV& a, const Csr<typename P::value_type>& b,
    SpGemmAlgo algo, util::ThreadPool* pool,
    index_t total_flops_hint = -1) {
  using T = typename P::value_type;
  const index_t nrows = a.nrows();
  const index_t b_ncols = b.ncols();
  const bool parallel = pool != nullptr && pool->size() > 1 && nrows > 0;
  const index_t nchunks = parallel ? pool->num_chunks(nrows) : 1;
  std::vector<detail::ChunkScratch<T>> scratch(
      static_cast<std::size_t>(nchunks));

  struct Slab {
    std::vector<index_t> cols;
    std::vector<T> vals;
  };
  std::vector<Slab> slabs(static_cast<std::size_t>(nchunks));
  std::vector<index_t> row_ptr(static_cast<std::size_t>(nrows) + 1, 0);

  run_chunked(
      pool, parallel, nrows, [&](index_t chunk, index_t lo, index_t hi) {
        auto& s = scratch[static_cast<std::size_t>(chunk)];
        auto& slab = slabs[static_cast<std::size_t>(chunk)];
        if (algo == SpGemmAlgo::kGustavson) s.ensure_dense(b_ncols);
        // Reserve the chunk's flops upper bound (capped per row by the
        // output width) so appends almost never reallocate mid-chunk.
        // The reserve itself is capped so a pathological compression
        // ratio (flops >> nnz) can't balloon peak memory — past the cap
        // the slab just grows geometrically like any vector.
        const index_t reserve_cap =
            std::max<index_t>(index_t{1} << 20, 2 * b.nnz());
        index_t ub = 0;
        if (total_flops_hint >= 0) {
          ub = total_flops_hint * (hi - lo) / (nrows > 0 ? nrows : 1);
        } else {
          for (index_t i = lo; i < hi; ++i) {
            ub += std::min(row_flops(a, b, i), b_ncols);
          }
        }
        ub = std::min(ub, reserve_cap);
        slab.cols.reserve(static_cast<std::size_t>(ub));
        slab.vals.reserve(static_cast<std::size_t>(ub));
        for (index_t i = lo; i < hi; ++i) {
          const auto acols = a.row_cols(i);
          const std::size_t before = slab.cols.size();
          if (acols.size() == 1) {
            // Single stream: the row is B(k,:) mapped through ⊗ — no
            // accumulator, no merge, no sort.
            const T av = a.row_val(i, 0);
            const auto bcols = b.row_cols(acols[0]);
            const auto bvals = b.row_vals(acols[0]);
            slab.cols.insert(slab.cols.end(), bcols.begin(), bcols.end());
            for (std::size_t kb = 0; kb < bvals.size(); ++kb) {
              slab.vals.push_back(p.mul(av, bvals[kb]));
            }
          } else if (!acols.empty()) {
            if (algo == SpGemmAlgo::kGustavson) {
              gustavson_scatter(p, a, b, i, s);
              for (const index_t j : s.touched) {
                slab.cols.push_back(j);
                slab.vals.push_back(s.acc[static_cast<std::size_t>(j)]);
              }
            } else {  // kHeap
              heap_merge_row(p, a, b, i, s, [&](index_t col, const T& val) {
                slab.cols.push_back(col);
                slab.vals.push_back(val);
              });
            }
          }
          row_ptr[static_cast<std::size_t>(i) + 1] =
              static_cast<index_t>(slab.cols.size() - before);
        }
      });

  for (index_t i = 0; i < nrows; ++i) {
    row_ptr[static_cast<std::size_t>(i) + 1] +=
        row_ptr[static_cast<std::size_t>(i)];
  }

  // A single chunk's slab already is the concatenated output — move it
  // out instead of stitching (the serial path pays no copy at all),
  // unless the upper-bound reserve overshot badly enough that keeping
  // the slack capacity would waste real memory.
  if (nchunks == 1 &&
      slabs[0].cols.capacity() <=
          slabs[0].cols.size() + slabs[0].cols.size() / 8 + 64) {
    return Csr<T>(nrows, b_ncols, std::move(row_ptr),
                  std::move(slabs[0].cols), std::move(slabs[0].vals));
  }

  std::vector<index_t> cols(static_cast<std::size_t>(row_ptr.back()));
  std::vector<T> vals(static_cast<std::size_t>(row_ptr.back()));

  // Stitch: chunk `c` covers the same contiguous row range as in the
  // compute pass (the decomposition is a pure function of (n, size())),
  // so each slab lands with one contiguous copy.
  run_chunked(pool, parallel, nrows, [&](index_t chunk, index_t lo, index_t) {
    const auto& slab = slabs[static_cast<std::size_t>(chunk)];
    const auto dst =
        static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(lo)]);
    std::copy(slab.cols.begin(), slab.cols.end(), cols.begin() + dst);
    std::copy(slab.vals.begin(), slab.vals.end(), vals.begin() + dst);
  });

  return Csr<T>(nrows, b_ncols, std::move(row_ptr), std::move(cols),
                std::move(vals));
}

/// The two-pass engine, generic over the A-operand view (CSR rows or a
/// CSC view of the untransposed matrix).
template <typename P, typename AV>
Csr<typename P::value_type> spgemm_two_pass(
    const P& p, const AV& a, const Csr<typename P::value_type>& b,
    SpGemmAlgo algo, util::ThreadPool* pool) {
  using T = typename P::value_type;
  // Injection site: the product's working-set allocations (every algo
  // routes through here — chunk-slab included). A fire means the
  // product produced nothing; both operands are untouched, so callers
  // staging a batch delta lose only that staging attempt.
  I2A_FAILPOINT("spgemm.numeric.alloc");
  if (algo == SpGemmAlgo::kGustavson || algo == SpGemmAlgo::kHeap) {
    return spgemm_chunk_slab(p, a, b, algo, pool);
  }
  const index_t nrows = a.nrows();
  const index_t b_ncols = b.ncols();
  std::vector<index_t> flops_cache;  // kAuto only; symbolic reuses it
  if (algo == SpGemmAlgo::kAuto) {
    // Matrix-level tier of the auto policy: when rows are tiny on
    // average (the incidence-shape regime — avg flops/row ≈ vertex
    // degree), the exact symbolic pass costs as much as the product
    // itself, so take the fused chunk-slab engine instead. Gustavson
    // while the dense accumulator stays cache-comfortable, heap for
    // hyper-wide outputs. The per-row tier below only pays off once
    // rows are heavy enough to amortize their symbolic count; the scan
    // is kept (not redone) as the symbolic pass's flop source, and runs
    // on the pool — serialized it would cap speedup at ~2x in exactly
    // the tiny-row regime the tier exists for.
    flops_cache.resize(static_cast<std::size_t>(nrows));
    if (pool != nullptr && pool->size() > 1 && nrows > 0) {
      pool->parallel_for_chunks(nrows, [&](index_t, index_t lo, index_t hi) {
        for (index_t i = lo; i < hi; ++i) {
          flops_cache[static_cast<std::size_t>(i)] = row_flops(a, b, i);
        }
      });
    } else {
      for (index_t i = 0; i < nrows; ++i) {
        flops_cache[static_cast<std::size_t>(i)] = row_flops(a, b, i);
      }
    }
    index_t total_flops = 0;
    for (index_t i = 0; i < nrows; ++i) {
      total_flops += flops_cache[static_cast<std::size_t>(i)];
    }
    if (total_flops < 32 * nrows) {
      return spgemm_chunk_slab(
          p, a, b,
          b_ncols <= (index_t{1} << 15) ? SpGemmAlgo::kGustavson
                                        : SpGemmAlgo::kHeap,
          pool, total_flops);
    }
  }

  // row_ptr doubles as the symbolic pass's per-row count buffer
  // (row_ptr[i + 1] = nnz of row i) before the prefix sum runs.
  std::vector<index_t> row_ptr(static_cast<std::size_t>(nrows) + 1, 0);
  std::vector<std::uint8_t> row_algo;
  if (algo == SpGemmAlgo::kAuto) {
    row_algo.assign(static_cast<std::size_t>(nrows),
                    static_cast<std::uint8_t>(SpGemmAlgo::kHeap));
  }

  const bool parallel = pool != nullptr && pool->size() > 1 && nrows > 0;
  const index_t nchunks = parallel ? pool->num_chunks(nrows) : 1;
  std::vector<detail::ChunkScratch<T>> scratch(
      static_cast<std::size_t>(nchunks));

  run_chunked(
      pool, parallel, nrows, [&](index_t chunk, index_t lo, index_t hi) {
        auto& s = scratch[static_cast<std::size_t>(chunk)];
        for (index_t i = lo; i < hi; ++i) {
          const auto acols = a.row_cols(i);
          index_t nnz = 0;
          if (acols.size() <= 1) {
            // 0 or 1 streams: no collisions possible, nnz is immediate —
            // and the streaming merge is the optimal numeric kernel.
            nnz = acols.empty() ? 0 : b.row_nnz(acols[0]);
            if (algo == SpGemmAlgo::kAuto) {
              row_algo[static_cast<std::size_t>(i)] =
                  static_cast<std::uint8_t>(SpGemmAlgo::kHeap);
            }
          } else {  // kHash / kAuto: exact count, no O(ncols) dense array
            const index_t flops =
                algo == SpGemmAlgo::kAuto
                    ? flops_cache[static_cast<std::size_t>(i)]
                    : row_flops(a, b, i);
            if (flops > 0) {
              nnz = symbolic_row_hash(a, b, i, std::min(flops, b_ncols), s);
            }
            if (algo == SpGemmAlgo::kAuto) {
              row_algo[static_cast<std::size_t>(i)] =
                  static_cast<std::uint8_t>(
                      pick_row_algo(acols.size(), flops, nnz, b_ncols));
            }
          }
          row_ptr[static_cast<std::size_t>(i) + 1] = nnz;
        }
      });

  // Stitch: one serial prefix sum sizes the output arrays exactly.
  for (index_t i = 0; i < nrows; ++i) {
    row_ptr[static_cast<std::size_t>(i) + 1] +=
        row_ptr[static_cast<std::size_t>(i)];
  }
  std::vector<index_t> cols(static_cast<std::size_t>(row_ptr.back()));
  std::vector<T> vals(static_cast<std::size_t>(row_ptr.back()));

  run_chunked(
      pool, parallel, nrows, [&](index_t chunk, index_t lo, index_t hi) {
        auto& s = scratch[static_cast<std::size_t>(chunk)];
        for (index_t i = lo; i < hi; ++i) {
          const index_t offset = row_ptr[static_cast<std::size_t>(i)];
          const index_t nnz =
              row_ptr[static_cast<std::size_t>(i) + 1] - offset;
          if (nnz == 0) continue;
          index_t* out_cols = cols.data() + offset;
          T* out_vals = vals.data() + offset;
          SpGemmAlgo row = algo;
          if (algo == SpGemmAlgo::kAuto) {
            row = static_cast<SpGemmAlgo>(
                row_algo[static_cast<std::size_t>(i)]);
          } else if (a.row_cols(i).size() <= 1) {
            row = SpGemmAlgo::kHeap;  // single stream: pure merge
          }
          switch (row) {
            case SpGemmAlgo::kGustavson:
              s.ensure_dense(b_ncols);
              numeric_row_gustavson(p, a, b, i, s, out_cols, out_vals);
              break;
            case SpGemmAlgo::kHash:
              numeric_row_hash(p, a, b, i, nnz, s, out_cols, out_vals);
              break;
            case SpGemmAlgo::kHeap:
            case SpGemmAlgo::kAuto:  // unreachable: kAuto resolves per row
              numeric_row_heap(p, a, b, i, s, out_cols, out_vals);
              break;
          }
        }
      });

  return Csr<T>(nrows, b_ncols, std::move(row_ptr), std::move(cols),
                std::move(vals));
}

}  // namespace detail

/// C = A ⊕.⊗ B with sparse-shortcut semantics via the two-pass engine.
/// `pool` enables row-chunk parallelism (each chunk owns private scratch
/// shared between the symbolic and numeric passes); null or
/// single-thread pools run serially. Output is byte-identical across
/// pool sizes. The `Semiring` constraint rejects structurally malformed
/// pairs and pairs that declare a broken ⊕/⊗ law at compile time
/// (algebra/concepts.hpp).
template <typename P>
  requires algebra::Semiring<P>
Csr<typename P::value_type> spgemm(const P& p,
                                   const Csr<typename P::value_type>& a,
                                   const Csr<typename P::value_type>& b,
                                   SpGemmAlgo algo = SpGemmAlgo::kGustavson,
                                   util::ThreadPool* pool = nullptr) {
  using T = typename P::value_type;
  I2A_EXPECTS(a.ncols() == b.nrows(), "spgemm: inner dimensions disagree");
  I2A_EXPECTS(a.is_canonical(), "spgemm: A not canonical CSR");
  I2A_EXPECTS(b.is_canonical(), "spgemm: B not canonical CSR");
  auto c = detail::spgemm_two_pass(p, detail::CsrRowsView<T>{a}, b, algo, pool);
  I2A_ENSURES(c.is_canonical(), "spgemm: non-canonical product");
  return c;
}

/// C = Aᵀ ⊕.⊗ B — the paper's product shape (A and B are both tall
/// edge×vertex incidence arrays) — fused over a prebuilt CSC view of A.
/// Build the view once per incidence array and amortize it across
/// products (forward + reverse adjacency, repeated algebra sweeps).
template <typename P>
  requires algebra::Semiring<P>
Csr<typename P::value_type> spgemm_at_b(
    const P& p, const CscView<typename P::value_type>& at,
    const Csr<typename P::value_type>& b,
    SpGemmAlgo algo = SpGemmAlgo::kGustavson,
    util::ThreadPool* pool = nullptr) {
  I2A_EXPECTS(at.ncols() == b.nrows(),
              "spgemm_at_b: inner dimensions disagree");
  I2A_EXPECTS(b.is_canonical(), "spgemm_at_b: B not canonical CSR");
  auto c = detail::spgemm_two_pass(p, at, b, algo, pool);
  I2A_ENSURES(c.is_canonical(), "spgemm_at_b: non-canonical product");
  return c;
}

/// C = Aᵀ ⊕.⊗ B convenience overload: builds the CSC view internally
/// (on the pool, when one is given — the view's counting sort chunks the
/// same way the product does). Structure-only counting sort — unlike the
/// old `transpose(a)` path, no value array is ever copied or re-laid-out.
template <typename P>
  requires algebra::Semiring<P>
Csr<typename P::value_type> spgemm_at_b(
    const P& p, const Csr<typename P::value_type>& a,
    const Csr<typename P::value_type>& b,
    SpGemmAlgo algo = SpGemmAlgo::kGustavson,
    util::ThreadPool* pool = nullptr) {
  I2A_EXPECTS(a.nrows() == b.nrows(),
              "spgemm_at_b: Aᵀ inner dimension disagrees with B");
  I2A_EXPECTS(a.is_canonical(), "spgemm_at_b: A not canonical CSR");
  I2A_EXPECTS(b.is_canonical(), "spgemm_at_b: B not canonical CSR");
  const CscView<typename P::value_type> at(a, pool);
  auto c = detail::spgemm_two_pass(p, at, b, algo, pool);
  I2A_ENSURES(c.is_canonical(), "spgemm_at_b: non-canonical product");
  return c;
}

}  // namespace i2a::sparse
