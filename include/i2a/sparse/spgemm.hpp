#pragma once
/// \file sparse/spgemm.hpp
/// \brief Sparse general matrix-matrix multiply over an arbitrary
///        operator pair ⊕.⊗, with three accumulator strategies and
///        optional row-parallel execution.
///
/// All three kernels implement the *sparse shortcut* semantics: only
/// stored⊗stored terms enter the ⊕ fold. By Theorem II.1 this equals the
/// full fold whenever the pair conforms (zero is an annihilator, the
/// carrier is zero-sum-free and has no zero divisors) — the seven paper
/// pairs all qualify. The ablation questions (dense vs hash accumulator,
/// heap for tiny intermediates) are exercised by bench_spgemm_ablation.

#include <cassert>
#include <queue>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "sparse/csr.hpp"
#include "util/thread_pool.hpp"

namespace i2a::sparse {

enum class SpGemmAlgo {
  kGustavson,  ///< dense accumulator + touched-column list (SPA)
  kHash,       ///< open-addressing hash accumulator per row
  kHeap,       ///< k-way merge of B rows via a binary heap
};

namespace detail {

/// Gustavson sparse accumulator: dense value array + generation stamps,
/// reused across the rows of one chunk.
template <typename P, typename T>
void row_product_gustavson(const P& p, const Csr<T>& a, const Csr<T>& b,
                           index_t i, std::vector<T>& acc,
                           std::vector<index_t>& stamp, index_t generation,
                           std::vector<index_t>& touched,
                           std::vector<index_t>& out_cols,
                           std::vector<T>& out_vals) {
  touched.clear();
  const auto acols = a.row_cols(i);
  const auto avals = a.row_vals(i);
  for (std::size_t ka = 0; ka < acols.size(); ++ka) {
    const index_t k = acols[ka];
    const T av = avals[ka];
    const auto bcols = b.row_cols(k);
    const auto bvals = b.row_vals(k);
    for (std::size_t kb = 0; kb < bcols.size(); ++kb) {
      const index_t j = bcols[kb];
      const T term = p.mul(av, bvals[kb]);
      if (stamp[static_cast<std::size_t>(j)] != generation) {
        stamp[static_cast<std::size_t>(j)] = generation;
        acc[static_cast<std::size_t>(j)] = term;
        touched.push_back(j);
      } else {
        acc[static_cast<std::size_t>(j)] =
            p.add(acc[static_cast<std::size_t>(j)], term);
      }
    }
  }
  std::sort(touched.begin(), touched.end());
  for (const index_t j : touched) {
    out_cols.push_back(j);
    out_vals.push_back(acc[static_cast<std::size_t>(j)]);
  }
}

/// Open-addressing (linear probing) hash accumulator, power-of-two sized.
/// `scratch` is caller-owned chunk-local storage for the sorted emit, so
/// the sort tail allocates nothing in steady state.
template <typename P, typename T>
void row_product_hash(const P& p, const Csr<T>& a, const Csr<T>& b, index_t i,
                      std::vector<std::pair<index_t, T>>& scratch,
                      std::vector<index_t>& out_cols, std::vector<T>& out_vals) {
  // Upper-bound the row's intermediate-product count to size the table.
  std::size_t prods = 0;
  for (const index_t k : a.row_cols(i)) {
    prods += static_cast<std::size_t>(b.row_nnz(k));
  }
  if (prods == 0) return;
  std::size_t cap = 16;
  while (cap < 2 * prods) cap <<= 1;
  std::vector<index_t> keys(cap, index_t{-1});
  std::vector<T> slots(cap);

  const auto acols = a.row_cols(i);
  const auto avals = a.row_vals(i);
  for (std::size_t ka = 0; ka < acols.size(); ++ka) {
    const index_t k = acols[ka];
    const T av = avals[ka];
    const auto bcols = b.row_cols(k);
    const auto bvals = b.row_vals(k);
    for (std::size_t kb = 0; kb < bcols.size(); ++kb) {
      const index_t j = bcols[kb];
      const T term = p.mul(av, bvals[kb]);
      std::size_t h =
          (static_cast<std::size_t>(j) * 0x9e3779b97f4a7c15ULL) & (cap - 1);
      for (;;) {
        if (keys[h] == j) {
          slots[h] = p.add(slots[h], term);
          break;
        }
        if (keys[h] == index_t{-1}) {
          keys[h] = j;
          slots[h] = term;
          break;
        }
        h = (h + 1) & (cap - 1);
      }
    }
  }
  // Emit in column order.
  scratch.clear();
  for (std::size_t h = 0; h < cap; ++h) {
    if (keys[h] != index_t{-1}) scratch.emplace_back(keys[h], slots[h]);
  }
  std::sort(scratch.begin(), scratch.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  for (const auto& [col, val] : scratch) {
    out_cols.push_back(col);
    out_vals.push_back(val);
  }
}

/// Heap-based k-way merge: cheap when rows of A are short and the
/// intermediate product barely exceeds the output.
template <typename P, typename T>
void row_product_heap(const P& p, const Csr<T>& a, const Csr<T>& b, index_t i,
                      std::vector<index_t>& out_cols, std::vector<T>& out_vals) {
  struct Cursor {
    index_t col;     // current column in the B row
    std::size_t ka;  // which A entry this stream belongs to
    std::size_t pos; // position within the B row
  };
  const auto acols = a.row_cols(i);
  const auto avals = a.row_vals(i);
  auto cmp = [](const Cursor& x, const Cursor& y) { return x.col > y.col; };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cmp)> heap(cmp);
  for (std::size_t ka = 0; ka < acols.size(); ++ka) {
    const auto bcols = b.row_cols(acols[ka]);
    if (!bcols.empty()) heap.push(Cursor{bcols[0], ka, 0});
  }
  bool open = false;
  index_t cur_col = 0;
  T cur_val{};
  while (!heap.empty()) {
    const Cursor c = heap.top();
    heap.pop();
    const auto brow_cols = b.row_cols(acols[c.ka]);
    const auto brow_vals = b.row_vals(acols[c.ka]);
    const T term = p.mul(avals[c.ka], brow_vals[c.pos]);
    if (open && c.col == cur_col) {
      cur_val = p.add(cur_val, term);
    } else {
      if (open) {
        out_cols.push_back(cur_col);
        out_vals.push_back(cur_val);
      }
      open = true;
      cur_col = c.col;
      cur_val = term;
    }
    if (c.pos + 1 < brow_cols.size()) {
      heap.push(Cursor{brow_cols[c.pos + 1], c.ka, c.pos + 1});
    }
  }
  if (open) {
    out_cols.push_back(cur_col);
    out_vals.push_back(cur_val);
  }
}

}  // namespace detail

/// C = A ⊕.⊗ B with sparse-shortcut semantics. `pool` enables row-chunk
/// parallelism (each worker owns a contiguous row range and a private
/// accumulator); null or single-thread pools run serially.
template <typename P>
Csr<typename P::value_type> spgemm(const P& p,
                                   const Csr<typename P::value_type>& a,
                                   const Csr<typename P::value_type>& b,
                                   SpGemmAlgo algo = SpGemmAlgo::kGustavson,
                                   util::ThreadPool* pool = nullptr) {
  using T = typename P::value_type;
  assert(a.ncols() == b.nrows());
  const index_t nrows = a.nrows();
  std::vector<std::vector<index_t>> chunk_cols(
      static_cast<std::size_t>(nrows));
  std::vector<std::vector<T>> chunk_vals(static_cast<std::size_t>(nrows));

  auto run_rows = [&](index_t begin, index_t end) {
    // Chunk-local scratch, reused across rows.
    std::vector<T> acc;
    std::vector<index_t> stamp;
    std::vector<index_t> touched;
    std::vector<std::pair<index_t, T>> hash_scratch;
    if (algo == SpGemmAlgo::kGustavson) {
      acc.resize(static_cast<std::size_t>(b.ncols()));
      stamp.assign(static_cast<std::size_t>(b.ncols()), index_t{-1});
    }
    for (index_t i = begin; i < end; ++i) {
      auto& oc = chunk_cols[static_cast<std::size_t>(i)];
      auto& ov = chunk_vals[static_cast<std::size_t>(i)];
      switch (algo) {
        case SpGemmAlgo::kGustavson:
          detail::row_product_gustavson(p, a, b, i, acc, stamp, i, touched,
                                        oc, ov);
          break;
        case SpGemmAlgo::kHash:
          detail::row_product_hash(p, a, b, i, hash_scratch, oc, ov);
          break;
        case SpGemmAlgo::kHeap:
          detail::row_product_heap(p, a, b, i, oc, ov);
          break;
      }
    }
  };

  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(nrows, run_rows);
  } else {
    run_rows(0, nrows);
  }

  // Stitch the per-row results into one CSR.
  std::vector<index_t> row_ptr(static_cast<std::size_t>(nrows) + 1, 0);
  for (index_t i = 0; i < nrows; ++i) {
    row_ptr[static_cast<std::size_t>(i) + 1] =
        row_ptr[static_cast<std::size_t>(i)] +
        static_cast<index_t>(chunk_cols[static_cast<std::size_t>(i)].size());
  }
  const auto total = static_cast<std::size_t>(row_ptr.back());
  std::vector<index_t> cols(total);
  std::vector<T> vals(total);
  for (index_t i = 0; i < nrows; ++i) {
    const auto& oc = chunk_cols[static_cast<std::size_t>(i)];
    const auto& ov = chunk_vals[static_cast<std::size_t>(i)];
    std::copy(oc.begin(), oc.end(),
              cols.begin() + row_ptr[static_cast<std::size_t>(i)]);
    std::copy(ov.begin(), ov.end(),
              vals.begin() + row_ptr[static_cast<std::size_t>(i)]);
  }
  return Csr<T>(nrows, b.ncols(), std::move(row_ptr), std::move(cols),
                std::move(vals));
}

/// C = Aᵀ ⊕.⊗ B — the paper's product shape (A and B are both tall
/// edge×vertex incidence arrays). Transpose is counting-sort cheap
/// relative to the product, so this materializes Aᵀ and reuses spgemm.
template <typename P>
Csr<typename P::value_type> spgemm_at_b(
    const P& p, const Csr<typename P::value_type>& a,
    const Csr<typename P::value_type>& b,
    SpGemmAlgo algo = SpGemmAlgo::kGustavson,
    util::ThreadPool* pool = nullptr) {
  return spgemm(p, transpose(a), b, algo, pool);
}

}  // namespace i2a::sparse
