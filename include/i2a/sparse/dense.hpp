#pragma once
/// \file sparse/dense.hpp
/// \brief Dense arrays and the paper's *full* array-multiplication
///        semantics: `C(i,j) = ⊕_k A(i,k) ⊗ B(k,j)` folded over **every**
///        inner index, with absent entries standing in as the zero
///        element.
///
/// Sparse SpGEMM (sparse/spgemm.hpp) shortcuts the fold by skipping
/// zero⊗x terms — valid exactly when zero is a multiplicative annihilator
/// and the carrier is zero-sum-free with no zero divisors, which is what
/// Theorem II.1 requires. The validation sweep therefore runs *this*
/// literal implementation, so that non-conforming operator pairs (where
/// the shortcut would hide the breakage) fail honestly.

#include <cassert>
#include <vector>

#include "core/types.hpp"
#include "sparse/csr.hpp"

namespace i2a::sparse {

/// Minimal row-major dense matrix.
template <typename T>
class Dense {
 public:
  Dense(index_t nrows, index_t ncols, T fill)
      : nrows_(nrows),
        ncols_(ncols),
        data_(static_cast<std::size_t>(nrows) * static_cast<std::size_t>(ncols),
              fill) {}

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }

  T& at(index_t r, index_t c) {
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(ncols_) +
                 static_cast<std::size_t>(c)];
  }
  const T& at(index_t r, index_t c) const {
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(ncols_) +
                 static_cast<std::size_t>(c)];
  }

 private:
  index_t nrows_;
  index_t ncols_;
  std::vector<T> data_;
};

/// Expand a CSR matrix to dense, filling absent entries with `fill`
/// (the semiring's zero element when used for full-semantics products).
template <typename T>
Dense<T> to_dense(const Csr<T>& a, T fill) {
  Dense<T> d(a.nrows(), a.ncols(), fill);
  for (index_t r = 0; r < a.nrows(); ++r) {
    const auto cs = a.row_cols(r);
    const auto vs = a.row_vals(r);
    for (std::size_t k = 0; k < cs.size(); ++k) d.at(r, cs[k]) = vs[k];
  }
  return d;
}

/// The paper's literal product: fold ⊕ over *all* inner indices,
/// computing zero⊗x terms instead of assuming they vanish. Entries whose
/// final fold equals the zero element are not stored, so the result's
/// stored pattern is exactly the product's nonzero pattern.
template <typename P>
Csr<typename P::value_type> multiply_full_semantics(
    const P& p, const Csr<typename P::value_type>& a,
    const Csr<typename P::value_type>& b) {
  using T = typename P::value_type;
  assert(a.ncols() == b.nrows());
  const T zero = p.zero();
  const Dense<T> da = to_dense(a, zero);
  const Dense<T> db = to_dense(b, zero);
  Coo<T> out(a.nrows(), b.ncols());
  for (index_t i = 0; i < a.nrows(); ++i) {
    for (index_t j = 0; j < b.ncols(); ++j) {
      T acc = zero;
      for (index_t k = 0; k < a.ncols(); ++k) {
        acc = p.add(acc, p.mul(da.at(i, k), db.at(k, j)));
      }
      if (!(acc == zero)) out.push(i, j, acc);
    }
  }
  return Csr<T>::from_coo(std::move(out), DupPolicy::kKeepFirst);
}

}  // namespace i2a::sparse
