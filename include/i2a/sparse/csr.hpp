#pragma once
/// \file sparse/csr.hpp
/// \brief Compressed sparse row matrix, the workhorse storage for
///        incidence and adjacency arrays, plus `from_coo` assembly with
///        explicit duplicate policies and a counting-sort `transpose`.

#include <algorithm>
#include <cassert>
#include <span>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "sparse/coo.hpp"

namespace i2a::sparse {

/// What `from_coo` does when several pushed entries share one (row, col).
///
/// Incidence assembly mostly wants `kKeepFirst` (an edge endpoint has one
/// value); numeric accumulation wants `kSum`; the lattice semirings want
/// `kMax`/`kMin`.
enum class DupPolicy {
  kSum,        ///< combine duplicates with `+`
  kKeepFirst,  ///< first pushed entry wins
  kKeepLast,   ///< last pushed entry wins
  kMax,        ///< elementwise max
  kMin,        ///< elementwise min
};

template <typename T>
class Csr {
 public:
  Csr() : nrows_(0), ncols_(0), row_ptr_{0} {}

  Csr(index_t nrows, index_t ncols, std::vector<index_t> row_ptr,
      std::vector<index_t> cols, std::vector<T> vals)
      : nrows_(nrows),
        ncols_(ncols),
        row_ptr_(std::move(row_ptr)),
        cols_(std::move(cols)),
        vals_(std::move(vals)) {
    assert(row_ptr_.size() == static_cast<std::size_t>(nrows_) + 1);
    assert(cols_.size() == vals_.size());
  }

  /// Sort + deduplicate + compress a COO buffer. Column indices within
  /// each row come out strictly increasing.
  static Csr from_coo(Coo<T> coo, DupPolicy policy = DupPolicy::kSum) {
    auto& e = coo.entries();
    // Stable sort keeps push order within a (row, col) group, which is
    // what gives kKeepFirst / kKeepLast their meaning.
    std::stable_sort(e.begin(), e.end(),
                     [](const auto& a, const auto& b) {
                       return a.row != b.row ? a.row < b.row : a.col < b.col;
                     });
    std::vector<index_t> row_ptr(static_cast<std::size_t>(coo.nrows()) + 1, 0);
    std::vector<index_t> cols;
    std::vector<T> vals;
    cols.reserve(e.size());
    vals.reserve(e.size());
    for (std::size_t i = 0; i < e.size();) {
      const index_t r = e[i].row;
      const index_t c = e[i].col;
      assert(r >= 0 && r < coo.nrows() && c >= 0 && c < coo.ncols());
      T acc = e[i].val;
      std::size_t j = i + 1;
      for (; j < e.size() && e[j].row == r && e[j].col == c; ++j) {
        switch (policy) {
          case DupPolicy::kSum: acc = acc + e[j].val; break;
          case DupPolicy::kKeepFirst: break;
          case DupPolicy::kKeepLast: acc = e[j].val; break;
          case DupPolicy::kMax: acc = std::max(acc, e[j].val); break;
          case DupPolicy::kMin: acc = std::min(acc, e[j].val); break;
        }
      }
      cols.push_back(c);
      vals.push_back(acc);
      ++row_ptr[static_cast<std::size_t>(r) + 1];
      i = j;
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(coo.nrows()); ++r) {
      row_ptr[r + 1] += row_ptr[r];
    }
    return Csr(coo.nrows(), coo.ncols(), std::move(row_ptr), std::move(cols),
               std::move(vals));
  }

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  index_t nnz() const { return static_cast<index_t>(cols_.size()); }

  index_t row_nnz(index_t r) const {
    return row_ptr_[static_cast<std::size_t>(r) + 1] -
           row_ptr_[static_cast<std::size_t>(r)];
  }

  /// Column indices of row `r` (strictly increasing).
  std::span<const index_t> row_cols(index_t r) const {
    const auto b = static_cast<std::size_t>(row_ptr_[r]);
    const auto n = static_cast<std::size_t>(row_nnz(r));
    return std::span<const index_t>(cols_.data() + b, n);
  }

  /// Values of row `r`, parallel to `row_cols(r)`.
  std::span<const T> row_vals(index_t r) const {
    const auto b = static_cast<std::size_t>(row_ptr_[r]);
    const auto n = static_cast<std::size_t>(row_nnz(r));
    return std::span<const T>(vals_.data() + b, n);
  }

  /// Stored value at (r, c), or `missing` when the entry is absent.
  T at(index_t r, index_t c, T missing) const {
    const auto cs = row_cols(r);
    const auto it = std::lower_bound(cs.begin(), cs.end(), c);
    if (it == cs.end() || *it != c) return missing;
    return vals_[static_cast<std::size_t>(
        row_ptr_[r] + (it - cs.begin()))];
  }

  const std::vector<index_t>& row_ptr() const { return row_ptr_; }
  const std::vector<index_t>& cols() const { return cols_; }
  const std::vector<T>& vals() const { return vals_; }

 private:
  index_t nrows_;
  index_t ncols_;
  std::vector<index_t> row_ptr_;  // size nrows + 1
  std::vector<index_t> cols_;     // size nnz, sorted within each row
  std::vector<T> vals_;           // size nnz
};

/// Transpose via counting sort: O(nnz + nrows + ncols), output rows sorted.
template <typename T>
Csr<T> transpose(const Csr<T>& a) {
  std::vector<index_t> row_ptr(static_cast<std::size_t>(a.ncols()) + 1, 0);
  for (index_t i = 0; i < a.nnz(); ++i) {
    ++row_ptr[static_cast<std::size_t>(a.cols()[i]) + 1];
  }
  for (std::size_t c = 0; c < static_cast<std::size_t>(a.ncols()); ++c) {
    row_ptr[c + 1] += row_ptr[c];
  }
  std::vector<index_t> cols(static_cast<std::size_t>(a.nnz()));
  std::vector<T> vals(static_cast<std::size_t>(a.nnz()));
  std::vector<index_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (index_t r = 0; r < a.nrows(); ++r) {
    const auto cs = a.row_cols(r);
    const auto vs = a.row_vals(r);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      const auto slot = static_cast<std::size_t>(cursor[cs[k]]++);
      cols[slot] = r;
      vals[slot] = vs[k];
    }
  }
  return Csr<T>(a.ncols(), a.nrows(), std::move(row_ptr), std::move(cols),
                std::move(vals));
}

}  // namespace i2a::sparse
