#pragma once
/// \file sparse/csr.hpp
/// \brief Compressed sparse row matrix, the workhorse storage for
///        incidence and adjacency arrays, plus sort-free COO→CSR assembly
///        with explicit duplicate policies and a parallel counting-sort
///        `transpose` / `CscView`.
///
/// Assembly engine (PR 3). `from_coo` no longer comparison-sorts the
/// entry list. It mirrors the two-pass SpGEMM design (sparse/spgemm.hpp):
///
///   1. **count** — entry chunks build per-chunk row histograms;
///   2. **stitch** — one serial sweep turns the histograms into the
///      row-grouped staging pointer and per-chunk write cursors such
///      that chunk c's entries for a row land after every earlier
///      chunk's (the stable-scatter invariant);
///   3. **scatter** — each chunk walks its slice in push order and
///      writes entries straight into their row group. A row's staged
///      entries therefore sit in *global push order* regardless of how
///      the list was chunked, so the final bytes are independent of
///      pool size (serial included);
///   4. **order + fold** — per row, a stable sort by column in
///      chunk-local scratch followed by `DupPolicy` folding, compacted
///      in place. Stability keeps push order within a (row, col) group,
///      which is what gives `kKeepFirst`/`kKeepLast` their meaning; the
///      fold visits duplicates in push order, so even FP `kSum` matches
///      the reference bit for bit. Rows already strictly increasing
///      (the common duplicate-free ordered case) cost one scan and skip
///      both the sort and the fold.
///
/// Everything is O(nnz + nrows) — no O(nnz log nnz) comparison sort
/// anywhere — and a duplicate-free input returns the staging arrays
/// without a final compaction copy. The old stable-sort path survives as
/// `from_coo_reference` for differential tests and in-bench baselines.

#include <algorithm>
#include <cassert>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "sparse/coo.hpp"
#include "util/contract.hpp"
#include "util/thread_pool.hpp"

namespace i2a::sparse {

/// What `from_coo` does when several pushed entries share one (row, col).
///
/// Incidence assembly mostly wants `kKeepFirst` (an edge endpoint has one
/// value); numeric accumulation wants `kSum`; the lattice semirings want
/// `kMax`/`kMin`.
enum class DupPolicy {
  kSum,        ///< combine duplicates with `+`
  kKeepFirst,  ///< first pushed entry wins
  kKeepLast,   ///< last pushed entry wins
  kMax,        ///< elementwise max
  kMin,        ///< elementwise min
};

namespace detail {

/// Shared fork/join driver: serial when no multi-thread pool is given,
/// chunked otherwise, with per-chunk scratch stable across passes (the
/// decomposition is a pure function of (n, pool->size())).
template <typename Body>
void run_chunked(util::ThreadPool* pool, bool parallel, index_t n,
                 const Body& body) {
  if (n <= 0) return;
  if (parallel) {
    pool->parallel_for_chunks(n, body);
  } else {
    body(0, 0, n);
  }
}

/// Turn per-chunk bucket histograms into write cursors plus the final
/// bucket pointer, in one serial sweep. On entry `hist[c][b]` holds the
/// number of items chunk `c` owns for bucket `b`; on exit it is chunk
/// `c`'s first write slot for bucket `b` — chunk c's items land after
/// every earlier chunk's, which is exactly the stable-scatter invariant —
/// and `ptr[b]` / `ptr[nbuckets]` are the bucket starts / grand total.
inline void stitch_bucket_cursors(std::vector<std::vector<index_t>>& hist,
                                  std::vector<index_t>& ptr,
                                  index_t nbuckets) {
  index_t total = 0;
  for (index_t b = 0; b < nbuckets; ++b) {
    ptr[static_cast<std::size_t>(b)] = total;
    for (auto& h : hist) {
      const index_t cnt = h[static_cast<std::size_t>(b)];
      h[static_cast<std::size_t>(b)] = total;
      total += cnt;
    }
  }
  ptr[static_cast<std::size_t>(nbuckets)] = total;
}

/// Fold one column-sorted (col, val) run into a compact (cols, vals)
/// prefix per `policy`; returns the deduplicated length. The input is in
/// push order within each equal-column group, so the fold's left-to-right
/// accumulation reproduces `from_coo_reference` exactly (bitwise, even
/// for FP kSum).
template <typename T>
index_t fold_sorted_run(const std::vector<std::pair<index_t, T>>& run,
                        DupPolicy policy, index_t* cols, T* vals) {
  index_t w = 0;
  std::size_t i = 0;
  while (i < run.size()) {
    const index_t c = run[i].first;
    T acc = run[i].second;
    std::size_t j = i + 1;
    for (; j < run.size() && run[j].first == c; ++j) {
      switch (policy) {
        case DupPolicy::kSum: acc = acc + run[j].second; break;
        case DupPolicy::kKeepFirst: break;
        case DupPolicy::kKeepLast: acc = run[j].second; break;
        case DupPolicy::kMax: acc = std::max(acc, run[j].second); break;
        case DupPolicy::kMin: acc = std::min(acc, run[j].second); break;
      }
    }
    cols[static_cast<std::size_t>(w)] = c;
    vals[static_cast<std::size_t>(w)] = acc;
    ++w;
    i = j;
  }
  return w;
}

}  // namespace detail

template <typename T>
class Csr {
 public:
  Csr() : nrows_(0), ncols_(0), row_ptr_{0} {}

  Csr(index_t nrows, index_t ncols, std::vector<index_t> row_ptr,
      std::vector<index_t> cols, std::vector<T> vals)
      : nrows_(nrows),
        ncols_(ncols),
        row_ptr_(std::move(row_ptr)),
        cols_(std::move(cols)),
        vals_(std::move(vals)) {
    assert(row_ptr_.size() == static_cast<std::size_t>(nrows_) + 1);
    assert(cols_.size() == vals_.size());
  }

  /// Group + order + deduplicate + compress a COO buffer via the
  /// sort-free count/stitch/scatter/fold engine (file comment above).
  /// Column indices within each row come out strictly increasing, and
  /// the output is byte-identical for every pool size, serial included.
  static Csr from_coo(Coo<T> coo, DupPolicy policy = DupPolicy::kSum,
                      util::ThreadPool* pool = nullptr) {
    const auto& e = coo.entries();
    const index_t nrows = coo.nrows();
    const index_t nnz = static_cast<index_t>(e.size());
    std::vector<index_t> row_ptr(static_cast<std::size_t>(nrows) + 1, 0);
    if (nnz == 0) {
      return Csr(nrows, coo.ncols(), std::move(row_ptr), {}, {});
    }
    const bool parallel = pool != nullptr && pool->size() > 1;
    // Chunking passes 1–2 costs an nrows-sized histogram per chunk plus
    // an O(nrows * nchunks) stitch, which only pays when entries
    // dominate rows — for a hypersparse tall buffer (nnz << nrows) the
    // histograms would dwarf the scatter they organize, so those passes
    // run single-chunk there (pass 3 chunks over rows either way). The
    // staged layout is chunking-invariant, so the policy never changes
    // the bytes.
    const bool scatter_parallel = parallel && nnz >= nrows;
    const index_t echunks = scatter_parallel ? pool->num_chunks(nnz) : 1;

    // Pass 1 (count): per-chunk row histograms over the entry slices.
    std::vector<std::vector<index_t>> hist(
        static_cast<std::size_t>(echunks));
    detail::run_chunked(
        pool, scatter_parallel, nnz,
        [&](index_t chunk, index_t lo, index_t hi) {
          auto& h = hist[static_cast<std::size_t>(chunk)];
          h.assign(static_cast<std::size_t>(nrows), 0);
          for (index_t i = lo; i < hi; ++i) {
            const auto& en = e[static_cast<std::size_t>(i)];
            assert(en.row >= 0 && en.row < nrows && en.col >= 0 &&
                   en.col < coo.ncols());
            ++h[static_cast<std::size_t>(en.row)];
          }
        });

    // Stitch: histograms → staging row pointer + per-chunk cursors.
    detail::stitch_bucket_cursors(hist, row_ptr, nrows);

    // Pass 2 (stable scatter): push order within each row is preserved
    // globally (chunk cursors start after every earlier chunk's share).
    std::vector<index_t> cols(static_cast<std::size_t>(nnz));
    std::vector<T> vals(static_cast<std::size_t>(nnz));
    detail::run_chunked(
        pool, scatter_parallel, nnz,
        [&](index_t chunk, index_t lo, index_t hi) {
          auto& cur = hist[static_cast<std::size_t>(chunk)];
          for (index_t i = lo; i < hi; ++i) {
            const auto& en = e[static_cast<std::size_t>(i)];
            const auto slot = static_cast<std::size_t>(
                cur[static_cast<std::size_t>(en.row)]++);
            cols[slot] = en.col;
            vals[slot] = en.val;
          }
        });

    // Pass 3 (order + fold): per-row stable sort by column in
    // chunk-local scratch, DupPolicy folding compacted in place.
    // Already-strictly-increasing rows skip both.
    const index_t rchunks = parallel ? pool->num_chunks(nrows) : 1;
    std::vector<std::vector<std::pair<index_t, T>>> scratch(
        static_cast<std::size_t>(rchunks));
    std::vector<index_t> out_nnz(static_cast<std::size_t>(nrows), 0);
    detail::run_chunked(
        pool, parallel, nrows, [&](index_t chunk, index_t lo, index_t hi) {
          auto& buf = scratch[static_cast<std::size_t>(chunk)];
          for (index_t r = lo; r < hi; ++r) {
            const auto b = static_cast<std::size_t>(
                row_ptr[static_cast<std::size_t>(r)]);
            const auto len = static_cast<std::size_t>(
                row_ptr[static_cast<std::size_t>(r) + 1] -
                row_ptr[static_cast<std::size_t>(r)]);
            bool sorted_unique = true;
            for (std::size_t k = 1; k < len; ++k) {
              if (cols[b + k - 1] >= cols[b + k]) {
                sorted_unique = false;
                break;
              }
            }
            if (sorted_unique) {
              out_nnz[static_cast<std::size_t>(r)] =
                  static_cast<index_t>(len);
              continue;
            }
            buf.clear();
            for (std::size_t k = 0; k < len; ++k) {
              buf.emplace_back(cols[b + k], vals[b + k]);
            }
            std::stable_sort(
                buf.begin(), buf.end(),
                [](const auto& x, const auto& y) { return x.first < y.first; });
            out_nnz[static_cast<std::size_t>(r)] = detail::fold_sorted_run(
                buf, policy, cols.data() + b, vals.data() + b);
          }
        });

    // Stitch 2 + compaction. A duplicate-free input is already laid out
    // exactly right — hand the staging arrays straight out.
    index_t total = 0;
    for (index_t r = 0; r < nrows; ++r) {
      total += out_nnz[static_cast<std::size_t>(r)];
    }
    if (total == nnz) {
      Csr out(nrows, coo.ncols(), std::move(row_ptr), std::move(cols),
              std::move(vals));
      I2A_ENSURES(out.is_canonical(), "from_coo: non-canonical CSR");
      return out;
    }
    std::vector<index_t> fptr(static_cast<std::size_t>(nrows) + 1, 0);
    for (index_t r = 0; r < nrows; ++r) {
      fptr[static_cast<std::size_t>(r) + 1] =
          fptr[static_cast<std::size_t>(r)] +
          out_nnz[static_cast<std::size_t>(r)];
    }
    std::vector<index_t> fcols(static_cast<std::size_t>(total));
    std::vector<T> fvals(static_cast<std::size_t>(total));
    detail::run_chunked(
        pool, parallel, nrows, [&](index_t, index_t lo, index_t hi) {
          for (index_t r = lo; r < hi; ++r) {
            const auto src = static_cast<std::size_t>(
                row_ptr[static_cast<std::size_t>(r)]);
            const auto dst = static_cast<std::size_t>(
                fptr[static_cast<std::size_t>(r)]);
            const auto cnt = static_cast<std::size_t>(
                out_nnz[static_cast<std::size_t>(r)]);
            std::copy(cols.begin() + src, cols.begin() + src + cnt,
                      fcols.begin() + dst);
            std::copy(vals.begin() + src, vals.begin() + src + cnt,
                      fvals.begin() + dst);
          }
        });
    Csr out(nrows, coo.ncols(), std::move(fptr), std::move(fcols),
            std::move(fvals));
    I2A_ENSURES(out.is_canonical(), "from_coo: non-canonical CSR");
    return out;
  }

  /// The pre-PR-3 serial stable-sort assembly, kept verbatim as the
  /// differential-test oracle and the in-bench legacy baseline
  /// (`BM_ConstructLegacy_*`). Semantically identical to `from_coo` —
  /// including bitwise-identical FP kSum folds, since both visit a
  /// (row, col) group's duplicates in push order.
  static Csr from_coo_reference(Coo<T> coo,
                                DupPolicy policy = DupPolicy::kSum) {
    auto& e = coo.entries();
    // Stable sort keeps push order within a (row, col) group, which is
    // what gives kKeepFirst / kKeepLast their meaning.
    std::stable_sort(e.begin(), e.end(),
                     [](const auto& a, const auto& b) {
                       return a.row != b.row ? a.row < b.row : a.col < b.col;
                     });
    std::vector<index_t> row_ptr(static_cast<std::size_t>(coo.nrows()) + 1, 0);
    std::vector<index_t> cols;
    std::vector<T> vals;
    cols.reserve(e.size());
    vals.reserve(e.size());
    for (std::size_t i = 0; i < e.size();) {
      const index_t r = e[i].row;
      const index_t c = e[i].col;
      assert(r >= 0 && r < coo.nrows() && c >= 0 && c < coo.ncols());
      T acc = e[i].val;
      std::size_t j = i + 1;
      for (; j < e.size() && e[j].row == r && e[j].col == c; ++j) {
        switch (policy) {
          case DupPolicy::kSum: acc = acc + e[j].val; break;
          case DupPolicy::kKeepFirst: break;
          case DupPolicy::kKeepLast: acc = e[j].val; break;
          case DupPolicy::kMax: acc = std::max(acc, e[j].val); break;
          case DupPolicy::kMin: acc = std::min(acc, e[j].val); break;
        }
      }
      cols.push_back(c);
      vals.push_back(acc);
      ++row_ptr[static_cast<std::size_t>(r) + 1];
      i = j;
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(coo.nrows()); ++r) {
      row_ptr[r + 1] += row_ptr[r];
    }
    Csr out(coo.nrows(), coo.ncols(), std::move(row_ptr), std::move(cols),
            std::move(vals));
    I2A_ENSURES(out.is_canonical(), "from_coo_reference: non-canonical CSR");
    return out;
  }

  /// Validating factory: like the raw constructor but rejects malformed
  /// input with `std::invalid_argument` instead of trusting the caller.
  /// Use at ingestion boundaries; the kernels assume canonical CSR (the
  /// SpGEMM symbolic pass sizes rows by it, the heap merge and `at`'s
  /// binary search require sorted columns).
  static Csr checked(index_t nrows, index_t ncols,
                     std::vector<index_t> row_ptr, std::vector<index_t> cols,
                     std::vector<T> vals) {
    if (const char* why =
            invariant_violation(nrows, ncols, row_ptr, cols, vals.size())) {
      throw std::invalid_argument(std::string("Csr::checked: ") + why);
    }
    return Csr(nrows, ncols, std::move(row_ptr), std::move(cols),
               std::move(vals));
  }

  /// True iff the storage satisfies every invariant `checked` enforces
  /// (both call the same validator, so they can never disagree).
  bool is_canonical() const {
    return invariant_violation(nrows_, ncols_, row_ptr_, cols_,
                               vals_.size()) == nullptr;
  }

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  index_t nnz() const { return static_cast<index_t>(cols_.size()); }

  index_t row_nnz(index_t r) const {
    return row_ptr_[static_cast<std::size_t>(r) + 1] -
           row_ptr_[static_cast<std::size_t>(r)];
  }

  /// Column indices of row `r` (strictly increasing).
  std::span<const index_t> row_cols(index_t r) const {
    const auto b = static_cast<std::size_t>(row_ptr_[r]);
    const auto n = static_cast<std::size_t>(row_nnz(r));
    return std::span<const index_t>(cols_.data() + b, n);
  }

  /// Values of row `r`, parallel to `row_cols(r)`.
  std::span<const T> row_vals(index_t r) const {
    const auto b = static_cast<std::size_t>(row_ptr_[r]);
    const auto n = static_cast<std::size_t>(row_nnz(r));
    return std::span<const T>(vals_.data() + b, n);
  }

  /// Stored value at (r, c), or `missing` when the entry is absent.
  T at(index_t r, index_t c, T missing) const {
    const auto cs = row_cols(r);
    const auto it = std::lower_bound(cs.begin(), cs.end(), c);
    if (it == cs.end() || *it != c) return missing;
    return vals_[static_cast<std::size_t>(
        row_ptr_[r] + (it - cs.begin()))];
  }

  const std::vector<index_t>& row_ptr() const { return row_ptr_; }
  const std::vector<index_t>& cols() const { return cols_; }
  const std::vector<T>& vals() const { return vals_; }

 private:
  /// The one statement of the canonical-CSR invariants: returns nullptr
  /// when they all hold, else a description of the first violation.
  /// row_ptr is validated fully before cols is scanned, so a malformed
  /// row_ptr can never drive an out-of-bounds read.
  static const char* invariant_violation(index_t nrows, index_t ncols,
                                         const std::vector<index_t>& row_ptr,
                                         const std::vector<index_t>& cols,
                                         std::size_t vals_size) {
    if (nrows < 0 || ncols < 0) return "negative dimension";
    if (row_ptr.size() != static_cast<std::size_t>(nrows) + 1) {
      return "row_ptr size != nrows + 1";
    }
    if (cols.size() != vals_size) return "cols/vals size mismatch";
    if (row_ptr.front() != 0 ||
        row_ptr.back() != static_cast<index_t>(cols.size())) {
      return "row_ptr endpoints wrong";
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(nrows); ++r) {
      if (row_ptr[r] > row_ptr[r + 1]) return "row_ptr not monotone";
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(nrows); ++r) {
      for (index_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        const index_t c = cols[static_cast<std::size_t>(k)];
        if (c < 0 || c >= ncols) return "column out of range";
        if (k > row_ptr[r] && cols[static_cast<std::size_t>(k) - 1] >= c) {
          return "columns not strictly increasing within a row";
        }
      }
    }
    return nullptr;
  }

  index_t nrows_;
  index_t ncols_;
  std::vector<index_t> row_ptr_;  // size nrows + 1
  std::vector<index_t> cols_;     // size nnz, sorted within each row
  std::vector<T> vals_;           // size nnz
};

namespace detail {

/// Parallel counting sort over a Csr's columns — the shared engine of
/// `transpose` and the `CscView` constructor, which differ only in what
/// a slot stores. Per-chunk column histograms, one serial cursor stitch
/// (the stable-scatter invariant again), then a scatter that calls
/// `write(slot, r, idx)` for the entry at flat position `idx` of row
/// `r` landing at output position `slot`. Entries within an output
/// bucket stay in base-row order and the bytes are pool-size
/// independent.
template <typename T, typename Write>
void counting_sort_by_col(const Csr<T>& a, util::ThreadPool* pool,
                          std::vector<index_t>& ptr, const Write& write) {
  const bool parallel = pool != nullptr && pool->size() > 1 && a.nrows() > 0;
  const index_t nchunks =
      parallel ? pool->num_chunks(a.nrows()) : (a.nrows() > 0 ? 1 : 0);
  std::vector<std::vector<index_t>> hist(static_cast<std::size_t>(nchunks));
  run_chunked(
      pool, parallel, a.nrows(), [&](index_t chunk, index_t lo, index_t hi) {
        auto& h = hist[static_cast<std::size_t>(chunk)];
        h.assign(static_cast<std::size_t>(a.ncols()), 0);
        for (index_t r = lo; r < hi; ++r) {
          for (const index_t c : a.row_cols(r)) {
            ++h[static_cast<std::size_t>(c)];
          }
        }
      });
  stitch_bucket_cursors(hist, ptr, a.ncols());
  run_chunked(
      pool, parallel, a.nrows(), [&](index_t chunk, index_t lo, index_t hi) {
        auto& cur = hist[static_cast<std::size_t>(chunk)];
        for (index_t r = lo; r < hi; ++r) {
          const auto cs = a.row_cols(r);
          const index_t base = a.row_ptr()[static_cast<std::size_t>(r)];
          for (std::size_t k = 0; k < cs.size(); ++k) {
            const auto slot = static_cast<std::size_t>(
                cur[static_cast<std::size_t>(cs[k])]++);
            write(slot, r, base + static_cast<index_t>(k));
          }
        }
      });
}

}  // namespace detail

/// Transpose via counting sort: O(nnz + nrows + ncols), output rows
/// sorted (see `detail::counting_sort_by_col` for the parallel scheme).
template <typename T>
Csr<T> transpose(const Csr<T>& a, util::ThreadPool* pool = nullptr) {
  I2A_EXPECTS(a.is_canonical(), "transpose: input CSR not canonical");
  std::vector<index_t> row_ptr(static_cast<std::size_t>(a.ncols()) + 1, 0);
  std::vector<index_t> cols(static_cast<std::size_t>(a.nnz()));
  std::vector<T> vals(static_cast<std::size_t>(a.nnz()));
  detail::counting_sort_by_col(
      a, pool, row_ptr, [&](std::size_t slot, index_t r, index_t idx) {
        cols[slot] = r;
        vals[slot] = a.vals()[static_cast<std::size_t>(idx)];
      });
  Csr<T> out(a.ncols(), a.nrows(), std::move(row_ptr), std::move(cols),
             std::move(vals));
  I2A_ENSURES(out.is_canonical(), "transpose: non-canonical CSR");
  return out;
}

/// Column-major *view* of a Csr: the same counting sort as `transpose`,
/// but values are never copied — `val_idx_` maps each (col, row) slot
/// back into the base matrix's `vals()` array. Row `i` of the view is
/// column `i` of the base matrix with its row indices sorted increasing,
/// which is exactly the A-operand access pattern the fused AᵀB product
/// needs. Construction parallelizes with the count/stitch/scatter scheme
/// when a pool is given (bytes are pool-size independent). The view
/// borrows the base matrix: it must not outlive it.
template <typename T>
class CscView {
 public:
  explicit CscView(const Csr<T>& base, util::ThreadPool* pool = nullptr)
      : base_(&base),
        col_ptr_(static_cast<std::size_t>(base.ncols()) + 1, 0),
        row_idx_(static_cast<std::size_t>(base.nnz())),
        val_idx_(static_cast<std::size_t>(base.nnz())) {
    detail::counting_sort_by_col(
        base, pool, col_ptr_, [&](std::size_t slot, index_t r, index_t idx) {
          row_idx_[slot] = r;
          val_idx_[slot] = idx;
        });
  }

  /// Shape of the transposed operand this view represents (Aᵀ).
  index_t nrows() const { return base_->ncols(); }
  index_t ncols() const { return base_->nrows(); }

  index_t row_nnz(index_t i) const {
    return col_ptr_[static_cast<std::size_t>(i) + 1] -
           col_ptr_[static_cast<std::size_t>(i)];
  }

  /// Base-matrix row indices stored in column `i` (strictly increasing).
  std::span<const index_t> row_cols(index_t i) const {
    const auto b = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(i)]);
    return std::span<const index_t>(row_idx_.data() + b,
                                    static_cast<std::size_t>(row_nnz(i)));
  }

  /// Gather the values of view row `i` (base column `i`) into `scratch`
  /// and return a span over them, parallel to `row_cols(i)` — the bulk
  /// form the SpGEMM kernels use so the per-entry indirection through
  /// `val_idx_` happens once per row. (The CSR-rows counterpart returns
  /// its contiguous values directly without touching `scratch`.)
  std::span<const T> gather_row_vals(index_t i,
                                     std::vector<T>& scratch) const {
    const auto b = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(i)]);
    const auto n = static_cast<std::size_t>(row_nnz(i));
    const auto& base_vals = base_->vals();
    scratch.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      scratch[k] = base_vals[static_cast<std::size_t>(val_idx_[b + k])];
    }
    return std::span<const T>(scratch.data(), n);
  }

  /// Value parallel to `row_cols(i)[k]`, read through the base matrix.
  T row_val(index_t i, std::size_t k) const {
    return base_->vals()[static_cast<std::size_t>(
        val_idx_[static_cast<std::size_t>(
                     col_ptr_[static_cast<std::size_t>(i)]) +
                 k])];
  }

  const Csr<T>& base() const { return *base_; }

 private:
  const Csr<T>* base_;
  std::vector<index_t> col_ptr_;  // size base.ncols() + 1
  std::vector<index_t> row_idx_;  // size nnz, sorted within each column
  std::vector<index_t> val_idx_;  // permutation into base.vals()
};

}  // namespace i2a::sparse
