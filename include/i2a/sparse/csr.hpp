#pragma once
/// \file sparse/csr.hpp
/// \brief Compressed sparse row matrix, the workhorse storage for
///        incidence and adjacency arrays, plus `from_coo` assembly with
///        explicit duplicate policies and a counting-sort `transpose`.

#include <algorithm>
#include <cassert>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "sparse/coo.hpp"

namespace i2a::sparse {

/// What `from_coo` does when several pushed entries share one (row, col).
///
/// Incidence assembly mostly wants `kKeepFirst` (an edge endpoint has one
/// value); numeric accumulation wants `kSum`; the lattice semirings want
/// `kMax`/`kMin`.
enum class DupPolicy {
  kSum,        ///< combine duplicates with `+`
  kKeepFirst,  ///< first pushed entry wins
  kKeepLast,   ///< last pushed entry wins
  kMax,        ///< elementwise max
  kMin,        ///< elementwise min
};

template <typename T>
class Csr {
 public:
  Csr() : nrows_(0), ncols_(0), row_ptr_{0} {}

  Csr(index_t nrows, index_t ncols, std::vector<index_t> row_ptr,
      std::vector<index_t> cols, std::vector<T> vals)
      : nrows_(nrows),
        ncols_(ncols),
        row_ptr_(std::move(row_ptr)),
        cols_(std::move(cols)),
        vals_(std::move(vals)) {
    assert(row_ptr_.size() == static_cast<std::size_t>(nrows_) + 1);
    assert(cols_.size() == vals_.size());
  }

  /// Sort + deduplicate + compress a COO buffer. Column indices within
  /// each row come out strictly increasing.
  static Csr from_coo(Coo<T> coo, DupPolicy policy = DupPolicy::kSum) {
    auto& e = coo.entries();
    // Stable sort keeps push order within a (row, col) group, which is
    // what gives kKeepFirst / kKeepLast their meaning.
    std::stable_sort(e.begin(), e.end(),
                     [](const auto& a, const auto& b) {
                       return a.row != b.row ? a.row < b.row : a.col < b.col;
                     });
    std::vector<index_t> row_ptr(static_cast<std::size_t>(coo.nrows()) + 1, 0);
    std::vector<index_t> cols;
    std::vector<T> vals;
    cols.reserve(e.size());
    vals.reserve(e.size());
    for (std::size_t i = 0; i < e.size();) {
      const index_t r = e[i].row;
      const index_t c = e[i].col;
      assert(r >= 0 && r < coo.nrows() && c >= 0 && c < coo.ncols());
      T acc = e[i].val;
      std::size_t j = i + 1;
      for (; j < e.size() && e[j].row == r && e[j].col == c; ++j) {
        switch (policy) {
          case DupPolicy::kSum: acc = acc + e[j].val; break;
          case DupPolicy::kKeepFirst: break;
          case DupPolicy::kKeepLast: acc = e[j].val; break;
          case DupPolicy::kMax: acc = std::max(acc, e[j].val); break;
          case DupPolicy::kMin: acc = std::min(acc, e[j].val); break;
        }
      }
      cols.push_back(c);
      vals.push_back(acc);
      ++row_ptr[static_cast<std::size_t>(r) + 1];
      i = j;
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(coo.nrows()); ++r) {
      row_ptr[r + 1] += row_ptr[r];
    }
    return Csr(coo.nrows(), coo.ncols(), std::move(row_ptr), std::move(cols),
               std::move(vals));
  }

  /// Validating factory: like the raw constructor but rejects malformed
  /// input with `std::invalid_argument` instead of trusting the caller.
  /// Use at ingestion boundaries; the kernels assume canonical CSR (the
  /// SpGEMM symbolic pass sizes rows by it, the heap merge and `at`'s
  /// binary search require sorted columns).
  static Csr checked(index_t nrows, index_t ncols,
                     std::vector<index_t> row_ptr, std::vector<index_t> cols,
                     std::vector<T> vals) {
    if (const char* why =
            invariant_violation(nrows, ncols, row_ptr, cols, vals.size())) {
      throw std::invalid_argument(std::string("Csr::checked: ") + why);
    }
    return Csr(nrows, ncols, std::move(row_ptr), std::move(cols),
               std::move(vals));
  }

  /// True iff the storage satisfies every invariant `checked` enforces
  /// (both call the same validator, so they can never disagree).
  bool is_canonical() const {
    return invariant_violation(nrows_, ncols_, row_ptr_, cols_,
                               vals_.size()) == nullptr;
  }

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  index_t nnz() const { return static_cast<index_t>(cols_.size()); }

  index_t row_nnz(index_t r) const {
    return row_ptr_[static_cast<std::size_t>(r) + 1] -
           row_ptr_[static_cast<std::size_t>(r)];
  }

  /// Column indices of row `r` (strictly increasing).
  std::span<const index_t> row_cols(index_t r) const {
    const auto b = static_cast<std::size_t>(row_ptr_[r]);
    const auto n = static_cast<std::size_t>(row_nnz(r));
    return std::span<const index_t>(cols_.data() + b, n);
  }

  /// Values of row `r`, parallel to `row_cols(r)`.
  std::span<const T> row_vals(index_t r) const {
    const auto b = static_cast<std::size_t>(row_ptr_[r]);
    const auto n = static_cast<std::size_t>(row_nnz(r));
    return std::span<const T>(vals_.data() + b, n);
  }

  /// Stored value at (r, c), or `missing` when the entry is absent.
  T at(index_t r, index_t c, T missing) const {
    const auto cs = row_cols(r);
    const auto it = std::lower_bound(cs.begin(), cs.end(), c);
    if (it == cs.end() || *it != c) return missing;
    return vals_[static_cast<std::size_t>(
        row_ptr_[r] + (it - cs.begin()))];
  }

  const std::vector<index_t>& row_ptr() const { return row_ptr_; }
  const std::vector<index_t>& cols() const { return cols_; }
  const std::vector<T>& vals() const { return vals_; }

 private:
  /// The one statement of the canonical-CSR invariants: returns nullptr
  /// when they all hold, else a description of the first violation.
  /// row_ptr is validated fully before cols is scanned, so a malformed
  /// row_ptr can never drive an out-of-bounds read.
  static const char* invariant_violation(index_t nrows, index_t ncols,
                                         const std::vector<index_t>& row_ptr,
                                         const std::vector<index_t>& cols,
                                         std::size_t vals_size) {
    if (nrows < 0 || ncols < 0) return "negative dimension";
    if (row_ptr.size() != static_cast<std::size_t>(nrows) + 1) {
      return "row_ptr size != nrows + 1";
    }
    if (cols.size() != vals_size) return "cols/vals size mismatch";
    if (row_ptr.front() != 0 ||
        row_ptr.back() != static_cast<index_t>(cols.size())) {
      return "row_ptr endpoints wrong";
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(nrows); ++r) {
      if (row_ptr[r] > row_ptr[r + 1]) return "row_ptr not monotone";
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(nrows); ++r) {
      for (index_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        const index_t c = cols[static_cast<std::size_t>(k)];
        if (c < 0 || c >= ncols) return "column out of range";
        if (k > row_ptr[r] && cols[static_cast<std::size_t>(k) - 1] >= c) {
          return "columns not strictly increasing within a row";
        }
      }
    }
    return nullptr;
  }

  index_t nrows_;
  index_t ncols_;
  std::vector<index_t> row_ptr_;  // size nrows + 1
  std::vector<index_t> cols_;     // size nnz, sorted within each row
  std::vector<T> vals_;           // size nnz
};

/// Transpose via counting sort: O(nnz + nrows + ncols), output rows sorted.
template <typename T>
Csr<T> transpose(const Csr<T>& a) {
  std::vector<index_t> row_ptr(static_cast<std::size_t>(a.ncols()) + 1, 0);
  for (index_t i = 0; i < a.nnz(); ++i) {
    ++row_ptr[static_cast<std::size_t>(a.cols()[i]) + 1];
  }
  for (std::size_t c = 0; c < static_cast<std::size_t>(a.ncols()); ++c) {
    row_ptr[c + 1] += row_ptr[c];
  }
  std::vector<index_t> cols(static_cast<std::size_t>(a.nnz()));
  std::vector<T> vals(static_cast<std::size_t>(a.nnz()));
  std::vector<index_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (index_t r = 0; r < a.nrows(); ++r) {
    const auto cs = a.row_cols(r);
    const auto vs = a.row_vals(r);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      const auto slot = static_cast<std::size_t>(cursor[cs[k]]++);
      cols[slot] = r;
      vals[slot] = vs[k];
    }
  }
  return Csr<T>(a.ncols(), a.nrows(), std::move(row_ptr), std::move(cols),
                std::move(vals));
}

/// Column-major *view* of a Csr: the same counting sort as `transpose`,
/// but values are never copied — `val_idx_` maps each (col, row) slot
/// back into the base matrix's `vals()` array. Row `i` of the view is
/// column `i` of the base matrix with its row indices sorted increasing,
/// which is exactly the A-operand access pattern the fused AᵀB product
/// needs. The view borrows the base matrix: it must not outlive it.
template <typename T>
class CscView {
 public:
  explicit CscView(const Csr<T>& base)
      : base_(&base),
        col_ptr_(static_cast<std::size_t>(base.ncols()) + 1, 0),
        row_idx_(static_cast<std::size_t>(base.nnz())),
        val_idx_(static_cast<std::size_t>(base.nnz())) {
    for (index_t k = 0; k < base.nnz(); ++k) {
      ++col_ptr_[static_cast<std::size_t>(
                     base.cols()[static_cast<std::size_t>(k)]) +
                 1];
    }
    for (std::size_t c = 0; c < static_cast<std::size_t>(base.ncols()); ++c) {
      col_ptr_[c + 1] += col_ptr_[c];
    }
    std::vector<index_t> cursor(col_ptr_.begin(), col_ptr_.end() - 1);
    for (index_t r = 0; r < base.nrows(); ++r) {
      const auto cs = base.row_cols(r);
      const index_t base_offset = base.row_ptr()[static_cast<std::size_t>(r)];
      for (std::size_t k = 0; k < cs.size(); ++k) {
        const auto slot = static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(cs[k])]++);
        row_idx_[slot] = r;
        val_idx_[slot] = base_offset + static_cast<index_t>(k);
      }
    }
  }

  /// Shape of the transposed operand this view represents (Aᵀ).
  index_t nrows() const { return base_->ncols(); }
  index_t ncols() const { return base_->nrows(); }

  index_t row_nnz(index_t i) const {
    return col_ptr_[static_cast<std::size_t>(i) + 1] -
           col_ptr_[static_cast<std::size_t>(i)];
  }

  /// Base-matrix row indices stored in column `i` (strictly increasing).
  std::span<const index_t> row_cols(index_t i) const {
    const auto b = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(i)]);
    return std::span<const index_t>(row_idx_.data() + b,
                                    static_cast<std::size_t>(row_nnz(i)));
  }

  /// Gather the values of view row `i` (base column `i`) into `scratch`
  /// and return a span over them, parallel to `row_cols(i)` — the bulk
  /// form the SpGEMM kernels use so the per-entry indirection through
  /// `val_idx_` happens once per row. (The CSR-rows counterpart returns
  /// its contiguous values directly without touching `scratch`.)
  std::span<const T> gather_row_vals(index_t i,
                                     std::vector<T>& scratch) const {
    const auto b = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(i)]);
    const auto n = static_cast<std::size_t>(row_nnz(i));
    const auto& base_vals = base_->vals();
    scratch.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      scratch[k] = base_vals[static_cast<std::size_t>(val_idx_[b + k])];
    }
    return std::span<const T>(scratch.data(), n);
  }

  /// Value parallel to `row_cols(i)[k]`, read through the base matrix.
  T row_val(index_t i, std::size_t k) const {
    return base_->vals()[static_cast<std::size_t>(
        val_idx_[static_cast<std::size_t>(
                     col_ptr_[static_cast<std::size_t>(i)]) +
                 k])];
  }

  const Csr<T>& base() const { return *base_; }

 private:
  const Csr<T>* base_;
  std::vector<index_t> col_ptr_;  // size base.ncols() + 1
  std::vector<index_t> row_idx_;  // size nnz, sorted within each column
  std::vector<index_t> val_idx_;  // permutation into base.vals()
};

}  // namespace i2a::sparse
