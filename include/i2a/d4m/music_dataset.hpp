#pragma once
/// \file d4m/music_dataset.hpp
/// \brief The Figure 1 Kitten music database: 22 tracks with Artist,
///        Date, Duration, Genre, and Writer fields, exploded into a
///        22 × 31 sparse associative array.
///
/// This is the reproduction's transcription of the paper's running D4M
/// example (the band Kitten's catalogue plus the collaborator tracks that
/// bring in the Bandayde and Zedd artists): each track carries exactly
/// one Artist/Date/Duration/Genre cell and one-to-three Writer cells, for
/// 31 distinct `field|value` columns and 134 nonzeros. The derived
/// sub-arrays E1 (genres) and E2 (writers) and the Figure 4 re-weighting
/// (Pop→2, Rock→3) are built from it exactly as the figure captions
/// describe.

#include <string>
#include <vector>

#include "core/associative_array.hpp"
#include "core/selection.hpp"
#include "d4m/explode.hpp"

namespace i2a::d4m {

struct MusicTrack {
  const char* title;
  const char* artist;
  const char* date;
  const char* duration;
  const char* genre;
  std::vector<const char*> writers;
};

/// The dense music table (alphabetical by title, as the figure lists it).
inline const std::vector<MusicTrack>& music_tracks() {
  static const std::vector<MusicTrack> tracks = {
      {"Apples & Cherries", "Kitten", "2010", "3:05", "Rock",
       {"Chloe Chaidez", "Chad Anderson"}},
      {"Chinatown", "Kitten", "2010", "3:40", "Rock",
       {"Chloe Chaidez", "Julian Chaidez"}},
      {"Christina", "Kitten", "2011", "3:12", "Rock",
       {"Chloe Chaidez", "Chad Anderson"}},
      {"Clarity", "Zedd", "2012", "4:31", "Electronic",
       {"Zedd", "Matthew Koma"}},
      {"Cut It Out", "Kitten", "2012", "3:26", "Pop",
       {"Chloe Chaidez", "Nick Johns"}},
      {"Cut It Out (Bandayde Remix)", "Bandayde", "2012", "4:02",
       "Electronic", {"Chloe Chaidez", "Bandayde"}},
      {"Doubt", "Kitten", "2013", "3:05", "Pop",
       {"Chloe Chaidez", "Greg Kurstin"}},
      {"G#", "Kitten", "2012", "2:59", "Pop",
       {"Chloe Chaidez", "Nick Johns", "Chad Anderson"}},
      {"Graffiti Soul", "Kitten", "2014", "4:31", "Rock",
       {"Chloe Chaidez", "Waylon Rector"}},
      {"I'll Be Your Girl", "Kitten", "2013", "3:12", "Pop",
       {"Chloe Chaidez", "Dave Gibson"}},
      {"Japanese Eyes", "Kitten", "2012", "4:02", "Electronic",
       {"Chloe Chaidez", "Julian Chaidez"}},
      {"Junk", "Kitten", "2010", "2:30", "Rock",
       {"Chloe Chaidez", "Julian Chaidez"}},
      {"Kill the Light", "Kitten", "2011", "3:40", "Rock",
       {"Chloe Chaidez", "Chad Anderson", "Julian Chaidez"}},
      {"Kitten with a Whip", "Kitten", "2011", "2:30", "Rock",
       {"Chloe Chaidez"}},
      {"Like a Stranger", "Kitten", "2013", "3:26", "Pop",
       {"Chloe Chaidez", "Dave Gibson", "Bryan Way"}},
      {"Like a Stranger (Bandayde Remix)", "Bandayde", "2013", "4:31",
       "Electronic", {"Chloe Chaidez", "Bandayde"}},
      {"Sensible", "Kitten", "2014", "3:05", "Pop",
       {"Chloe Chaidez", "Lukas Frank"}},
      {"Spectrum", "Zedd", "2012", "4:02", "Electronic",
       {"Zedd", "Matthew Koma"}},
      {"Stay the Night", "Zedd", "2013", "3:40", "Electronic",
       {"Zedd", "Matthew Koma"}},
      {"Sugar", "Kitten", "2012", "3:12", "Pop",
       {"Chloe Chaidez", "Nick Johns"}},
      {"Why I Wait", "Kitten", "2013", "3:26", "Rock",
       {"Chloe Chaidez", "Waylon Rector"}},
      {"Yesterday", "Kitten", "2014", "2:59", "Rock",
       {"Chloe Chaidez", "Lukas Frank"}},
  };
  return tracks;
}

/// Figure 1: E = explode(music table), 22 × 31 with unit entries.
inline core::AssocArrayD music_incidence_array() {
  std::vector<TableCell> cells;
  for (const auto& t : music_tracks()) {
    cells.push_back(TableCell{t.title, "Artist", t.artist});
    cells.push_back(TableCell{t.title, "Date", t.date});
    cells.push_back(TableCell{t.title, "Duration", t.duration});
    cells.push_back(TableCell{t.title, "Genre", t.genre});
    for (const char* w : t.writers) {
      cells.push_back(TableCell{t.title, "Writer", w});
    }
  }
  return explode(cells);
}

/// Figure 2: E1 = E(:, 'Genre|A : Genre|Z').
inline core::AssocArrayD music_e1() {
  return core::select(music_incidence_array(), ":", "Genre|A : Genre|Z");
}

/// Figure 2: E2 = E(:, 'Writer|A : Writer|Z').
inline core::AssocArrayD music_e2() {
  return core::select(music_incidence_array(), ":", "Writer|A : Writer|Z");
}

/// Figure 4: E1 with Genre|Pop entries re-weighted to 2 and Genre|Rock
/// entries to 3 (Electronic stays 1).
inline core::AssocArrayD music_e1_weighted() {
  const auto e1 = music_e1();
  auto triples = e1.triples();
  for (auto& t : triples) {
    if (t.col == "Genre|Pop") t.val = 2.0;
    if (t.col == "Genre|Rock") t.val = 3.0;
  }
  return core::AssocArrayD::from_triples(triples,
                                         sparse::DupPolicy::kKeepFirst);
}

}  // namespace i2a::d4m
