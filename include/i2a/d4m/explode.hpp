#pragma once
/// \file d4m/explode.hpp
/// \brief The D4M "explode" transform: a dense table with (row, field,
///        value) cells becomes a sparse associative array whose columns
///        are `field|value` pairs — the step that turns the music table
///        into the Figure 1 incidence array E.

#include <string>
#include <vector>

#include "core/associative_array.hpp"

namespace i2a::d4m {

struct TableCell {
  std::string row;
  std::string field;
  std::string value;
};

/// Explode table cells into an associative array: entry
/// (row, field|value) = `entry_value` for every cell. A row with two
/// cells in one field (e.g. two writers) simply gets two nonzeros —
/// that's the D4M multi-value convention.
inline core::AssocArrayD explode(const std::vector<TableCell>& cells,
                                 double entry_value = 1.0) {
  std::vector<core::KeyedTriple<double>> triples;
  triples.reserve(cells.size());
  for (const auto& c : cells) {
    triples.push_back(
        core::KeyedTriple<double>{c.row, c.field + "|" + c.value, entry_value});
  }
  return core::AssocArrayD::from_triples(triples,
                                         sparse::DupPolicy::kKeepFirst);
}

}  // namespace i2a::d4m
