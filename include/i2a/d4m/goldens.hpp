#pragma once
/// \file d4m/goldens.hpp
/// \brief Golden data for Figures 1–5, transcribed *independently* of the
///        generator in music_dataset.hpp — double-entry bookkeeping for
///        the reproduction. The fig binaries regenerate each artifact
///        through the library (explode → select → keyed product) and
///        diff it against these literals.
///
/// Figure 3/5 goldens are stored as the published +.* count array (how
/// many tracks in genre g credit writer w) plus the figures' per-pair
/// closed forms over those counts with all-ones (Fig 3) or Pop→2/Rock→3
/// (Fig 5) incidence weights. For constant per-genre weight q and n
/// co-occurrences the published arrays are:
///   +.* : n·q    max.* / min.* : q    max.+ / min.+ : q + 1
///   max.min : 1  min.max : q
/// which the DESIGN.md §3.1 policy derivation spells out.

#include <stdexcept>
#include <string>
#include <vector>

#include "core/associative_array.hpp"

namespace i2a::d4m::golden {

/// Figure 1 row key set: the 22 track titles, lexicographic.
inline const std::vector<std::string>& fig1_row_keys() {
  static const std::vector<std::string> keys = {
      "Apples & Cherries",
      "Chinatown",
      "Christina",
      "Clarity",
      "Cut It Out",
      "Cut It Out (Bandayde Remix)",
      "Doubt",
      "G#",
      "Graffiti Soul",
      "I'll Be Your Girl",
      "Japanese Eyes",
      "Junk",
      "Kill the Light",
      "Kitten with a Whip",
      "Like a Stranger",
      "Like a Stranger (Bandayde Remix)",
      "Sensible",
      "Spectrum",
      "Stay the Night",
      "Sugar",
      "Why I Wait",
      "Yesterday",
  };
  return keys;
}

/// Figure 1 column key set: the 31 `field|value` columns, lexicographic.
inline const std::vector<std::string>& fig1_col_keys() {
  static const std::vector<std::string> keys = {
      "Artist|Bandayde",
      "Artist|Kitten",
      "Artist|Zedd",
      "Date|2010",
      "Date|2011",
      "Date|2012",
      "Date|2013",
      "Date|2014",
      "Duration|2:30",
      "Duration|2:59",
      "Duration|3:05",
      "Duration|3:12",
      "Duration|3:26",
      "Duration|3:40",
      "Duration|4:02",
      "Duration|4:31",
      "Genre|Electronic",
      "Genre|Pop",
      "Genre|Rock",
      "Writer|Bandayde",
      "Writer|Bryan Way",
      "Writer|Chad Anderson",
      "Writer|Chloe Chaidez",
      "Writer|Dave Gibson",
      "Writer|Greg Kurstin",
      "Writer|Julian Chaidez",
      "Writer|Lukas Frank",
      "Writer|Matthew Koma",
      "Writer|Nick Johns",
      "Writer|Waylon Rector",
      "Writer|Zedd",
  };
  return keys;
}

/// Figure 1 per-row nonzero counts, aligned with fig1_row_keys(): four
/// single-valued fields plus one entry per writer credit.
inline const std::vector<index_t>& fig1_row_nnz() {
  static const std::vector<index_t> nnz = {
      6, 6, 6, 6, 6, 6, 6, 7, 6, 6, 6, 6, 7, 5, 7, 6, 6, 6, 6, 6, 6, 6,
  };
  return nnz;
}

namespace detail {

struct GenreCell {
  const char* track;
  const char* genre;
};

struct WriterCell {
  const char* track;
  const char* writer;
};

/// Figure 2 E1 as published: each track's single genre mark.
inline const std::vector<GenreCell>& genre_cells() {
  static const std::vector<GenreCell> cells = {
      {"Apples & Cherries", "Rock"},
      {"Chinatown", "Rock"},
      {"Christina", "Rock"},
      {"Clarity", "Electronic"},
      {"Cut It Out", "Pop"},
      {"Cut It Out (Bandayde Remix)", "Electronic"},
      {"Doubt", "Pop"},
      {"G#", "Pop"},
      {"Graffiti Soul", "Rock"},
      {"I'll Be Your Girl", "Pop"},
      {"Japanese Eyes", "Electronic"},
      {"Junk", "Rock"},
      {"Kill the Light", "Rock"},
      {"Kitten with a Whip", "Rock"},
      {"Like a Stranger", "Pop"},
      {"Like a Stranger (Bandayde Remix)", "Electronic"},
      {"Sensible", "Pop"},
      {"Spectrum", "Electronic"},
      {"Stay the Night", "Electronic"},
      {"Sugar", "Pop"},
      {"Why I Wait", "Rock"},
      {"Yesterday", "Rock"},
  };
  return cells;
}

/// Figure 2 E2 as published: the 46 writer credits.
inline const std::vector<WriterCell>& writer_cells() {
  static const std::vector<WriterCell> cells = {
      {"Apples & Cherries", "Chad Anderson"},
      {"Apples & Cherries", "Chloe Chaidez"},
      {"Chinatown", "Chloe Chaidez"},
      {"Chinatown", "Julian Chaidez"},
      {"Christina", "Chad Anderson"},
      {"Christina", "Chloe Chaidez"},
      {"Clarity", "Matthew Koma"},
      {"Clarity", "Zedd"},
      {"Cut It Out", "Chloe Chaidez"},
      {"Cut It Out", "Nick Johns"},
      {"Cut It Out (Bandayde Remix)", "Bandayde"},
      {"Cut It Out (Bandayde Remix)", "Chloe Chaidez"},
      {"Doubt", "Chloe Chaidez"},
      {"Doubt", "Greg Kurstin"},
      {"G#", "Chad Anderson"},
      {"G#", "Chloe Chaidez"},
      {"G#", "Nick Johns"},
      {"Graffiti Soul", "Chloe Chaidez"},
      {"Graffiti Soul", "Waylon Rector"},
      {"I'll Be Your Girl", "Chloe Chaidez"},
      {"I'll Be Your Girl", "Dave Gibson"},
      {"Japanese Eyes", "Chloe Chaidez"},
      {"Japanese Eyes", "Julian Chaidez"},
      {"Junk", "Chloe Chaidez"},
      {"Junk", "Julian Chaidez"},
      {"Kill the Light", "Chad Anderson"},
      {"Kill the Light", "Chloe Chaidez"},
      {"Kill the Light", "Julian Chaidez"},
      {"Kitten with a Whip", "Chloe Chaidez"},
      {"Like a Stranger", "Bryan Way"},
      {"Like a Stranger", "Chloe Chaidez"},
      {"Like a Stranger", "Dave Gibson"},
      {"Like a Stranger (Bandayde Remix)", "Bandayde"},
      {"Like a Stranger (Bandayde Remix)", "Chloe Chaidez"},
      {"Sensible", "Chloe Chaidez"},
      {"Sensible", "Lukas Frank"},
      {"Spectrum", "Matthew Koma"},
      {"Spectrum", "Zedd"},
      {"Stay the Night", "Matthew Koma"},
      {"Stay the Night", "Zedd"},
      {"Sugar", "Chloe Chaidez"},
      {"Sugar", "Nick Johns"},
      {"Why I Wait", "Chloe Chaidez"},
      {"Why I Wait", "Waylon Rector"},
      {"Yesterday", "Chloe Chaidez"},
      {"Yesterday", "Lukas Frank"},
  };
  return cells;
}

struct ProductCell {
  const char* genre;
  const char* writer;
  double count;  ///< the published +.* (all-ones) entry
};

/// The Figure 3 +.* array: tracks in genre g credited to writer w.
inline const std::vector<ProductCell>& product_counts() {
  static const std::vector<ProductCell> cells = {
      {"Electronic", "Bandayde", 2},
      {"Electronic", "Chloe Chaidez", 3},
      {"Electronic", "Julian Chaidez", 1},
      {"Electronic", "Matthew Koma", 3},
      {"Electronic", "Zedd", 3},
      {"Pop", "Bryan Way", 1},
      {"Pop", "Chad Anderson", 1},
      {"Pop", "Chloe Chaidez", 7},
      {"Pop", "Dave Gibson", 2},
      {"Pop", "Greg Kurstin", 1},
      {"Pop", "Lukas Frank", 1},
      {"Pop", "Nick Johns", 3},
      {"Rock", "Chad Anderson", 3},
      {"Rock", "Chloe Chaidez", 9},
      {"Rock", "Julian Chaidez", 3},
      {"Rock", "Lukas Frank", 1},
      {"Rock", "Waylon Rector", 2},
  };
  return cells;
}

/// Figure 4/5 genre weights (Fig 3 uses all-ones).
inline double genre_weight(const std::string& genre) {
  if (genre == "Pop") return 2.0;
  if (genre == "Rock") return 3.0;
  return 1.0;
}

/// The per-pair closed form for one product entry: per-genre weight q on
/// every E1 entry, all-ones E2, n co-occurring tracks.
inline double product_value(const std::string& pair_name, double q,
                            double n) {
  if (pair_name == "+.*") return n * q;
  if (pair_name == "max.*" || pair_name == "min.*") return q;
  if (pair_name == "max.+" || pair_name == "min.+") return q + 1.0;
  if (pair_name == "max.min") return 1.0;
  if (pair_name == "min.max") return q;
  throw std::invalid_argument("no golden for operator pair: " + pair_name);
}

}  // namespace detail

/// Figure 2 E1 golden triples (all-ones genre incidence).
inline std::vector<core::KeyedTriple<double>> fig2_e1_triples() {
  std::vector<core::KeyedTriple<double>> out;
  for (const auto& c : detail::genre_cells()) {
    out.push_back(core::KeyedTriple<double>{
        c.track, std::string("Genre|") + c.genre, 1.0});
  }
  return out;
}

/// Figure 2 E2 golden triples (all-ones writer incidence).
inline std::vector<core::KeyedTriple<double>> fig2_e2_triples() {
  std::vector<core::KeyedTriple<double>> out;
  for (const auto& c : detail::writer_cells()) {
    out.push_back(core::KeyedTriple<double>{
        c.track, std::string("Writer|") + c.writer, 1.0});
  }
  return out;
}

/// Figure 4 E1 golden triples: Pop entries 2, Rock entries 3.
inline std::vector<core::KeyedTriple<double>> fig4_e1_triples() {
  std::vector<core::KeyedTriple<double>> out;
  for (const auto& c : detail::genre_cells()) {
    out.push_back(core::KeyedTriple<double>{
        c.track, std::string("Genre|") + c.genre,
        detail::genre_weight(c.genre)});
  }
  return out;
}

enum class ProductFigure {
  kFig3,  ///< all-ones E1
  kFig5,  ///< Pop→2 / Rock→3 E1
};

/// Golden triples for one E1ᵀ ⊕.⊗ E2 array of Figure 3 or 5.
inline std::vector<core::KeyedTriple<double>> product_triples(
    ProductFigure fig, const std::string& pair_name) {
  std::vector<core::KeyedTriple<double>> out;
  for (const auto& c : detail::product_counts()) {
    const double q =
        fig == ProductFigure::kFig5 ? detail::genre_weight(c.genre) : 1.0;
    out.push_back(core::KeyedTriple<double>{
        std::string("Genre|") + c.genre, std::string("Writer|") + c.writer,
        detail::product_value(pair_name, q, c.count)});
  }
  return out;
}

}  // namespace i2a::d4m::golden
