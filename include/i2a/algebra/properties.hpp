#pragma once
/// \file algebra/properties.hpp
/// \brief Empirical property checkers for the Theorem II.1 conditions,
///        quantified over a finite carrier sample.
///
/// A pair ⊕.⊗ over carrier V is *conforming* (sufficient for
/// pattern-exact adjacency construction) when:
///   * ⊕ is associative and commutative with identity 0,
///   * ⊗ is associative with 0 as a two-sided annihilator,
///   * V is zero-sum-free   (x ⊕ y = 0 ⟹ x = y = 0),
///   * V has no zero divisors (x ⊗ y = 0 ⟹ x = 0 or y = 0).
///
/// The checkers record a concrete witness for each violated condition;
/// algebra/counterexamples.hpp then turns every witness into the lemma's
/// two-or-three vertex graph and demonstrates the product actually breaks
/// (the necessity direction of the sweep).

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "algebra/carriers.hpp"

namespace i2a::algebra {

/// Approximate equality: exact for discrete carriers, tolerant of benign
/// rounding for floating-point ones (infinities compare exactly).
template <typename T>
bool near(T a, T b) {
  if constexpr (std::is_floating_point_v<T>) {
    if (a == b) return true;
    if (std::isinf(a) || std::isinf(b)) return false;
    const T scale = std::max({T(1), std::abs(a), std::abs(b)});
    return std::abs(a - b) <= T(1e-9) * scale;
  } else {
    return a == b;
  }
}

template <typename T>
struct Witness {
  bool found = false;
  T x{};
  T y{};
};

/// Concrete violation witnesses harvested by check_properties.
template <typename T>
struct PropertyWitnesses {
  Witness<T> zero_sum;         ///< x ⊕ y = 0 with x, y ≠ 0
  Witness<T> zero_divisor;     ///< x ⊗ y = 0 with x, y ≠ 0
  Witness<T> non_annihilator;  ///< x with 0 ⊗ x ≠ 0 or x ⊗ 0 ≠ 0
};

struct PropertyReport {
  bool add_assoc = true;
  bool add_comm = true;
  bool mul_assoc = true;
  bool mul_comm = true;
  bool zero_identity = true;
  bool zero_annihilator = true;
  bool zero_sum_free = true;
  bool no_zero_divisors = true;
  bool distributive = true;  ///< reported, not required by the theorem

  bool conforming() const {
    return add_assoc && add_comm && mul_assoc && zero_identity &&
           zero_annihilator && zero_sum_free && no_zero_divisors;
  }
};

/// Check every Theorem II.1 condition over all sample pairs/triples of
/// the carrier. `witnesses` (optional) receives the first concrete
/// violation found for each lemma-relevant condition.
template <typename P>
PropertyReport check_properties(
    const P& p, const Carrier<typename P::value_type>& carrier,
    PropertyWitnesses<typename P::value_type>* witnesses = nullptr) {
  using T = typename P::value_type;
  PropertyReport rep;
  const T zero = p.zero();
  const auto& s = carrier.samples;

  for (const T a : s) {
    if (!near(p.add(zero, a), a) || !near(p.add(a, zero), a)) {
      rep.zero_identity = false;
    }
    if (!near(p.mul(zero, a), zero) || !near(p.mul(a, zero), zero)) {
      rep.zero_annihilator = false;
      if (witnesses && !witnesses->non_annihilator.found && !near(a, zero)) {
        witnesses->non_annihilator = {true, a, zero};
      }
    }
  }

  for (const T a : s) {
    for (const T b : s) {
      if (!near(p.add(a, b), p.add(b, a))) rep.add_comm = false;
      if (!near(p.mul(a, b), p.mul(b, a))) rep.mul_comm = false;
      if (!near(a, zero) && !near(b, zero)) {
        if (near(p.add(a, b), zero)) {
          rep.zero_sum_free = false;
          if (witnesses && !witnesses->zero_sum.found) {
            witnesses->zero_sum = {true, a, b};
          }
        }
        if (near(p.mul(a, b), zero)) {
          rep.no_zero_divisors = false;
          if (witnesses && !witnesses->zero_divisor.found) {
            witnesses->zero_divisor = {true, a, b};
          }
        }
      }
    }
  }

  for (const T a : s) {
    for (const T b : s) {
      for (const T c : s) {
        if (!near(p.add(p.add(a, b), c), p.add(a, p.add(b, c)))) {
          rep.add_assoc = false;
        }
        if (!near(p.mul(p.mul(a, b), c), p.mul(a, p.mul(b, c)))) {
          rep.mul_assoc = false;
        }
        if (!near(p.mul(a, p.add(b, c)),
                  p.add(p.mul(a, b), p.mul(a, c)))) {
          rep.distributive = false;
        }
      }
    }
  }
  return rep;
}

}  // namespace i2a::algebra
