#pragma once
/// \file algebra/carriers.hpp
/// \brief Carrier (value-set) samples for the property checkers.
///
/// Theorem II.1's conditions are statements about an operator pair *over a
/// carrier set*: max.+ conforms over ℝ∪{-∞} but not over ℝ≥0. A Carrier
/// is a named finite sample of its set — including the pair's zero, the
/// extremal elements, and the "troublemakers" (opposite-sign pairs,
/// disjoint sets) that witness violated lemmas. The checkers quantify over
/// samples, so a carrier must contain the elements that matter; the ones
/// below are chosen so every violated property of the Section III
/// non-examples is witnessed.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "algebra/set_algebra.hpp"

namespace i2a::algebra {

template <typename T>
struct Carrier {
  std::string name;
  std::vector<T> samples;
};

namespace carriers {

inline Carrier<double> nonneg_reals() {
  return {"nonnegative reals", {0.0, 0.25, 0.5, 1.0, 2.5, 3.0, 7.5, 100.0}};
}

inline Carrier<double> pos_reals_with_inf() {
  constexpr double inf = std::numeric_limits<double>::infinity();
  return {"positive reals + inf", {0.25, 0.5, 1.0, 2.5, 3.0, 7.5, 100.0, inf}};
}

inline Carrier<double> reals_with_neg_inf() {
  constexpr double inf = std::numeric_limits<double>::infinity();
  return {"reals + -inf", {-inf, -7.5, -2.5, -1.0, 0.0, 1.0, 2.5, 7.5}};
}

inline Carrier<double> reals_with_pos_inf() {
  constexpr double inf = std::numeric_limits<double>::infinity();
  return {"reals + inf", {-7.5, -2.5, -1.0, 0.0, 1.0, 2.5, 7.5, inf}};
}

inline Carrier<double> nonneg_reals_with_inf() {
  constexpr double inf = std::numeric_limits<double>::infinity();
  return {"nonnegative reals + inf", {0.0, 0.25, 0.5, 1.0, 2.5, 7.5, inf}};
}

inline Carrier<double> all_reals() {
  // Contains x and -x so the zero-sum witness x + (-x) = 0 is sampled.
  return {"all reals", {-7.5, -2.5, -1.0, 0.0, 1.0, 2.5, 7.5}};
}

inline Carrier<std::uint8_t> gf2() { return {"GF(2)", {0, 1}}; }

inline Carrier<std::uint64_t> bitsets(int nbits) {
  return {"subsets of " + sets::to_string(sets::full_mask(nbits)),
          sets::all_subsets(nbits)};
}

}  // namespace carriers
}  // namespace i2a::algebra
