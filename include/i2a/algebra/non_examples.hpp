#pragma once
/// \file algebra/non_examples.hpp
/// \brief The Section III non-examples: operator pairs that look like
///        reasonable semirings but violate one of the algebraic
///        conditions of Theorem II.1, so Eᵀout ⊕.⊗ Ein can mis-state the
///        adjacency pattern. Each one breaks a *different* lemma:
///
///   SignedPlusTimes      — carrier not zero-sum-free (x + (-x) = 0)
///   GaloisF2             — xor.and over GF(2): 1 ⊕ 1 = 0 (zero sums)
///   MaxPlusNonNeg        — max.+ over ℝ≥0: zero = 0 is not a ⊗-annihilator
///   BitsetUnionIntersect — ∪.∩: disjoint nonempty sets are zero divisors

#include <algorithm>
#include <cstdint>
#include <string_view>

#include "algebra/concepts.hpp"
#include "algebra/set_algebra.hpp"

namespace i2a::algebra {

/// +.* over *all* reals. Conforms over ℝ≥0 (Table I), but once signed
/// values are admitted, opposite-signed parallel edges can cancel to an
/// exact zero and delete an existing edge from the product.
template <typename T>
struct SignedPlusTimes {
  using value_type = T;
  /// Declared carrier violation (algebra/concepts.hpp): fails
  /// ConformingPair, still a Semiring — the ⊕/⊗ laws themselves hold.
  static constexpr bool zero_sum_free = false;
  static constexpr std::string_view name() { return "+.* (signed)"; }
  constexpr T zero() const { return T(0); }
  constexpr T one() const { return T(1); }
  constexpr T add(T a, T b) const { return a + b; }
  constexpr T mul(T a, T b) const { return a * b; }
};

/// GF(2): ⊕ = xor, ⊗ = and over {0, 1}. A field, yet not zero-sum-free —
/// any even number of parallel edges annihilates itself.
struct GaloisF2 {
  using value_type = std::uint8_t;
  /// A field, hence a semiring — but declared not zero-sum-free, so it
  /// fails ConformingPair (and is the negative case for InvertibleAdd
  /// *with* inverses once retraction lands: GF(2) is its own inverse).
  static constexpr bool zero_sum_free = false;
  static constexpr std::string_view name() { return "xor.and (GF2)"; }
  constexpr std::uint8_t zero() const { return 0; }
  constexpr std::uint8_t one() const { return 1; }
  constexpr std::uint8_t add(std::uint8_t a, std::uint8_t b) const {
    return static_cast<std::uint8_t>((a ^ b) & 1u);
  }
  constexpr std::uint8_t mul(std::uint8_t a, std::uint8_t b) const {
    return static_cast<std::uint8_t>(a & b & 1u);
  }
};

/// max.+ restricted to the nonnegative reals. The natural candidate zero
/// (0, the max-identity on ℝ≥0) fails to annihilate under ⊗ = +, so the
/// full fold smears every out-edge value across the whole row: spurious
/// adjacency entries at non-edges. (Conforming max.+ needs -∞, Table I.)
template <typename T>
struct MaxPlusNonNeg {
  using value_type = T;
  /// Declared operator-law violation: the designated zero does not
  /// ⊗-annihilate, so this pair fails `Semiring` and the SpGEMM /
  /// adjacency entry points reject it at compile time
  /// (tests/compile_fail/ pins the rejection). The validation sweep
  /// reaches it only through the unconstrained dense full-semantics
  /// baseline — which is exactly the path that demonstrates the
  /// breakage.
  static constexpr bool mul_annihilates = false;
  static constexpr std::string_view name() { return "max.+ (nonneg)"; }
  constexpr T zero() const { return T(0); }
  constexpr T one() const { return T(0); }
  constexpr T add(T a, T b) const { return std::max(a, b); }
  constexpr T mul(T a, T b) const { return a + b; }
};

/// Subsets of {0..nbits-1} under ⊕ = ∪, ⊗ = ∩. A bounded distributive
/// lattice with identity ∅ and annihilator ∅ — but full of zero divisors.
class BitsetUnionIntersect {
 public:
  using value_type = std::uint64_t;
  /// Declared carrier violation: disjoint nonempty sets ⊗-annihilate
  /// each other, so the pair fails ConformingPair (still a semiring —
  /// a bounded distributive lattice).
  static constexpr bool no_zero_divisors = false;

  explicit BitsetUnionIntersect(int nbits) : nbits_(nbits) {}

  std::string_view name() const { return "union.intersect"; }
  std::uint64_t zero() const { return 0; }
  std::uint64_t one() const { return sets::full_mask(nbits_); }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const { return a | b; }
  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const { return a & b; }
  int nbits() const { return nbits_; }

 private:
  int nbits_;
};

}  // namespace i2a::algebra
