#pragma once
/// \file algebra/any_pair.hpp
/// \brief Type-erased operator pair over double, so the figure binaries
///        can iterate "for each of the paper's seven pairs" at runtime.
///
/// AnyPairD satisfies the same concept as the templated pairs (value_type,
/// name, zero, one, add, mul), so every kernel templated on a pair accepts
/// it unchanged — at the cost of a std::function indirection per operation
/// (measured by the erasure ablation in bench_semiring_overhead).

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/pairs.hpp"

namespace i2a::algebra {

class AnyPairD {
 public:
  using value_type = double;

  AnyPairD(std::string name, double zero, double one,
           std::function<double(double, double)> add,
           std::function<double(double, double)> mul)
      : name_(std::move(name)),
        zero_(zero),
        one_(one),
        add_(std::move(add)),
        mul_(std::move(mul)) {}

  /// Erase any double-valued pair.
  template <typename P>
  static AnyPairD from(const P& p) {
    static_assert(std::is_same_v<typename P::value_type, double>);
    return AnyPairD(std::string(p.name()), p.zero(), p.one(),
                    [p](double a, double b) { return p.add(a, b); },
                    [p](double a, double b) { return p.mul(a, b); });
  }

  std::string_view name() const { return name_; }
  double zero() const { return zero_; }
  double one() const { return one_; }
  double add(double a, double b) const { return add_(a, b); }
  double mul(double a, double b) const { return mul_(a, b); }

 private:
  std::string name_;
  double zero_;
  double one_;
  std::function<double(double, double)> add_;
  std::function<double(double, double)> mul_;
};

/// The seven conforming pairs of Table I, in the paper's figure order.
inline const std::vector<AnyPairD>& paper_pairs() {
  static const std::vector<AnyPairD> pairs = {
      AnyPairD::from(PlusTimes<double>{}),  AnyPairD::from(MaxTimes<double>{}),
      AnyPairD::from(MinTimes<double>{}),   AnyPairD::from(MaxPlus<double>{}),
      AnyPairD::from(MinPlus<double>{}),    AnyPairD::from(MaxMin<double>{}),
      AnyPairD::from(MinMax<double>{}),
  };
  return pairs;
}

}  // namespace i2a::algebra
