#pragma once
/// \file algebra/pairs.hpp
/// \brief The seven conforming operator pairs ⊕.⊗ of Table I.
///
/// Each pair is a stateless compile-time functor exposing the uniform
/// interface the kernels template over:
///
///   using value_type = T;
///   name()  — display name matching the goldens ("+.*", "max.min", ...)
///   zero()  — the additive identity / multiplicative annihilator 0
///   one()   — the multiplicative identity (used for unweighted incidence
///             and for building counterexample incidence values)
///   add(a,b), mul(a,b) — ⊕ and ⊗
///
/// The associated carrier sets (algebra/carriers.hpp) matter: e.g. max.*
/// conforms over the nonnegative reals but not over all reals. The pairs
/// here only make sense paired with their Table I carriers, which is what
/// the validation sweep checks.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string_view>

namespace i2a::algebra {

template <typename T>
struct PlusTimes {
  using value_type = T;
  static constexpr std::string_view name() { return "+.*"; }
  constexpr T zero() const { return T(0); }
  constexpr T one() const { return T(1); }
  constexpr T add(T a, T b) const { return a + b; }
  constexpr T mul(T a, T b) const { return a * b; }
};

template <typename T>
struct MaxTimes {
  using value_type = T;
  static constexpr std::string_view name() { return "max.*"; }
  constexpr T zero() const { return T(0); }
  constexpr T one() const { return T(1); }
  constexpr T add(T a, T b) const { return std::max(a, b); }
  constexpr T mul(T a, T b) const { return a * b; }
};

template <typename T>
struct MinTimes {
  using value_type = T;
  static constexpr std::string_view name() { return "min.*"; }
  constexpr T zero() const { return std::numeric_limits<T>::infinity(); }
  constexpr T one() const { return T(1); }
  constexpr T add(T a, T b) const { return std::min(a, b); }
  constexpr T mul(T a, T b) const { return a * b; }
};

template <typename T>
struct MaxPlus {
  using value_type = T;
  static constexpr std::string_view name() { return "max.+"; }
  constexpr T zero() const { return -std::numeric_limits<T>::infinity(); }
  constexpr T one() const { return T(0); }
  constexpr T add(T a, T b) const { return std::max(a, b); }
  constexpr T mul(T a, T b) const { return a + b; }
};

template <typename T>
struct MinPlus {
  using value_type = T;
  static constexpr std::string_view name() { return "min.+"; }
  constexpr T zero() const { return std::numeric_limits<T>::infinity(); }
  constexpr T one() const { return T(0); }
  constexpr T add(T a, T b) const { return std::min(a, b); }
  constexpr T mul(T a, T b) const { return a + b; }
};

template <typename T>
struct MaxMin {
  using value_type = T;
  static constexpr std::string_view name() { return "max.min"; }
  constexpr T zero() const { return T(0); }
  constexpr T one() const { return std::numeric_limits<T>::infinity(); }
  constexpr T add(T a, T b) const { return std::max(a, b); }
  constexpr T mul(T a, T b) const { return std::min(a, b); }
};

template <typename T>
struct MinMax {
  using value_type = T;
  static constexpr std::string_view name() { return "min.max"; }
  constexpr T zero() const { return std::numeric_limits<T>::infinity(); }
  constexpr T one() const { return T(0); }
  constexpr T add(T a, T b) const { return std::min(a, b); }
  constexpr T mul(T a, T b) const { return std::max(a, b); }
};

/// Boolean pattern algebra on uint8 — the narrow-value ablation subject
/// in bench_semiring_overhead (and a conforming pair over {0, 1}).
struct OrAndU8 {
  using value_type = std::uint8_t;
  static constexpr std::string_view name() { return "or.and"; }
  constexpr std::uint8_t zero() const { return 0; }
  constexpr std::uint8_t one() const { return 1; }
  constexpr std::uint8_t add(std::uint8_t a, std::uint8_t b) const {
    return a | b;
  }
  constexpr std::uint8_t mul(std::uint8_t a, std::uint8_t b) const {
    return a & b;
  }
};

}  // namespace i2a::algebra
