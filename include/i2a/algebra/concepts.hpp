#pragma once
/// \file algebra/concepts.hpp
/// \brief Compile-time algebra contracts for the kernel entry points.
///
/// Two layers, because C++ can check two different things at compile
/// time:
///
///   1. **Structure** — `AlgebraPair<P>` requires the uniform operator
///      interface every kernel templates over (`value_type`, `name`,
///      `zero`, `one`, `add`, `mul` with the right signatures). A pair
///      missing `mul`, or whose `add` returns the wrong type, now fails
///      at the kernel's signature with a named concept in the
///      diagnostic, instead of pages deep inside the engine.
///
///   2. **Declared semantics** — associativity, commutativity,
///      distributivity and the annihilator law are not decidable at
///      compile time, so they are *declared*: a pair may carry
///      `static constexpr bool add_commutative = false;` (etc.) to state
///      which laws it breaks. Undeclared laws default to `true`, the
///      Table I convention — every paper pair conforms, and the
///      type-erased `AnyPairD` cannot know at compile time. The Section
///      III non-examples declare exactly the law they violate
///      (algebra/non_examples.hpp), which is how the negative compile
///      tests (tests/compile_fail/) prove the constraints bite.
///
/// The concept hierarchy mirrors the paper's conditions (Theorem II.1,
/// and the ⊕/⊗ contracts made explicit in the GraphBLAS foundations
/// paper, PAPERS.md 1606.05790):
///
///   AlgebraPair          structural interface only
///   CommutativeMonoidAdd + ⊕ associative and commutative with identity 0
///   Semiring             + ⊗ associative, 0 annihilates, ⊗ distributes
///   ConformingPair       + carrier zero-sum-free, no zero divisors
///                          (the full Theorem II.1 hypothesis; carrier
///                          laws stay empirically checked by
///                          algebra/properties.hpp and the sweep)
///   InvertibleAdd        CommutativeMonoidAdd + a `sub` hook (⊕ has
///                          inverses) — the static gate for the planned
///                          tombstone/edge-deletion work (ROADMAP), so
///                          retraction APIs can reject min/max algebras
///                          at compile time.
///
/// Kernel constraints: `merge` needs only `CommutativeMonoidAdd` (⊗
/// never appears in a ⊕-merge); `spgemm`, `spgemm_at_b`,
/// `adjacency_array`, `build_adjacency` and `AdjacencyBuilder` need
/// `Semiring`. The dense full-semantics baseline intentionally accepts
/// any structural `AlgebraPair` — demonstrating what the product does
/// *without* the theorem's hypotheses is its whole job.

#include <concepts>
#include <string_view>

namespace i2a::algebra {

/// The structural operator-pair interface (layer 1 above).
template <typename P>
concept AlgebraPair =
    requires(const P p, const typename P::value_type v) {
      typename P::value_type;
      { p.zero() } -> std::convertible_to<typename P::value_type>;
      { p.one() } -> std::convertible_to<typename P::value_type>;
      { p.add(v, v) } -> std::convertible_to<typename P::value_type>;
      { p.mul(v, v) } -> std::convertible_to<typename P::value_type>;
      { p.name() } -> std::convertible_to<std::string_view>;
    };

namespace detail {

/// Read a pair's declared semantic flag, defaulting to true when the
/// pair does not declare it (Table I convention; see file comment).
#define I2A_DECLARED_LAW_(trait, member)                          \
  template <typename P>                                           \
  inline constexpr bool trait = [] {                              \
    if constexpr (requires { P::member; }) {                      \
      return static_cast<bool>(P::member);                        \
    } else {                                                      \
      return true;                                                \
    }                                                             \
  }()

I2A_DECLARED_LAW_(add_associative_v, add_associative);
I2A_DECLARED_LAW_(add_commutative_v, add_commutative);
I2A_DECLARED_LAW_(mul_associative_v, mul_associative);
I2A_DECLARED_LAW_(mul_annihilates_v, mul_annihilates);
I2A_DECLARED_LAW_(mul_distributes_v, mul_distributes);
I2A_DECLARED_LAW_(zero_sum_free_v, zero_sum_free);
I2A_DECLARED_LAW_(no_zero_divisors_v, no_zero_divisors);

#undef I2A_DECLARED_LAW_

}  // namespace detail

/// ⊕ forms a commutative monoid with identity zero() — the contract the
/// k-way ⊕-merge and the ladder compaction rely on (fold order may be
/// regrouped across batches).
template <typename P>
concept CommutativeMonoidAdd =
    AlgebraPair<P> && detail::add_associative_v<P> &&
    detail::add_commutative_v<P>;

/// Full ⊕.⊗ semiring contract: what the SpGEMM engines require so the
/// per-row fold (whose grouping differs per accumulator) is well-defined
/// and the sparse shortcut can skip absent⊗absent terms.
template <typename P>
concept Semiring =
    CommutativeMonoidAdd<P> && detail::mul_associative_v<P> &&
    detail::mul_annihilates_v<P> && detail::mul_distributes_v<P>;

/// The complete Theorem II.1 hypothesis, carrier laws included. Not
/// required by the kernels (carrier laws are empirical, checked by
/// algebra/properties.hpp); available for callers that want the static
/// declaration as documentation.
template <typename P>
concept ConformingPair = Semiring<P> && detail::zero_sum_free_v<P> &&
                         detail::no_zero_divisors_v<P>;

/// ⊕ additionally has inverses, exposed as `sub(a, b)` with
/// a = add(sub(a, b), b). No shipped pair provides it yet — this is the
/// compile-time gate for the ROADMAP tombstone/edge-retraction work,
/// where only invertible ⊕ (e.g. +) admits per-edge deletion and the
/// lattice algebras must be rejected statically.
template <typename P>
concept InvertibleAdd =
    CommutativeMonoidAdd<P> &&
    requires(const P p, const typename P::value_type v) {
      { p.sub(v, v) } -> std::convertible_to<typename P::value_type>;
    };

}  // namespace i2a::algebra
