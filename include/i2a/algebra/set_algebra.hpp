#pragma once
/// \file algebra/set_algebra.hpp
/// \brief Finite power-set carrier helpers for the union.intersect
///        non-example: subsets of {0, ..., nbits-1} packed into uint64
///        bitmasks, ⊕ = ∪, ⊗ = ∩, zero = ∅.
///
/// Union/intersect over a power set *is* a perfectly good distributive
/// lattice — what disqualifies it for adjacency construction is that it
/// has zero divisors (two disjoint nonempty sets intersect to ∅), so an
/// existing edge can vanish from Eᵀout ⊕.⊗ Ein. See Section III of the
/// paper and the validation sweep.

#include <cstdint>
#include <string>
#include <vector>

namespace i2a::algebra::sets {

/// Bitmask with the low `nbits` bits set — the universe set.
inline std::uint64_t full_mask(int nbits) {
  return nbits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << nbits) - 1);
}

/// All 2^nbits subsets of the universe, ∅ first.
inline std::vector<std::uint64_t> all_subsets(int nbits) {
  std::vector<std::uint64_t> out;
  const std::uint64_t n = std::uint64_t{1} << nbits;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t s = 0; s < n; ++s) out.push_back(s);
  return out;
}

/// "{0,2}"-style rendering for diagnostics.
inline std::string to_string(std::uint64_t set) {
  std::string out = "{";
  bool first = true;
  for (int b = 0; b < 64; ++b) {
    if (set & (std::uint64_t{1} << b)) {
      if (!first) out += ',';
      out += std::to_string(b);
      first = false;
    }
  }
  out += '}';
  return out;
}

}  // namespace i2a::algebra::sets
