#pragma once
/// \file algebra/counterexamples.hpp
/// \brief Turn each property-violation witness into the lemma's concrete
///        graph and *demonstrate* the product breaks — the necessity
///        direction of the validation sweep.
///
/// The constructions mirror the lemmas behind Theorem II.1:
///   * zero-sum witness x ⊕ y = 0  →  two parallel edges whose per-edge
///     products are x and y; the fold cancels and the edge vanishes.
///   * zero-divisor witness x ⊗ y = 0  →  one edge with incidence values
///     x and y; the single product term is zero and the edge vanishes.
///   * annihilator witness 0 ⊗ x ≠ 0  →  one edge plus an isolated
///     vertex; the full fold's zero⊗x terms leak a spurious entry at a
///     non-edge.
///
/// Each returned record reports whether the lemma graph actually broke
/// Definition I.5 under the *full* (dense) product semantics.

#include <string>
#include <vector>

#include "algebra/properties.hpp"
#include "graph/graph.hpp"
#include "graph/incidence.hpp"
#include "graph/validators.hpp"
#include "sparse/dense.hpp"

namespace i2a::algebra {

struct Counterexample {
  std::string property;    ///< which lemma the construction targets
  bool is_counterexample;  ///< the lemma graph broke the product pattern
};

namespace detail {

/// Full-semantics product of hand-placed incidence values, checked
/// against Definition I.5.
template <typename P>
bool product_breaks(const P& p, const graph::Graph& g,
                    const std::vector<typename P::value_type>& out_vals,
                    const std::vector<typename P::value_type>& in_vals) {
  using T = typename P::value_type;
  sparse::Coo<T> eout(g.num_edges(), g.num_vertices());
  sparse::Coo<T> ein(g.num_edges(), g.num_vertices());
  for (index_t e = 0; e < g.num_edges(); ++e) {
    eout.push(e, g.edges()[static_cast<std::size_t>(e)].src,
              out_vals[static_cast<std::size_t>(e)]);
    ein.push(e, g.edges()[static_cast<std::size_t>(e)].dst,
             in_vals[static_cast<std::size_t>(e)]);
  }
  const auto a = sparse::multiply_full_semantics(
      p,
      sparse::transpose(
          sparse::Csr<T>::from_coo(std::move(eout),
                                   sparse::DupPolicy::kKeepFirst)),
      sparse::Csr<T>::from_coo(std::move(ein), sparse::DupPolicy::kKeepFirst));
  return !graph::is_adjacency_of(a, g, p.zero()).ok;
}

}  // namespace detail

/// Build and evaluate a lemma counterexample for every violation witness
/// recorded by check_properties. Pairs with no witnesses return an empty
/// list (there is nothing to refute — the conforming case).
template <typename P>
std::vector<Counterexample> counterexamples_from_witnesses(
    const P& p, const PropertyWitnesses<typename P::value_type>& w) {
  using T = typename P::value_type;
  std::vector<Counterexample> out;

  if (w.zero_sum.found && !(p.one() == p.zero())) {
    // Two parallel edges 0 → 1; per-edge products one⊗x = x and
    // one⊗y = y, so A(0,1) folds to x ⊕ y = zero: the edge disappears.
    graph::Graph g(2);
    g.add_edge(0, 1);
    g.add_edge(0, 1);
    out.push_back(Counterexample{
        "zero-sum",
        detail::product_breaks(p, g, {p.one(), p.one()},
                               {w.zero_sum.x, w.zero_sum.y})});
  }

  if (w.zero_divisor.found) {
    // A single edge 0 → 1 with incidence values x and y: its only
    // product term is x ⊗ y = zero, so the edge disappears.
    graph::Graph g(2);
    g.add_edge(0, 1);
    out.push_back(Counterexample{
        "zero-divisor",
        detail::product_breaks(p, g, std::vector<T>{w.zero_divisor.x},
                               std::vector<T>{w.zero_divisor.y})});
  }

  if (w.non_annihilator.found) {
    // One edge 0 → 1 plus an isolated vertex 2. Under full semantics
    // A(0,2) = x ⊗ zero, which the broken annihilator leaves nonzero:
    // a spurious adjacency at a non-edge.
    graph::Graph g(3);
    g.add_edge(0, 1);
    const T x = w.non_annihilator.x;
    out.push_back(Counterexample{
        "annihilator",
        detail::product_breaks(p, g, std::vector<T>{x}, std::vector<T>{x})});
  }

  return out;
}

}  // namespace i2a::algebra
