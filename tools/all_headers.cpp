/// \file tools/all_headers.cpp
/// \brief One TU that includes every public header. Two jobs: (1) an
///        include-hygiene check — every header must be self-contained
///        and mutually compatible in a single TU under the strict
///        warning set; (2) the `lint` target's input — clang-tidy walks
///        this file to see the whole header surface at once (the
///        headers are header-only, so no other TU covers them all).
///        Keep the list in sync with include/i2a (sorted, like `find`).

#include "algebra/any_pair.hpp"
#include "algebra/carriers.hpp"
#include "algebra/concepts.hpp"
#include "algebra/counterexamples.hpp"
#include "algebra/non_examples.hpp"
#include "algebra/pairs.hpp"
#include "algebra/properties.hpp"
#include "algebra/set_algebra.hpp"
#include "core/associative_array.hpp"
#include "core/multiply.hpp"
#include "core/printing.hpp"
#include "core/selection.hpp"
#include "core/types.hpp"
#include "d4m/explode.hpp"
#include "d4m/goldens.hpp"
#include "d4m/music_dataset.hpp"
#include "graph/algorithms/apsp.hpp"
#include "graph/algorithms/bfs.hpp"
#include "graph/algorithms/pagerank.hpp"
#include "graph/algorithms/sssp.hpp"
#include "graph/algorithms/triangles.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/incidence.hpp"
#include "graph/validators.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/merge.hpp"
#include "sparse/spgemm.hpp"
#include "stream/adjacency_builder.hpp"
#include "stream/checkpoint.hpp"
#include "stream/pinned_snapshot.hpp"
#include "stream/sharded_builder.hpp"
#include "stream/wal.hpp"
#include "util/contract.hpp"
#include "util/failpoint.hpp"
#include "util/io.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

int main() { return 0; }
