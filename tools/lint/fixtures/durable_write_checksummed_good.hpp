// Clean fixture for rule `durable-write-checksummed`: the shapes the
// rule must NOT flag on the durable path — the raw write(2) inside the
// one sanctioned site (File::write_fully), calls routed through the
// frame writer, and declarations of methods that merely *contain* the
// word write.
#pragma once

#include <cstddef>
#include <vector>

#include <unistd.h>

struct GoodFile {
  int fd = -1;

  // The single sanctioned raw-write site: the frame writer's backend.
  // Its body is exempt by name, mirroring File::write_fully in
  // util/io.hpp.
  void write_fully(const void* data, std::size_t len) {
    const char* p = static_cast<const char*>(data);
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, p + off, len - off);
      if (n > 0) off += static_cast<std::size_t>(n);
    }
  }

  // A declaration whose name embeds `write` is not a raw call.
  void write_frame(const std::vector<unsigned char>& payload) {
    write_fully(payload.data(), payload.size());
  }
};

// Durable appends that go through the frame writer: every byte gets a
// length prefix and a CRC32C, so recovery can classify the tail.
inline void append_record(GoodFile& f,
                          const std::vector<unsigned char>& payload) {
  f.write_frame(payload);
}
