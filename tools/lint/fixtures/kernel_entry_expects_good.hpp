// Clean twin for rule `kernel-entry-expects`: the kernels open with
// I2A_EXPECTS, a forwarding overload carries the documented allow
// marker (the real-tree shape: sparse/merge.hpp's shared_ptr overload),
// and *calls* to kernel-named functions are not declarations.
#pragma once

#define I2A_EXPECTS(cond, msg) static_cast<void>(0)

inline int spgemm(int n) {
  I2A_EXPECTS(n >= 0, "spgemm: negative dimension");
  return n * 2;
}

inline int transpose(int n) {
  I2A_EXPECTS(n >= 0, "transpose: negative dimension");
  return n;
}

// i2a-lint: allow(kernel-entry-expects): forwarding overload — the
// contract is checked by the kernel it immediately calls.
template <typename T>
int spgemm(const T& shaped) {
  return spgemm(shaped.n);
}

inline int use_kernels(int n) {
  return spgemm(n) + transpose(n);
}
