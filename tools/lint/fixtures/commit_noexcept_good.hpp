// Clean twin for rule `commit-noexcept`: the commit phase is noexcept,
// and a *call* to a commit function (not a declaration) must not be
// flagged — the self-test fails on any finding in this file.
#pragma once

struct Prepared {
  int delta = 0;
};

struct Builder {
  void commit_publish(Prepared&& prep) noexcept { applied += prep.delta; }

  int applied = 0;
};

inline void publish_all(Builder& b, Prepared&& prep) {
  b.commit_publish(static_cast<Prepared&&>(prep));
}
