// Seeded violation for rule `kernel-entry-expects`: a kernel entry
// point whose body never validates its inputs with I2A_EXPECTS — the
// kernel-boundary contract (DESIGN.md) says validation happens at the
// entry, not in callers.
#pragma once

#define I2A_EXPECTS(cond, msg) static_cast<void>(0)

// lint-expect: kernel-entry-expects
inline int spgemm(int n) {
  return n * 2;
}
