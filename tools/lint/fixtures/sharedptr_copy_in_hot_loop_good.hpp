// Clean twin for rule `sharedptr-copy-in-hot-loop`: the caller's
// handles already pin the runs, so the loop holds raw pointers and
// references — no refcount traffic. References *to* shared_ptr and
// shared_ptr nested inside a by-reference container type are fine.
#pragma once

#include <memory>
#include <vector>

struct Csr {
  int nnz = 0;
};

inline int fold_row(const std::vector<std::shared_ptr<const Csr>>& runs) {
  int total = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Csr* pinned = runs[i].get();
    total += pinned->nnz;
  }
  return total;
}

inline int for_each_in_row(
    const std::vector<std::shared_ptr<const Csr>>& runs) {
  int total = 0;
  for (const std::shared_ptr<const Csr>& run : runs) {
    total += run->nnz;
  }
  return total;
}
