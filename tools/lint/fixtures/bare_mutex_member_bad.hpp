// Seeded violation for rule `bare-mutex-member`: a raw std::mutex
// member the thread-safety analysis cannot see. Every mutex in the tree
// must be a util::Mutex (the annotated capability wrapper).
#pragma once

#include <mutex>

struct Ladder {
  // lint-expect: bare-mutex-member
  mutable std::mutex mu;

  int runs = 0;
};
