// Clean twin for rule `bare-mutex-member`: the documented escape — an
// `i2a-lint: allow(...)` marker with a reason — suppresses the finding
// (this is the util/sync.hpp shape: the one legitimate raw mutex is the
// capability wrapper's own storage). Mentioning std::mutex in comments
// or using it as a template argument is not a member declaration and
// must not be flagged either.
#pragma once

#include <mutex>

struct CapabilityWrapper {
  // i2a-lint: allow(bare-mutex-member): fixture twin of util::Mutex —
  // the wrapper's own storage is the one legitimate raw mutex.
  std::mutex mu;
};

inline void wait_shape(CapabilityWrapper& w) {
  std::unique_lock<std::mutex> relock(w.mu, std::try_to_lock);
}
