// Seeded violation for rule `commit-noexcept`: a commit-phase function
// without the noexcept declaration the two-phase publish contract
// requires. The self-test fails if the linter misses this.
#pragma once

struct Prepared {
  int delta = 0;
};

struct Builder {
  // lint-expect: commit-noexcept
  void commit_publish(Prepared&& prep) { applied += prep.delta; }

  int applied = 0;
};
