// Seeded violations for rule `durable-write-checksummed`: raw
// write(2)-family calls on the durable path outside File::write_fully.
// Durable bytes that bypass the frame writer carry no length prefix and
// no CRC32C, so a torn or bit-flipped tail is undetectable at recovery.
#pragma once

#include <cstddef>
#include <cstdio>

#include <unistd.h>

struct BadSegment {
  int fd = -1;
  std::FILE* stream = nullptr;

  // The sanctioned site is File::write_fully in util/io.hpp; this is an
  // unframed sibling that skips the CRC entirely.
  void append_unframed(const void* data, std::size_t len) {
    // lint-expect: durable-write-checksummed
    (void)::write(fd, data, len);
  }

  // stdio writes are just as unframed as the syscall.
  std::size_t append_buffered(const void* data, std::size_t len) {
    // lint-expect: durable-write-checksummed
    return fwrite(data, 1, len, stream);
  }

  // Positioned writes can silently overwrite a checksummed frame with
  // unchecksummed bytes — flagged like the rest of the family.
  void patch_in_place(const void* data, std::size_t len) {
    // lint-expect: durable-write-checksummed
    (void)::pwrite(fd, data, len, 0);
  }
};
