// Seeded violation for rule `sharedptr-copy-in-hot-loop`: a by-value
// shared_ptr inside a row-fold inner loop — one atomic refcount bump
// per row, a shared cache line bounced across every reader thread.
#pragma once

#include <memory>
#include <vector>

struct Csr {
  int nnz = 0;
};

inline int fold_row(const std::vector<std::shared_ptr<const Csr>>& runs) {
  int total = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    // lint-expect: sharedptr-copy-in-hot-loop
    std::shared_ptr<const Csr> pinned = runs[i];
    total += pinned->nnz;
  }
  return total;
}
