#!/usr/bin/env bash
# Zero-runtime-cost check for the thread-safety annotations
# (util/thread_annotations.hpp): every I2A_* macro expands to a pure
# Clang attribute, consumed at analysis time — so Release object code
# must be BYTE-IDENTICAL with and without them. This compiles the
# all-headers hygiene TU (the complete public surface, including every
# annotated concurrency header) twice at -O2 — once as-is, once with
# I2A_DISABLE_THREAD_ANNOTATIONS forcing every macro to expand to
# nothing — and byte-compares the objects. The CI thread-safety leg
# runs this and records the result in its log.
#
# Usage: CXX=clang++-18 tools/lint/check_zero_cost.sh
set -euo pipefail

CXX="${CXX:-clang++}"
ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
OUT="$(mktemp -d "${TMPDIR:-/tmp}/i2a_zero_cost.XXXXXX")"
trap 'rm -rf "$OUT"' EXIT

if ! "$CXX" --version 2>/dev/null | grep -qi clang; then
  echo "check_zero_cost: CXX=$CXX is not clang — the annotations only" \
       "expand there, so the comparison would be vacuous" >&2
  exit 2
fi

FLAGS=(-std=c++20 -O2 -c -I "$ROOT/include/i2a")

"$CXX" "${FLAGS[@]}" "$ROOT/tools/all_headers.cpp" \
    -o "$OUT/with_annotations.o"
"$CXX" "${FLAGS[@]}" -DI2A_DISABLE_THREAD_ANNOTATIONS \
    "$ROOT/tools/all_headers.cpp" -o "$OUT/without_annotations.o"

if cmp -s "$OUT/with_annotations.o" "$OUT/without_annotations.o"; then
  size=$(wc -c < "$OUT/with_annotations.o")
  echo "zero-cost check OK: $CXX -O2 object code is byte-identical with" \
       "and without thread-safety annotations (${size} bytes)"
else
  echo "zero-cost check FAILED: annotations changed generated code —" \
       "something in util/thread_annotations.hpp or util/sync.hpp is no" \
       "longer attribute-only" >&2
  cmp "$OUT/with_annotations.o" "$OUT/without_annotations.o" >&2 || true
  exit 1
fi
