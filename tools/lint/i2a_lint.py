#!/usr/bin/env python3
"""i2a lint — repo-specific rules the thread-safety annotations can't express.

Five rules, each guarding an invariant the serving core documents
(DESIGN.md §10–§11) but no compiler flag checks:

  commit-noexcept            commit-phase functions (`commit_*`) must be
                             declared `noexcept`: phase 2 of the two-phase
                             publish has, by contract, no fallible step.
  bare-mutex-member          no `std::mutex` (or timed/recursive/shared
                             variant) declared outside util/sync.hpp —
                             every mutex must be a `util::Mutex` so the
                             Clang Thread Safety Analysis sees it.
  kernel-entry-expects       kernel entry points (spgemm, spgemm_at_b,
                             transpose, merge_add_k) must validate their
                             inputs with `I2A_EXPECTS` at the top of the
                             body (the kernel-boundary contract).
  sharedptr-copy-in-hot-loop the row-fold inner loops (fold_row,
                             for_each_in_row, merge_row_k) must not
                             declare by-value `std::shared_ptr` locals:
                             a refcount bump per row is a shared cache
                             line bounce on the hottest read path.
  durable-write-checksummed  the durable path (util/io.hpp, stream/
                             wal.hpp, stream/checkpoint.hpp) may issue a
                             raw write(2)-family call ONLY inside
                             File::write_fully — every durable byte must
                             flow through the frame writer so each
                             record is length-prefixed and CRC32C-
                             checksummed, else a torn or corrupt tail is
                             undetectable at recovery (DESIGN.md §12).

Escapes: a comment `// i2a-lint: allow(<rule>): <reason>` on or above
the flagged line suppresses that rule there; the reason is mandatory by
convention and reviewed like a NOLINT.

The engine is lexical (comments and string literals are blanked before
matching), so it runs anywhere python3 does — no clang needed, nothing
to build. `tools/lint/queries/` holds clang-query twins for the rules
expressible as AST matchers; `--clang-query` runs them informationally
against compile_commands.json when the tool exists (see README.md).

Usage:
  i2a_lint.py --root <repo>     lint include/i2a under <repo> (exit 1 on
                                any violation)
  i2a_lint.py --self-test       run the rules against tools/lint/fixtures/
                                and require the reported set to equal the
                                `// lint-expect: <rule>` markers exactly
  i2a_lint.py file.hpp ...      lint specific files
"""

import argparse
import os
import re
import subprocess
import sys

RULES = (
    "commit-noexcept",
    "bare-mutex-member",
    "kernel-entry-expects",
    "sharedptr-copy-in-hot-loop",
    "durable-write-checksummed",
)

# Kernel entry points that must open with I2A_EXPECTS, and how deep into
# the body (in lines) the first check may sit — deep enough for a
# doc-commented validation loop, shallow enough that "validates at the
# boundary" stays true.
KERNEL_ENTRY_NAMES = ("spgemm_at_b", "spgemm", "transpose", "merge_add_k")
KERNEL_EXPECTS_WINDOW = 25

# Row-fold inner loops where a by-value shared_ptr is a per-row atomic.
HOT_LOOP_NAMES = ("fold_row", "for_each_in_row", "merge_row_k")

# The durable path: headers where every byte written must be framed and
# checksummed. Matched by path suffix so the rule stays silent on the
# rest of the tree (in-memory code writes nothing durable).
DURABLE_PATH_SUFFIXES = ("util/io.hpp", "stream/wal.hpp",
                         "stream/checkpoint.hpp")
DURABLE_FIXTURE_PREFIX = "durable_write_checksummed_"

ALLOW_RE = re.compile(r"i2a-lint:\s*allow\(([a-z0-9-]+)\)")
EXPECT_RE = re.compile(r"lint-expect:\s*([a-z0-9-]+)")

# Tokens that, when immediately preceding `name(`, mean `name` is being
# *called* (or otherwise used in an expression), not declared.
CALL_PREFIX_KEYWORDS = {
    "return", "throw", "co_return", "case", "else", "do", "goto",
    "new", "delete", "sizeof", "not", "and", "or",
}


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def blank_comments_and_strings(text):
    """Return text of identical length/line structure with comment and
    string-literal *contents* replaced by spaces, so the rule regexes
    never match prose or literals."""
    out = list(text)
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = "str"
                i += 1
                continue
            if c == "'":
                state = "chr"
                i += 1
                continue
            i += 1
        elif state == "line":
            if c == "\n":
                state = "code"
            elif c != "\n":
                out[i] = " "
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out[i] = " "
                if nxt and nxt != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == quote:
                state = "code"
            elif c != "\n":
                out[i] = " "
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def match_forward(text, pos, open_ch, close_ch):
    """pos points at open_ch; return index just past its match, or -1."""
    depth = 0
    i = pos
    n = len(text)
    while i < n:
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return -1


def classify_name_use(code, name_start):
    """'decl' if name at name_start begins a function declaration /
    definition, 'call' if it is a call or other expression use."""
    before = code[:name_start].rstrip()
    if not before:
        return "decl"
    if before.endswith("->"):
        return "call"
    if before.endswith("::"):
        return "call"  # definitions in this tree are written unqualified
    if before[-1] in ".(,=!+-<|&?:;{}":
        # Operators mean expression context. `;` `{` `}` `:` directly
        # before the name mean a *statement* starting with the name — a
        # call — since a declaration would need a return type token in
        # between (C++ has no implicit int).
        return "call"
    m = re.search(r"([A-Za-z_]\w*)\s*$", before)
    if m and m.group(1) in CALL_PREFIX_KEYWORDS:
        return "call"
    # A word (return type), `>` (template return type), `&`/`*`
    # (reference/pointer return) all read as a declaration.
    return "decl"


def find_function_sites(code, names):
    """Yield (name, name_pos, body_start, body_end) for every
    declaration/definition of `names` in blanked text `code`.
    body_start/body_end are None for bodiless declarations."""
    pattern = re.compile(r"\b(" + "|".join(names) + r")\s*\(")
    for m in pattern.finditer(code):
        if classify_name_use(code, m.start()) != "decl":
            continue
        paren_open = code.index("(", m.end(1))
        after_params = match_forward(code, paren_open, "(", ")")
        if after_params < 0:
            continue
        # Specifier region: everything up to the body/semicolon —
        # noexcept, attributes, trailing return types.
        i = after_params
        body_start = body_end = None
        while i < len(code):
            c = code[i]
            if c == "{":
                body_start = i
                body_end = match_forward(code, i, "{", "}")
                break
            if c == ";":
                break
            if c == "(":  # attribute/specifier arguments, e.g. I2A_EXCLUDES(...)
                i = match_forward(code, i, "(", ")")
                if i < 0:
                    break
                continue
            i += 1
        if i < 0:
            continue
        yield m.group(1), m.start(), body_start, body_end


def specifier_region(code, name_pos):
    """The text between the parameter list and the body/semicolon."""
    paren_open = code.index("(", name_pos)
    after_params = match_forward(code, paren_open, "(", ")")
    if after_params < 0:
        return ""
    i = after_params
    while i < len(code):
        c = code[i]
        if c in "{;":
            return code[after_params:i]
        if c == "(":
            i = match_forward(code, i, "(", ")")
            if i < 0:
                return code[after_params:]
            continue
        i += 1
    return code[after_params:]


def rule_commit_noexcept(path, code, out):
    for name, pos, _body_start, _body_end in find_function_sites(
            code, [r"commit_\w+"]):
        if not re.search(r"\bnoexcept\b", specifier_region(code, pos)):
            out.append(Violation(
                path, line_of(code, pos), "commit-noexcept",
                f"commit-phase function '{name}' must be declared noexcept "
                "(phase 2 of a publish has no fallible step by contract)"))


MUTEX_MEMBER_RE = re.compile(
    r"^[ \t]*(?:mutable\s+)?std::(?:recursive_|timed_|shared_)?mutex\s+"
    r"\w+\s*(?:\{\s*\})?\s*;", re.MULTILINE)


def rule_bare_mutex_member(path, code, out):
    for m in MUTEX_MEMBER_RE.finditer(code):
        out.append(Violation(
            path, line_of(code, m.start()), "bare-mutex-member",
            "bare std::mutex declaration — use util::Mutex so the thread "
            "safety analysis can see the capability"))


def rule_kernel_entry_expects(path, code, out):
    for name, pos, body_start, body_end in find_function_sites(
            code, KERNEL_ENTRY_NAMES):
        if body_start is None:
            continue  # bodiless declaration: the definition is checked
        body_head_end = body_start
        for _ in range(KERNEL_EXPECTS_WINDOW):
            nl = code.find("\n", body_head_end + 1)
            if nl < 0 or nl >= body_end:
                body_head_end = body_end
                break
            body_head_end = nl
        if "I2A_EXPECTS" not in code[body_start:body_head_end]:
            out.append(Violation(
                path, line_of(code, pos), "kernel-entry-expects",
                f"kernel entry point '{name}' must validate its inputs "
                f"with I2A_EXPECTS within the first {KERNEL_EXPECTS_WINDOW} "
                "lines of the body (kernel-boundary contract)"))


SHARED_PTR_RE = re.compile(r"\bstd::shared_ptr\s*<")


def rule_sharedptr_copy_in_hot_loop(path, code, out):
    for name, _pos, body_start, body_end in find_function_sites(
            code, HOT_LOOP_NAMES):
        if body_start is None:
            continue
        body = code[body_start:body_end]
        for m in SHARED_PTR_RE.finditer(body):
            angle_open = body.index("<", m.start())
            depth = 0
            i = angle_open
            close = -1
            while i < len(body):
                if body[i] == "<":
                    depth += 1
                elif body[i] == ">":
                    depth -= 1
                    if depth == 0:
                        close = i
                        break
                i += 1
            if close < 0:
                continue
            rest = body[close + 1:].lstrip()
            # `&`/`*` is a reference or pointer; `>`/`,`/`)` means the
            # shared_ptr is nested inside another type (the container of
            # handles, itself usually taken by reference); `::` is a
            # nested-name use (shared_ptr<T>::element_type). Only an
            # identifier right after the template close declares a
            # by-value object.
            if rest and (rest[0].isalpha() or rest[0] == "_"):
                out.append(Violation(
                    path, line_of(code, body_start + m.start()),
                    "sharedptr-copy-in-hot-loop",
                    f"by-value std::shared_ptr in '{name}' — a refcount "
                    "bump per row on the hot read path; hold a raw "
                    "pointer/reference (the caller's handles pin the runs)"))


RAW_WRITE_RE = re.compile(r"\b(write|pwrite|fwrite|writev|pwritev)\s*\(")


def rule_durable_write_checksummed(path, code, out):
    norm = path.replace(os.sep, "/")
    if not (norm.endswith(DURABLE_PATH_SUFFIXES)
            or os.path.basename(norm).startswith(DURABLE_FIXTURE_PREFIX)):
        return
    # The single sanctioned raw-write site: the body of File::write_fully
    # (the frame writer's backend). Everything else in these files must
    # go through write_frame.
    exempt = [(body_start, body_end)
              for _name, _pos, body_start, body_end in find_function_sites(
                  code, ["write_fully"])
              if body_start is not None]
    for m in RAW_WRITE_RE.finditer(code):
        if any(s <= m.start() < e for s, e in exempt):
            continue
        if classify_name_use(code, m.start()) != "call":
            continue  # a declaration of a method named `write` is not a call
        out.append(Violation(
            path, line_of(code, m.start()), "durable-write-checksummed",
            f"raw {m.group(1)}() call on the durable path outside "
            "File::write_fully — durable bytes must flow through "
            "write_frame so every record is length-prefixed and "
            "CRC32C-checksummed (else a torn/corrupt tail is "
            "undetectable at recovery)"))


RULE_FUNCS = {
    "commit-noexcept": rule_commit_noexcept,
    "bare-mutex-member": rule_bare_mutex_member,
    "kernel-entry-expects": rule_kernel_entry_expects,
    "sharedptr-copy-in-hot-loop": rule_sharedptr_copy_in_hot_loop,
    "durable-write-checksummed": rule_durable_write_checksummed,
}


def is_suppressed(raw_lines, violation):
    """An `i2a-lint: allow(<rule>)` comment on the flagged line, or in
    the comment block directly above it (template/requires/preprocessor
    lines in between are skipped — the marker documents the entity, and
    the flagged line of a template function is below its template
    clause)."""
    idx = violation.line - 1
    if idx < len(raw_lines):
        m = ALLOW_RE.search(raw_lines[idx])
        if m and m.group(1) == violation.rule:
            return True
    i = idx - 1
    while i >= 0:
        stripped = raw_lines[i].strip()
        if (stripped.startswith("//") or stripped.startswith("*")
                or stripped.startswith("/*") or stripped.endswith("*/")):
            m = ALLOW_RE.search(stripped)
            if m and m.group(1) == violation.rule:
                return True
            i -= 1
            continue
        if (not stripped or stripped.startswith("template")
                or stripped.startswith("requires")
                or stripped.startswith("#")):
            i -= 1
            continue
        return False
    return False


def lint_file(path, report_path=None):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    code = blank_comments_and_strings(text)
    raw_lines = text.splitlines()
    shown = report_path if report_path is not None else path
    found = []
    for func in RULE_FUNCS.values():
        func(shown, code, found)
    return [v for v in found if not is_suppressed(raw_lines, v)]


def collect_tree_files(root):
    include_root = os.path.join(root, "include", "i2a")
    files = []
    for dirpath, _dirnames, filenames in os.walk(include_root):
        for fn in sorted(filenames):
            if fn.endswith(".hpp"):
                files.append(os.path.join(dirpath, fn))
    return sorted(files)


def run_clang_query(root, files):
    """Informational semantic cross-check: run every matcher in
    tools/lint/queries/ via clang-query against the compilation database
    when both exist. Never affects the exit code — the lexical engine is
    the source of truth (it needs no toolchain and covers all 4 rules;
    the matchers cover the 2 that are AST-expressible)."""
    here = os.path.dirname(os.path.abspath(__file__))
    query_dir = os.path.join(here, "queries")
    ccdb = os.path.join(root, "compile_commands.json")
    queries = sorted(
        os.path.join(query_dir, q) for q in os.listdir(query_dir)
        if q.endswith(".query")) if os.path.isdir(query_dir) else []
    if not queries:
        return
    tool = None
    for cand in ("clang-query", "clang-query-18", "clang-query-17",
                 "clang-query-16", "clang-query-15"):
        try:
            subprocess.run([cand, "--version"], capture_output=True,
                           check=False)
            tool = cand
            break
        except FileNotFoundError:
            continue
    if tool is None or not os.path.exists(ccdb):
        print("i2a-lint: clang-query pass skipped "
              f"(tool={'found' if tool else 'missing'}, "
              f"compile_commands.json={'found' if os.path.exists(ccdb) else 'missing'})")
        return
    # The headers are not TUs; query the all-headers hygiene TU, which
    # includes the complete public surface.
    tu = os.path.join(root, "tools", "all_headers.cpp")
    for query in queries:
        print(f"i2a-lint: clang-query {os.path.basename(query)}")
        proc = subprocess.run([tool, "-p", ccdb, "-f", query, tu],
                              capture_output=True, text=True, check=False)
        sys.stdout.write(proc.stdout)
        if proc.returncode != 0:
            sys.stdout.write(proc.stderr)


def self_test():
    """Fixtures ship a known violation set; the engine must report
    exactly that set — a missed seeded violation means a rule stopped
    firing, an extra one means a rule started misfiring."""
    here = os.path.dirname(os.path.abspath(__file__))
    fixture_dir = os.path.join(here, "fixtures")
    fixture_files = sorted(
        os.path.join(fixture_dir, f) for f in os.listdir(fixture_dir)
        if f.endswith((".hpp", ".cpp")))
    if not fixture_files:
        print("i2a-lint self-test: no fixtures found", file=sys.stderr)
        return 1

    expected = set()  # (relpath, line, rule)
    for path in fixture_files:
        rel = os.path.basename(path)
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        for i, line in enumerate(lines):
            m = EXPECT_RE.search(line)
            if not m:
                continue
            rule = m.group(1)
            if rule not in RULES:
                print(f"i2a-lint self-test: {rel}:{i + 1}: unknown rule "
                      f"'{rule}' in lint-expect marker", file=sys.stderr)
                return 1
            # The marker documents the *next* non-blank line.
            j = i + 1
            while j < len(lines) and not lines[j].strip():
                j += 1
            expected.add((rel, j + 1, rule))

    reported = set()
    diagnostics = []
    for path in fixture_files:
        for v in lint_file(path, report_path=os.path.basename(path)):
            reported.add((v.path, v.line, v.rule))
            diagnostics.append(v)

    rules_seeded = {rule for _, _, rule in expected}
    missing_rules = set(RULES) - rules_seeded
    ok = True
    if missing_rules:
        print("i2a-lint self-test: no seeded fixture for rule(s): "
              + ", ".join(sorted(missing_rules)), file=sys.stderr)
        ok = False
    for rule in RULES:
        good = [f for f in fixture_files
                if os.path.basename(f).startswith(
                    rule.replace("-", "_") + "_good")]
        if not good:
            print(f"i2a-lint self-test: missing clean fixture for '{rule}' "
                  "(expected fixtures/<rule>_good.*)", file=sys.stderr)
            ok = False

    for item in sorted(expected - reported):
        print(f"i2a-lint self-test: MISSED seeded violation {item[0]}:"
              f"{item[1]} [{item[2]}]", file=sys.stderr)
        ok = False
    for item in sorted(reported - expected):
        print(f"i2a-lint self-test: UNEXPECTED finding {item[0]}:"
              f"{item[1]} [{item[2]}]", file=sys.stderr)
        ok = False

    if ok:
        print(f"i2a-lint self-test: OK — {len(expected)} seeded violations "
              f"across {len(rules_seeded)} rules all detected, clean "
              "fixtures clean")
        return 0
    return 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", help="repository root (lints include/i2a)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the rules against tools/lint/fixtures/")
    ap.add_argument("--clang-query", action="store_true",
                    help="also run the clang-query matchers (informational)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("files", nargs="*", help="specific files to lint")
    args = ap.parse_args()

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0
    if args.self_test:
        return self_test()

    if args.files:
        files = args.files
        root = args.root or os.getcwd()
    else:
        root = args.root
        if root is None:
            # tools/lint/i2a_lint.py → repo root is two levels up.
            root = os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))))
        files = collect_tree_files(root)
        if not files:
            print(f"i2a-lint: no headers found under {root}/include/i2a",
                  file=sys.stderr)
            return 2

    violations = []
    for path in files:
        rel = os.path.relpath(path, root) if args.root or not args.files \
            else path
        violations.extend(lint_file(path, report_path=rel))

    for v in violations:
        print(v)
    if not violations:
        print(f"i2a-lint: {len(files)} files, 0 violations")
    if args.clang_query:
        run_clang_query(root, files)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
