#!/usr/bin/env bash
# crash_harness.sh — seeded SIGKILL crash-recovery sweep (DESIGN.md §12).
#
# Drives tests/test_recovery in trial mode: each trial forks a durable
# writer child, SIGKILLs it at a random point mid-stream (sometimes
# mid-recovery too), then recovers in the parent and requires the result
# to be byte-identical to the acknowledged-prefix rebuild oracle, twice
# (idempotence). The trial index cycles durability mode (fsync/async),
# shard count (1/4), and checkpointing, so a full run covers the whole
# matrix by construction.
#
# The sweep is seeded and reproducible: pass the seed with -s (CI passes
# the run id), or export I2A_FAILPOINT_SEED; the binary logs the base
# seed and every trial's derived seed, so any failure replays with
#   tools/crash_harness.sh -n 1 -s <base_seed>   # plus the trial offset
#
# A failing trial keeps its scratch directory and prints `ARTIFACT
# <dir>`; the harness copies every such directory (plus the full log)
# into the artifact directory for upload.
#
# Usage: tools/crash_harness.sh [-b build_dir] [-n trials] [-s seed]
#                               [-o artifact_dir]
set -euo pipefail

BUILD_DIR=build
TRIALS=200
SEED="${I2A_FAILPOINT_SEED:-20260808}"
ARTIFACT_DIR=""

while getopts "b:n:s:o:h" opt; do
  case "$opt" in
    b) BUILD_DIR="$OPTARG" ;;
    n) TRIALS="$OPTARG" ;;
    s) SEED="$OPTARG" ;;
    o) ARTIFACT_DIR="$OPTARG" ;;
    h) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) exit 2 ;;
  esac
done

BIN="$BUILD_DIR/tests/test_recovery"
if [[ ! -x "$BIN" ]]; then
  echo "crash_harness: $BIN not built (cmake --build $BUILD_DIR first)" >&2
  exit 2
fi
ARTIFACT_DIR="${ARTIFACT_DIR:-$BUILD_DIR/crash-artifacts}"
LOG="$(mktemp /tmp/i2a-crash-harness-XXXXXX.log)"

echo "crash_harness: $TRIALS trials, seed $SEED, binary $BIN"
status=0
"$BIN" --trials "$TRIALS" --seed "$SEED" 2>&1 | tee "$LOG" || status=$?

if [[ $status -ne 0 ]]; then
  mkdir -p "$ARTIFACT_DIR"
  cp "$LOG" "$ARTIFACT_DIR/harness.log"
  while IFS= read -r dir; do
    [[ -d "$dir" ]] && cp -r "$dir" "$ARTIFACT_DIR/"
  done < <(sed -n 's/^ARTIFACT //p' "$LOG")
  echo "crash_harness: FAILED (seed $SEED) — artifacts in $ARTIFACT_DIR" >&2
  rm -f "$LOG"
  exit 1
fi

rm -f "$LOG"
echo "crash_harness: OK — $TRIALS trials recovered byte-identical (seed $SEED)"
