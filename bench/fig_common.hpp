#pragma once
/// \file fig_common.hpp
/// \brief Shared verification helpers for the figure-reproduction binaries.
///
/// Every fig* binary prints the regenerated artifact and then *verifies* it
/// against the goldens transcribed from the paper (d4m/goldens.hpp),
/// exiting nonzero on any mismatch — so the benchmark sweep doubles as a
/// reproduction audit.

#include <algorithm>
#include <cstdio>
#include <tuple>
#include <iostream>
#include <string>
#include <vector>

#include "core/associative_array.hpp"

namespace i2a::bench {

/// Compare an array's triples against a golden list; print a pass/fail
/// line and return whether it passed.
inline bool verify_triples(
    const std::string& what,
    const std::vector<core::KeyedTriple<double>>& got,
    std::vector<core::KeyedTriple<double>> want) {
  // Goldens are stored in figure order; canonicalize both sides.
  auto key = [](const core::KeyedTriple<double>& t) {
    return std::tie(t.row, t.col);
  };
  std::sort(want.begin(), want.end(),
            [&](const auto& a, const auto& b) { return key(a) < key(b); });
  auto got_sorted = got;
  std::sort(got_sorted.begin(), got_sorted.end(),
            [&](const auto& a, const auto& b) { return key(a) < key(b); });
  if (got_sorted == want) {
    std::cout << "[VERIFIED] " << what << " matches the paper (" << want.size()
              << " entries)\n";
    return true;
  }
  std::cout << "[MISMATCH] " << what << ":\n";
  std::size_t shown = 0;
  for (std::size_t i = 0; i < std::max(got_sorted.size(), want.size()); ++i) {
    const bool have_g = i < got_sorted.size();
    const bool have_w = i < want.size();
    if (have_g && have_w && got_sorted[i] == want[i]) continue;
    if (shown++ > 8) break;
    if (have_g) {
      std::cout << "  got  (" << got_sorted[i].row << ", " << got_sorted[i].col
                << ") = " << got_sorted[i].val << '\n';
    }
    if (have_w) {
      std::cout << "  want (" << want[i].row << ", " << want[i].col << ") = "
                << want[i].val << '\n';
    }
  }
  return false;
}

}  // namespace i2a::bench
