#pragma once
/// \file fig_common.hpp
/// \brief Shared verification helpers for the figure-reproduction binaries.
///
/// Every fig* binary prints the regenerated artifact and then *verifies* it
/// against the goldens transcribed from the paper (d4m/goldens.hpp),
/// exiting nonzero on any mismatch — so the benchmark sweep doubles as a
/// reproduction audit.

#include <algorithm>
#include <cstdio>
#include <tuple>
#include <iostream>
#include <string>
#include <vector>

#include "algebra/properties.hpp"
#include "core/associative_array.hpp"

namespace i2a::bench {

/// Keys must match exactly; values are compared with the library-wide
/// relative tolerance (algebra::near) so semiring-product goldens don't
/// fail on benign floating-point rounding.
inline bool triple_matches(const core::KeyedTriple<double>& a,
                           const core::KeyedTriple<double>& b) {
  return a.row == b.row && a.col == b.col && algebra::near(a.val, b.val);
}

/// Compare an array's triples against a golden list; print a pass/fail
/// line and return whether it passed.
inline bool verify_triples(
    const std::string& what,
    const std::vector<core::KeyedTriple<double>>& got,
    std::vector<core::KeyedTriple<double>> want) {
  // Goldens are stored in figure order; canonicalize both sides.
  auto key = [](const core::KeyedTriple<double>& t) {
    return std::tie(t.row, t.col);
  };
  std::sort(want.begin(), want.end(),
            [&](const auto& a, const auto& b) { return key(a) < key(b); });
  auto got_sorted = got;
  std::sort(got_sorted.begin(), got_sorted.end(),
            [&](const auto& a, const auto& b) { return key(a) < key(b); });
  const bool same_size = got_sorted.size() == want.size();
  bool equal = same_size;
  for (std::size_t i = 0; equal && i < want.size(); ++i) {
    equal = triple_matches(got_sorted[i], want[i]);
  }
  if (equal) {
    std::cout << "[VERIFIED] " << what << " matches the paper (" << want.size()
              << " entries)\n";
    return true;
  }
  std::cout << "[MISMATCH] " << what << ":\n";
  // Merge-diff on the (row, col) keys so a single missing/extra entry
  // doesn't shift the alignment and drown the report in false pairs.
  // Show at most 8 mismatches; a differing got/want pair is ONE shown
  // mismatch, not two.
  constexpr std::size_t kMaxShown = 8;
  std::size_t shown = 0;
  std::size_t i = 0, j = 0;
  const auto print_got = [&](const core::KeyedTriple<double>& t) {
    std::cout << "  got  (" << t.row << ", " << t.col << ") = " << t.val
              << '\n';
  };
  const auto print_want = [&](const core::KeyedTriple<double>& t) {
    std::cout << "  want (" << t.row << ", " << t.col << ") = " << t.val
              << '\n';
  };
  while (i < got_sorted.size() || j < want.size()) {
    const bool have_g = i < got_sorted.size();
    const bool have_w = j < want.size();
    if (have_g && have_w && triple_matches(got_sorted[i], want[j])) {
      ++i;
      ++j;
      continue;
    }
    if (shown == kMaxShown) {
      std::cout << "  ... further mismatches suppressed\n";
      break;
    }
    ++shown;
    if (have_g && have_w && key(got_sorted[i]) == key(want[j])) {
      print_got(got_sorted[i++]);  // same entry, different value
      print_want(want[j++]);
    } else if (have_g && (!have_w || key(got_sorted[i]) < key(want[j]))) {
      print_got(got_sorted[i++]);  // extra entry the golden lacks
    } else {
      print_want(want[j++]);  // golden entry the array is missing
    }
  }
  return false;
}

}  // namespace i2a::bench
