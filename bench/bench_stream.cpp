/// \file bench_stream.cpp
/// \brief PERF4: streaming adjacency maintenance. Measures sustained
///        batch-ingest throughput (edges/s) through
///        `stream::AdjacencyBuilder`'s compaction ladder and the merge
///        amplification it pays, against the naive serving strategy the
///        builder exists to beat: rebuilding the full adjacency from the
///        concatenated edge list after every batch.
///
/// Counters:
///   merge_amplification — maintenance entries written (per-batch deltas
///       + every ladder compaction + the snapshot merges) divided by the
///       final adjacency nnz: how many times the stream path touches an
///       entry that a one-shot build writes once.
///   final_nnz — size of the maintained array (sanity anchor).
///
/// `BM_StreamServe` and `BM_RebuildPerBatch` are the apples-to-apples
/// pair: both produce a queryable adjacency array after *every* batch.
/// The acceptance bar is stream ≤ rebuild for ≥ 8 batches; the committed
/// BENCH_stream.json records the margin.

#include "bench_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <span>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

#include "algebra/pairs.hpp"
#include "graph/incidence.hpp"
#include "stream/adjacency_builder.hpp"
#include "util/io.hpp"

namespace {

using namespace i2a;

constexpr int kScale = 12;          // 4096 vertices
constexpr index_t kEdgeFactor = 8;  // 32768 edges

std::vector<std::span<const graph::Edge>> split_batches(
    const std::vector<graph::Edge>& edges, index_t nbatches) {
  std::vector<std::span<const graph::Edge>> out;
  const std::size_t per =
      (edges.size() + static_cast<std::size_t>(nbatches) - 1) /
      static_cast<std::size_t>(nbatches);
  for (std::size_t lo = 0; lo < edges.size(); lo += per) {
    const std::size_t hi = std::min(edges.size(), lo + per);
    out.emplace_back(edges.data() + lo, hi - lo);
  }
  return out;
}

/// Ingest the whole stream, snapshot once at the end — the pure
/// maintenance rate with queries amortized away.
void BM_StreamIngest(benchmark::State& state) {
  const auto g = bench::rmat_graph(kScale, kEdgeFactor, 42);
  const auto batches = split_batches(g.edges(), state.range(0));
  const algebra::PlusTimes<double> p;
  std::uint64_t written = 0;
  std::uint64_t final_nnz = 0;
  for (auto _ : state) {
    stream::AdjacencyBuilder<algebra::PlusTimes<double>> b(g.num_vertices(),
                                                           p);
    for (const auto& batch : batches) b.ingest(batch);
    const auto a = b.adjacency();
    benchmark::DoNotOptimize(a.nnz());
    written += b.stats().delta_entries + b.stats().merged_entries +
               static_cast<std::uint64_t>(a.nnz());
    final_nnz = static_cast<std::uint64_t>(a.nnz());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.edges().size()));
  state.counters["merge_amplification"] =
      static_cast<double>(written) /
      (static_cast<double>(final_nnz) *
       static_cast<double>(state.iterations()));
  state.counters["final_nnz"] = static_cast<double>(final_nnz);
}
BENCHMARK(BM_StreamIngest)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

/// Ingest and snapshot after every batch — a query served per batch,
/// the maintained-array counterpart of BM_RebuildPerBatch.
void BM_StreamServe(benchmark::State& state) {
  const auto g = bench::rmat_graph(kScale, kEdgeFactor, 42);
  const auto batches = split_batches(g.edges(), state.range(0));
  const algebra::PlusTimes<double> p;
  std::uint64_t written = 0;
  std::uint64_t final_nnz = 0;
  for (auto _ : state) {
    stream::AdjacencyBuilder<algebra::PlusTimes<double>> b(g.num_vertices(),
                                                           p);
    std::uint64_t serve_writes = 0;
    for (const auto& batch : batches) {
      b.ingest(batch);
      const auto a = b.adjacency();
      benchmark::DoNotOptimize(a.nnz());
      serve_writes += static_cast<std::uint64_t>(a.nnz());
      final_nnz = static_cast<std::uint64_t>(a.nnz());
    }
    written +=
        b.stats().delta_entries + b.stats().merged_entries + serve_writes;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.edges().size()));
  state.counters["merge_amplification"] =
      static_cast<double>(written) /
      (static_cast<double>(final_nnz) *
       static_cast<double>(state.iterations()));
  state.counters["final_nnz"] = static_cast<double>(final_nnz);
}
BENCHMARK(BM_StreamServe)->Arg(8)->Arg(32)->Arg(128);

/// The acknowledged-durability tax (DESIGN.md §12): the BM_StreamIngest
/// workload at 64 batches with the write-ahead log in each durability
/// mode. Arg 0 is the in-memory baseline (no WAL — the pre-durability
/// path, bit for bit), 1 = Durability::kNone (append to page cache,
/// never fsync), 2 = kAsync (fsync only on segment rotation and close),
/// 3 = kFsyncEachBatch (fsync before ingest returns: acknowledged ⇒
/// durable). The committed BENCH_stream.json records what each
/// acknowledgement level costs over the in-memory builder; wal_bytes is
/// the log volume written per run.
void BM_IngestDurable(benchmark::State& state) {
  const auto g = bench::rmat_graph(kScale, kEdgeFactor, 42);
  const auto batches = split_batches(g.edges(), 64);
  const algebra::PlusTimes<double> p;
  const auto mode = static_cast<int>(state.range(0));
  std::uint64_t wal_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir;
    stream::Options opts;
    if (mode != 0) {
      dir = "/tmp/i2a-bench-wal-XXXXXX";
      if (::mkdtemp(dir.data()) == nullptr) {
        state.SkipWithError("mkdtemp failed");
        break;
      }
      opts.wal_dir = dir;
      opts.durability = mode == 1   ? stream::Durability::kNone
                        : mode == 2 ? stream::Durability::kAsync
                                    : stream::Durability::kFsyncEachBatch;
    }
    state.ResumeTiming();
    {
      stream::AdjacencyBuilder<algebra::PlusTimes<double>> b(g.num_vertices(),
                                                             p, opts);
      for (const auto& batch : batches) b.ingest(batch);
      benchmark::DoNotOptimize(b.adjacency().nnz());
    }
    state.PauseTiming();
    if (mode != 0) {
      for (const auto& name : util::list_dir(dir)) {
        const std::string path = dir + "/" + name;
        struct stat st {};
        if (::stat(path.c_str(), &st) == 0) {
          wal_bytes += static_cast<std::uint64_t>(st.st_size);
        }
        util::remove_file(path);
      }
      ::rmdir(dir.c_str());
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.edges().size()));
  state.counters["wal_bytes"] =
      static_cast<double>(wal_bytes) /
      std::max(1.0, static_cast<double>(state.iterations()));
}
BENCHMARK(BM_IngestDurable)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

/// The baseline the builder replaces: after every batch, rebuild the
/// adjacency from scratch over all edges seen so far (incidence assembly
/// + SpGEMM over the whole prefix, every time).
void BM_RebuildPerBatch(benchmark::State& state) {
  const auto g = bench::rmat_graph(kScale, kEdgeFactor, 42);
  const auto batches = split_batches(g.edges(), state.range(0));
  const algebra::PlusTimes<double> p;
  for (auto _ : state) {
    graph::Graph prefix(g.num_vertices());
    prefix.edges().reserve(g.edges().size());
    for (const auto& batch : batches) {
      for (const auto& e : batch) prefix.edges().push_back(e);
      const auto a = graph::build_adjacency(prefix, p);
      benchmark::DoNotOptimize(a.nnz());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.edges().size()));
}
BENCHMARK(BM_RebuildPerBatch)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  return i2a::bench::run_benchmarks_json(argc, argv, "BENCH_stream.json");
}
