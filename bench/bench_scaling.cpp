/// \file bench_scaling.cpp
/// \brief PERF3: thread-scaling of the parallel adjacency construction.
///
/// Fixed R-MAT workload, worker count swept 1..hardware. Reports
/// edges/second so the speedup curve is directly readable from the
/// items_per_second column.

#include <benchmark/benchmark.h>

#include <thread>

#include "algebra/pairs.hpp"
#include "bench_common.hpp"
#include "graph/incidence.hpp"
#include "sparse/spgemm.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace i2a;

void BM_Scaling_AdjacencyConstruction(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto g = bench::rmat_graph(14, 16, 7);
  const algebra::PlusTimes<double> p;
  const auto inc = graph::incidence_arrays(g, p);
  util::ThreadPool pool(threads);
  for (auto _ : state) {
    auto a = graph::adjacency_array(p, inc, sparse::SpGemmAlgo::kGustavson,
                                    &pool);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  state.counters["threads"] = static_cast<double>(threads);
}

void BM_Scaling_SquareSpGemm(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto a = bench::random_matrix(4096, 4096, 0.004, 1);
  const auto b = bench::random_matrix(4096, 4096, 0.004, 2);
  const algebra::PlusTimes<double> p;
  util::ThreadPool pool(threads);
  for (auto _ : state) {
    auto c = sparse::spgemm(p, a, b, sparse::SpGemmAlgo::kGustavson, &pool);
    benchmark::DoNotOptimize(c);
  }
  state.counters["threads"] = static_cast<double>(threads);
}

void thread_args(benchmark::internal::Benchmark* b) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (unsigned t = 1; t <= hw; t *= 2) b->Arg(t);
  if ((hw & (hw - 1)) != 0) b->Arg(hw);  // include the odd max
}

BENCHMARK(BM_Scaling_AdjacencyConstruction)->Apply(thread_args)
    ->UseRealTime();
BENCHMARK(BM_Scaling_SquareSpGemm)->Apply(thread_args)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
