/// \file fig2_subarrays.cpp
/// \brief Regenerate Figure 2: the incidence sub-arrays
///        E1 = E(:, 'Genre|*') and E2 = E(:, 'Writer|*'), selected from the
///        full music array exactly as the paper's caption describes, and
///        verified entry-by-entry.

#include <iostream>

#include "fig_common.hpp"
#include "core/printing.hpp"
#include "core/selection.hpp"
#include "d4m/goldens.hpp"
#include "d4m/music_dataset.hpp"

int main() {
  using namespace i2a;
  const auto e = d4m::music_incidence_array();
  const auto e1 = core::select(e, ":", "Genre|A : Genre|Z");
  const auto e2 = core::select(e, ":", "Writer|A : Writer|Z");

  std::cout << "Figure 2 — E1 = E(:, 'Genre|A : Genre|Z'):\n\n"
            << core::figure_string(e1) << '\n';
  std::cout << "Figure 2 — E2 = E(:, 'Writer|A : Writer|Z'):\n\n"
            << core::figure_string(e2) << '\n';

  bool ok = bench::verify_triples("Figure 2 E1", e1.triples(),
                                  d4m::golden::fig2_e1_triples());
  ok &= bench::verify_triples("Figure 2 E2", e2.triples(),
                              d4m::golden::fig2_e2_triples());
  return ok ? 0 : 1;
}
