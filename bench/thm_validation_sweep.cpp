/// \file thm_validation_sweep.cpp
/// \brief Empirical sweep of Theorem II.1 and Corollary III.1 (experiment
///        THM1/COR1 in DESIGN.md).
///
/// For each operator pair — the seven conforming paper pairs plus the
/// Section III non-examples — the sweep draws hundreds of random
/// multigraphs (parallel edges, self-loops, isolated vertices), assigns
/// random nonzero incidence values, builds Eᵀout ⊕.⊗ Ein with the paper's
/// full (dense) semantics, and checks Definition I.5. It prints a table of
/// confirmations:
///   * conforming pairs must pass every trial (sufficiency direction);
///   * violating pairs must fail on their lemma counterexample and are
///     reported with their per-trial failure rate on random graphs.
///
/// Exit code 0 iff the empirical results agree with the theorem.

#include <cstdio>
#include <iostream>

#include "algebra/counterexamples.hpp"
#include "algebra/non_examples.hpp"
#include "algebra/pairs.hpp"
#include "algebra/properties.hpp"
#include "algebra/set_algebra.hpp"
#include "graph/generators.hpp"
#include "graph/incidence.hpp"
#include "graph/validators.hpp"
#include "sparse/dense.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

namespace {

using namespace i2a;
using namespace i2a::algebra;

constexpr int kTrials = 200;

struct SweepRow {
  std::string pair_name;
  bool conforming = false;       // property-checker verdict
  int passed = 0;                // random-graph trials with correct pattern
  int trials = 0;
  bool lemma_counterexample = false;  // a lemma graph breaks the product
  double seconds = 0;
};

graph::Graph random_graph(util::Xoshiro256& rng) {
  const index_t n = rng.between(2, 10);
  const index_t m = rng.between(1, 3 * n);
  return graph::gen::random_multigraph(n, m, rng.next());
}

/// Run the sweep for one pair: full-semantics product vs true pattern.
template <typename P, typename ValueDraw>
SweepRow sweep(const P& p, const Carrier<typename P::value_type>& carrier,
               ValueDraw&& draw_nonzero, std::uint64_t seed) {
  util::Timer timer;
  SweepRow row;
  row.pair_name = std::string(p.name());

  PropertyWitnesses<typename P::value_type> w;
  row.conforming = check_properties(p, carrier, &w).conforming();
  for (const auto& cx : counterexamples_from_witnesses(p, w)) {
    row.lemma_counterexample |= cx.is_counterexample;
  }

  util::Xoshiro256 rng(seed);
  for (int t = 0; t < kTrials; ++t) {
    const graph::Graph g = random_graph(rng);
    const auto inc = graph::incidence_arrays_with<typename P::value_type>(
        g, [&](index_t, bool) { return draw_nonzero(rng); });
    const auto a = sparse::multiply_full_semantics(
        p, sparse::transpose(inc.eout), inc.ein);
    row.passed += graph::is_adjacency_of(a, g, p.zero()).ok ? 1 : 0;
    ++row.trials;
  }
  row.seconds = timer.seconds();
  return row;
}

void print_row(const SweepRow& r) {
  std::printf("%-22s %-11s %6d/%-6d %-18s %7.2fs\n", r.pair_name.c_str(),
              r.conforming ? "conforming" : "VIOLATING", r.passed, r.trials,
              r.lemma_counterexample ? "lemma-cx:BROKEN" : "lemma-cx:none",
              r.seconds);
}

}  // namespace

int main() {
  std::printf("Theorem II.1 empirical validation sweep (%d random "
              "multigraphs per pair, full fold semantics)\n\n",
              kTrials);
  std::printf("%-22s %-11s %-13s %-18s %8s\n", "pair", "verdict",
              "pattern-ok", "necessity", "time");
  std::printf("%.77s\n",
              "----------------------------------------------------------"
              "--------------------");

  const auto pos = [](util::Xoshiro256& rng) { return rng.uniform(0.5, 9.5); };
  const auto signed_vals = [](util::Xoshiro256& rng) {
    const double v = rng.uniform(0.5, 9.5);
    return rng.chance(0.5) ? v : -v;
  };
  const auto bits = [](util::Xoshiro256& rng) -> std::uint64_t {
    return 1 + (rng.next() & 0b110);  // never empty, varied
  };
  const auto gf2 = [](util::Xoshiro256&) -> std::uint8_t { return 1; };

  std::vector<SweepRow> rows;
  // Conforming pairs (sufficiency must hold in every trial).
  rows.push_back(sweep(PlusTimes<double>{}, carriers::nonneg_reals(), pos, 1));
  rows.push_back(sweep(MaxTimes<double>{}, carriers::nonneg_reals(), pos, 2));
  rows.push_back(
      sweep(MinTimes<double>{}, carriers::pos_reals_with_inf(), pos, 3));
  rows.push_back(
      sweep(MaxPlus<double>{}, carriers::reals_with_neg_inf(), signed_vals, 4));
  rows.push_back(
      sweep(MinPlus<double>{}, carriers::reals_with_pos_inf(), signed_vals, 5));
  rows.push_back(
      sweep(MaxMin<double>{}, carriers::nonneg_reals_with_inf(), pos, 6));
  rows.push_back(
      sweep(MinMax<double>{}, carriers::nonneg_reals_with_inf(), pos, 7));
  const std::size_t num_conforming = rows.size();

  // Violating pairs (necessity: lemma counterexample must break).
  rows.push_back(
      sweep(SignedPlusTimes<double>{}, carriers::all_reals(), signed_vals, 8));
  rows.push_back(sweep(GaloisF2{}, carriers::gf2(), gf2, 9));
  rows.push_back(
      sweep(MaxPlusNonNeg<double>{}, carriers::nonneg_reals(), pos, 10));
  rows.push_back(
      sweep(BitsetUnionIntersect(3), carriers::bitsets(3), bits, 11));

  bool ok = true;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    print_row(rows[i]);
    if (i < num_conforming) {
      ok &= rows[i].conforming && rows[i].passed == rows[i].trials &&
            !rows[i].lemma_counterexample;
    } else {
      ok &= !rows[i].conforming && rows[i].lemma_counterexample;
    }
  }

  std::printf("\nCorollary III.1 (reverse graph) spot-check: ");
  {
    util::Xoshiro256 rng(42);
    const PlusTimes<double> p;
    bool rev_ok = true;
    for (int t = 0; t < 50; ++t) {
      const graph::Graph g = random_graph(rng);
      const auto inc = graph::incidence_arrays(g, p);
      const auto rev = graph::reverse_adjacency_array(p, inc);
      rev_ok &= graph::is_adjacency_of(rev, g.reverse(), p.zero()).ok;
    }
    std::printf("%s\n", rev_ok ? "50/50 pass" : "FAILED");
    ok &= rev_ok;
  }

  std::printf("\n%s\n", ok ? "SWEEP RESULT: theorem confirmed empirically"
                           : "SWEEP RESULT: DISAGREEMENT WITH THEOREM");
  return ok ? 0 : 1;
}
