/// \file bench_spgemm_ablation.cpp
/// \brief PERF2: SpGEMM ablation — the two-pass engine (Gustavson, hash,
///        heap, auto) against the retired single-pass vector-of-vectors
///        kernel, the dense full-semantics baseline, and the fused AᵀB
///        incidence shape, across density and size.
///
/// Every run lands in BENCH_spgemm.json (override with --benchmark_out),
/// with two machine-readable signals per point: items/s (semiring flops,
/// or edges for the incidence shape) and `allocs_per_row`, the global
/// operator-new count per output row — the proxy that proves the numeric
/// pass performs zero per-row heap allocations while the legacy kernel
/// pays two per nonempty row.

#define I2A_BENCH_COUNT_ALLOCS
#include "bench_common.hpp"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "algebra/pairs.hpp"
#include "sparse/dense.hpp"
#include "sparse/spgemm.hpp"

namespace {

using namespace i2a;
using sparse::SpGemmAlgo;

/// The pre-engine kernel, kept verbatim as the ablation baseline: each
/// output row staged through its own pair of vectors, stitched at the
/// end. This is what the ROADMAP open item retired.
namespace legacy {

template <typename P, typename T>
void row_gustavson(const P& p, const sparse::Csr<T>& a,
                   const sparse::Csr<T>& b, index_t i, std::vector<T>& acc,
                   std::vector<index_t>& stamp, index_t generation,
                   std::vector<index_t>& touched,
                   std::vector<index_t>& out_cols, std::vector<T>& out_vals) {
  touched.clear();
  const auto acols = a.row_cols(i);
  const auto avals = a.row_vals(i);
  for (std::size_t ka = 0; ka < acols.size(); ++ka) {
    const index_t k = acols[ka];
    const T av = avals[ka];
    const auto bcols = b.row_cols(k);
    const auto bvals = b.row_vals(k);
    for (std::size_t kb = 0; kb < bcols.size(); ++kb) {
      const index_t j = bcols[kb];
      const T term = p.mul(av, bvals[kb]);
      if (stamp[static_cast<std::size_t>(j)] != generation) {
        stamp[static_cast<std::size_t>(j)] = generation;
        acc[static_cast<std::size_t>(j)] = term;
        touched.push_back(j);
      } else {
        acc[static_cast<std::size_t>(j)] =
            p.add(acc[static_cast<std::size_t>(j)], term);
      }
    }
  }
  std::sort(touched.begin(), touched.end());
  for (const index_t j : touched) {
    out_cols.push_back(j);
    out_vals.push_back(acc[static_cast<std::size_t>(j)]);
  }
}

template <typename P, typename T>
void row_hash(const P& p, const sparse::Csr<T>& a, const sparse::Csr<T>& b,
              index_t i, std::vector<std::pair<index_t, T>>& scratch,
              std::vector<index_t>& out_cols, std::vector<T>& out_vals) {
  std::size_t prods = 0;
  for (const index_t k : a.row_cols(i)) {
    prods += static_cast<std::size_t>(b.row_nnz(k));
  }
  if (prods == 0) return;
  std::size_t cap = 16;
  while (cap < 2 * prods) cap <<= 1;
  std::vector<index_t> keys(cap, index_t{-1});
  std::vector<T> slots(cap);
  const auto acols = a.row_cols(i);
  const auto avals = a.row_vals(i);
  for (std::size_t ka = 0; ka < acols.size(); ++ka) {
    const index_t k = acols[ka];
    const T av = avals[ka];
    const auto bcols = b.row_cols(k);
    const auto bvals = b.row_vals(k);
    for (std::size_t kb = 0; kb < bcols.size(); ++kb) {
      const index_t j = bcols[kb];
      const T term = p.mul(av, bvals[kb]);
      std::size_t h =
          (static_cast<std::size_t>(j) * 0x9e3779b97f4a7c15ULL) & (cap - 1);
      for (;;) {
        if (keys[h] == j) {
          slots[h] = p.add(slots[h], term);
          break;
        }
        if (keys[h] == index_t{-1}) {
          keys[h] = j;
          slots[h] = term;
          break;
        }
        h = (h + 1) & (cap - 1);
      }
    }
  }
  scratch.clear();
  for (std::size_t h = 0; h < cap; ++h) {
    if (keys[h] != index_t{-1}) scratch.emplace_back(keys[h], slots[h]);
  }
  std::sort(scratch.begin(), scratch.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  for (const auto& [col, val] : scratch) {
    out_cols.push_back(col);
    out_vals.push_back(val);
  }
}

template <typename P, typename T>
void row_heap(const P& p, const sparse::Csr<T>& a, const sparse::Csr<T>& b,
              index_t i, std::vector<index_t>& out_cols,
              std::vector<T>& out_vals) {
  struct Cursor {
    index_t col;
    std::size_t ka;
    std::size_t pos;
  };
  const auto acols = a.row_cols(i);
  const auto avals = a.row_vals(i);
  auto cmp = [](const Cursor& x, const Cursor& y) { return x.col > y.col; };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cmp)> heap(cmp);
  for (std::size_t ka = 0; ka < acols.size(); ++ka) {
    const auto bcols = b.row_cols(acols[ka]);
    if (!bcols.empty()) heap.push(Cursor{bcols[0], ka, 0});
  }
  bool open = false;
  index_t cur_col = 0;
  T cur_val{};
  while (!heap.empty()) {
    const Cursor c = heap.top();
    heap.pop();
    const auto brow_cols = b.row_cols(acols[c.ka]);
    const auto brow_vals = b.row_vals(acols[c.ka]);
    const T term = p.mul(avals[c.ka], brow_vals[c.pos]);
    if (open && c.col == cur_col) {
      cur_val = p.add(cur_val, term);
    } else {
      if (open) {
        out_cols.push_back(cur_col);
        out_vals.push_back(cur_val);
      }
      open = true;
      cur_col = c.col;
      cur_val = term;
    }
    if (c.pos + 1 < brow_cols.size()) {
      heap.push(Cursor{brow_cols[c.pos + 1], c.ka, c.pos + 1});
    }
  }
  if (open) {
    out_cols.push_back(cur_col);
    out_vals.push_back(cur_val);
  }
}

template <typename P>
sparse::Csr<typename P::value_type> spgemm(
    const P& p, const sparse::Csr<typename P::value_type>& a,
    const sparse::Csr<typename P::value_type>& b, SpGemmAlgo algo) {
  using T = typename P::value_type;
  const index_t nrows = a.nrows();
  std::vector<std::vector<index_t>> chunk_cols(
      static_cast<std::size_t>(nrows));
  std::vector<std::vector<T>> chunk_vals(static_cast<std::size_t>(nrows));
  std::vector<T> acc;
  std::vector<index_t> stamp;
  std::vector<index_t> touched;
  std::vector<std::pair<index_t, T>> hash_scratch;
  if (algo == SpGemmAlgo::kGustavson) {
    acc.resize(static_cast<std::size_t>(b.ncols()));
    stamp.assign(static_cast<std::size_t>(b.ncols()), index_t{-1});
  }
  for (index_t i = 0; i < nrows; ++i) {
    auto& oc = chunk_cols[static_cast<std::size_t>(i)];
    auto& ov = chunk_vals[static_cast<std::size_t>(i)];
    switch (algo) {
      case SpGemmAlgo::kGustavson:
        row_gustavson(p, a, b, i, acc, stamp, i, touched, oc, ov);
        break;
      case SpGemmAlgo::kHash:
        row_hash(p, a, b, i, hash_scratch, oc, ov);
        break;
      default:
        row_heap(p, a, b, i, oc, ov);
        break;
    }
  }
  std::vector<index_t> row_ptr(static_cast<std::size_t>(nrows) + 1, 0);
  for (index_t i = 0; i < nrows; ++i) {
    row_ptr[static_cast<std::size_t>(i) + 1] =
        row_ptr[static_cast<std::size_t>(i)] +
        static_cast<index_t>(chunk_cols[static_cast<std::size_t>(i)].size());
  }
  const auto total = static_cast<std::size_t>(row_ptr.back());
  std::vector<index_t> cols(total);
  std::vector<T> vals(total);
  for (index_t i = 0; i < nrows; ++i) {
    const auto& oc = chunk_cols[static_cast<std::size_t>(i)];
    const auto& ov = chunk_vals[static_cast<std::size_t>(i)];
    std::copy(oc.begin(), oc.end(),
              cols.begin() + row_ptr[static_cast<std::size_t>(i)]);
    std::copy(ov.begin(), ov.end(),
              vals.begin() + row_ptr[static_cast<std::size_t>(i)]);
  }
  return sparse::Csr<T>(nrows, b.ncols(), std::move(row_ptr), std::move(cols),
                        std::move(vals));
}

}  // namespace legacy

index_t flops_of(const sparse::Csr<double>& a, const sparse::Csr<double>& b) {
  index_t flops = 0;
  for (index_t i = 0; i < a.nrows(); ++i) {
    for (const index_t k : a.row_cols(i)) flops += b.row_nnz(k);
  }
  return flops;
}

/// Runs one (engine, algo, n, density) ablation point, reporting flops/s
/// and the allocs-per-output-row proxy.
template <typename Product>
void spgemm_point(benchmark::State& state, index_t n, double density,
                  Product&& product) {
  const auto a = bench::random_matrix(n, n, density, 1);
  const auto b = bench::random_matrix(n, n, density, 2);
  const index_t flops = flops_of(a, b);
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const auto before = bench::alloc_count();
    auto c = product(a, b);
    benchmark::DoNotOptimize(c);
    allocs += bench::alloc_count() - before;
  }
  state.SetItemsProcessed(state.iterations() * flops);
  state.counters["nnzA"] = static_cast<double>(a.nnz());
  state.counters["allocs_per_row"] =
      static_cast<double>(allocs) /
      (static_cast<double>(state.iterations()) * static_cast<double>(n));
}

void two_pass_point(benchmark::State& state, SpGemmAlgo algo) {
  const algebra::PlusTimes<double> p;
  spgemm_point(state, state.range(0),
               1e-3 * static_cast<double>(state.range(1)),
               [&](const auto& a, const auto& b) {
                 return sparse::spgemm(p, a, b, algo);
               });
}
void legacy_point(benchmark::State& state, SpGemmAlgo algo) {
  const algebra::PlusTimes<double> p;
  spgemm_point(state, state.range(0),
               1e-3 * static_cast<double>(state.range(1)),
               [&](const auto& a, const auto& b) {
                 return legacy::spgemm(p, a, b, algo);
               });
}

void BM_SpGemm_Gustavson(benchmark::State& state) {
  two_pass_point(state, SpGemmAlgo::kGustavson);
}
void BM_SpGemm_Hash(benchmark::State& state) {
  two_pass_point(state, SpGemmAlgo::kHash);
}
void BM_SpGemm_Heap(benchmark::State& state) {
  two_pass_point(state, SpGemmAlgo::kHeap);
}
void BM_SpGemm_Auto(benchmark::State& state) {
  two_pass_point(state, SpGemmAlgo::kAuto);
}
void BM_SpGemmLegacy_Gustavson(benchmark::State& state) {
  legacy_point(state, SpGemmAlgo::kGustavson);
}
void BM_SpGemmLegacy_Hash(benchmark::State& state) {
  legacy_point(state, SpGemmAlgo::kHash);
}
void BM_SpGemmLegacy_Heap(benchmark::State& state) {
  legacy_point(state, SpGemmAlgo::kHeap);
}

// Ablation grid: density sweep at n=1024 (0.1%, 1%, 5%) plus a size
// sweep at 1% — identical points for the engine and the legacy kernel so
// the JSON carries the comparison directly.
#define I2A_ABLATION_GRID(bm)                                          \
  BENCHMARK(bm)                                                        \
      ->Args({1024, 1})                                                \
      ->Args({1024, 10})                                               \
      ->Args({1024, 50})                                               \
      ->Args({256, 10})                                                \
      ->Args({2048, 10})

I2A_ABLATION_GRID(BM_SpGemm_Gustavson);
I2A_ABLATION_GRID(BM_SpGemm_Hash);
I2A_ABLATION_GRID(BM_SpGemm_Heap);
I2A_ABLATION_GRID(BM_SpGemm_Auto);
I2A_ABLATION_GRID(BM_SpGemmLegacy_Gustavson);
I2A_ABLATION_GRID(BM_SpGemmLegacy_Hash);
I2A_ABLATION_GRID(BM_SpGemmLegacy_Heap);

// Dense full-semantics baseline (the paper's literal definition) — small
// sizes only; demonstrates why sparse shortcuts matter.
void BM_SpGemm_DenseBaseline(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto a = bench::random_matrix(n, n, 0.01, 1);
  const auto b = bench::random_matrix(n, n, 0.01, 2);
  const algebra::PlusTimes<double> p;
  for (auto _ : state) {
    auto c = sparse::multiply_full_semantics(p, a, b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SpGemm_DenseBaseline)->Arg(128)->Arg(256)->Arg(512);

// The paper's product shape: tall incidence arrays, Eᵀ E (few columns).
// Three variants: the fused engine, the fused engine over a prebuilt CSC
// view (the repeated-product form), and the legacy materialize-the-
// transpose path. Items are edges, so items/s is edges/s; all three
// share one workload builder so they measure the same problem, and all
// three report allocs_per_row. `make_product(eout, ein)` runs once
// outside the timed loop, so per-instance state (the prebuilt view)
// lands there.
template <typename MakeProduct>
void incidence_point(benchmark::State& state, MakeProduct&& make_product) {
  const index_t edges = state.range(0);
  const index_t vertices = edges / 8;
  const auto density = 1.0 / static_cast<double>(vertices);
  const auto eout = bench::random_matrix(edges, vertices, density, 3);
  const auto ein = bench::random_matrix(edges, vertices, density, 4);
  auto product = make_product(eout, ein);
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const auto before = bench::alloc_count();
    auto c = product();
    benchmark::DoNotOptimize(c);
    allocs += bench::alloc_count() - before;
  }
  state.SetItemsProcessed(state.iterations() * edges);
  state.counters["allocs_per_row"] =
      static_cast<double>(allocs) / (static_cast<double>(state.iterations()) *
                                     static_cast<double>(vertices));
}

void BM_SpGemm_IncidenceShape(benchmark::State& state) {
  const algebra::PlusTimes<double> p;
  incidence_point(state, [&](const auto& eout, const auto& ein) {
    return [&p, &eout, &ein] {
      return sparse::spgemm_at_b(p, eout, ein, sparse::SpGemmAlgo::kAuto);
    };
  });
}
void BM_SpGemm_IncidenceShapePrebuilt(benchmark::State& state) {
  const algebra::PlusTimes<double> p;
  incidence_point(state, [&](const auto& eout, const auto& ein) {
    return [&p, &ein, view = sparse::CscView<double>(eout)] {
      return sparse::spgemm_at_b(p, view, ein, sparse::SpGemmAlgo::kAuto);
    };
  });
}
void BM_SpGemmLegacy_IncidenceShape(benchmark::State& state) {
  const algebra::PlusTimes<double> p;
  incidence_point(state, [&](const auto& eout, const auto& ein) {
    return [&p, &eout, &ein] {
      return legacy::spgemm(p, sparse::transpose(eout), ein,
                            SpGemmAlgo::kGustavson);
    };
  });
}

BENCHMARK(BM_SpGemm_IncidenceShape)->RangeMultiplier(4)->Range(1024, 65536);
BENCHMARK(BM_SpGemm_IncidenceShapePrebuilt)
    ->RangeMultiplier(4)
    ->Range(1024, 65536);
BENCHMARK(BM_SpGemmLegacy_IncidenceShape)
    ->RangeMultiplier(4)
    ->Range(1024, 65536);

}  // namespace

int main(int argc, char** argv) {
  return i2a::bench::run_benchmarks_json(argc, argv, "BENCH_spgemm.json");
}
