/// \file bench_spgemm_ablation.cpp
/// \brief PERF2: SpGEMM algorithm ablation — Gustavson vs hash vs heap vs
///        the dense full-semantics baseline, across density and shape.
///
/// Answers the design questions DESIGN.md calls out: when does the dense
/// accumulator beat the hash accumulator (narrow B / denser C rows), when
/// does the heap win (tiny intermediate products), and how large the
/// sparse-over-dense advantage is.

#include <benchmark/benchmark.h>

#include "algebra/pairs.hpp"
#include "bench_common.hpp"
#include "sparse/dense.hpp"
#include "sparse/spgemm.hpp"

namespace {

using namespace i2a;
using sparse::SpGemmAlgo;

void spgemm_bench(benchmark::State& state, SpGemmAlgo algo, index_t n,
                  double density) {
  const auto a = bench::random_matrix(n, n, density, 1);
  const auto b = bench::random_matrix(n, n, density, 2);
  const algebra::PlusTimes<double> p;
  std::int64_t flops = 0;
  for (index_t i = 0; i < n; ++i) {
    for (const index_t k : a.row_cols(i)) flops += b.row_nnz(k);
  }
  for (auto _ : state) {
    auto c = sparse::spgemm(p, a, b, algo);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * flops);
  state.counters["nnzA"] = static_cast<double>(a.nnz());
}

void BM_SpGemm_Gustavson(benchmark::State& state) {
  spgemm_bench(state, SpGemmAlgo::kGustavson, state.range(0),
               1e-3 * static_cast<double>(state.range(1)));
}
void BM_SpGemm_Hash(benchmark::State& state) {
  spgemm_bench(state, SpGemmAlgo::kHash, state.range(0),
               1e-3 * static_cast<double>(state.range(1)));
}
void BM_SpGemm_Heap(benchmark::State& state) {
  spgemm_bench(state, SpGemmAlgo::kHeap, state.range(0),
               1e-3 * static_cast<double>(state.range(1)));
}

// Density sweep at n=1024: 0.1%, 1%, 5%.
BENCHMARK(BM_SpGemm_Gustavson)
    ->Args({1024, 1})
    ->Args({1024, 10})
    ->Args({1024, 50});
BENCHMARK(BM_SpGemm_Hash)
    ->Args({1024, 1})
    ->Args({1024, 10})
    ->Args({1024, 50});
BENCHMARK(BM_SpGemm_Heap)
    ->Args({1024, 1})
    ->Args({1024, 10})
    ->Args({1024, 50});

// Size sweep at 1% density.
BENCHMARK(BM_SpGemm_Gustavson)->Args({256, 10})->Args({2048, 10});
BENCHMARK(BM_SpGemm_Hash)->Args({256, 10})->Args({2048, 10});
BENCHMARK(BM_SpGemm_Heap)->Args({256, 10})->Args({2048, 10});

// Dense full-semantics baseline (the paper's literal definition) — small
// sizes only; demonstrates why sparse shortcuts matter.
void BM_SpGemm_DenseBaseline(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto a = bench::random_matrix(n, n, 0.01, 1);
  const auto b = bench::random_matrix(n, n, 0.01, 2);
  const algebra::PlusTimes<double> p;
  for (auto _ : state) {
    auto c = sparse::multiply_full_semantics(p, a, b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SpGemm_DenseBaseline)->Arg(128)->Arg(256)->Arg(512);

// The paper's product shape: tall incidence arrays, Eᵀ E (few columns).
void BM_SpGemm_IncidenceShape(benchmark::State& state) {
  const index_t edges = state.range(0);
  const index_t vertices = edges / 8;
  const auto eout = bench::random_matrix(edges, vertices, 1.0 / vertices, 3);
  const auto ein = bench::random_matrix(edges, vertices, 1.0 / vertices, 4);
  const algebra::PlusTimes<double> p;
  for (auto _ : state) {
    auto c = sparse::spgemm_at_b(p, eout, ein);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_SpGemm_IncidenceShape)
    ->RangeMultiplier(4)
    ->Range(1024, 65536);

}  // namespace

BENCHMARK_MAIN();
