#pragma once
/// \file bench_common.hpp
/// \brief Shared workload builders for the google-benchmark suites.

#include <cstdint>

#include "graph/generators.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/prng.hpp"

namespace i2a::bench {

/// Uniform random matrix with the given density and positive values.
/// Geometric gap skipping (util::sample_bernoulli_indices, shared with
/// graph::gen::erdos_renyi) makes this O(expected nnz) instead of
/// O(nr * nc) coin flips, so workload setup doesn't dwarf the kernels
/// being measured.
inline sparse::Csr<double> random_matrix(index_t nr, index_t nc,
                                         double density, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  sparse::Coo<double> coo(nr, nc);
  // The nnz estimate converts each factor to double *before* multiplying,
  // so the reserve hint can't overflow in index_t arithmetic. The sampler
  // below needs the exact int64 cell count; checked_mul turns the
  // unsupported >= 2^63-cell regime into a loud error instead of a
  // silently empty matrix.
  const auto expected = static_cast<std::size_t>(
      density * static_cast<double>(nr) * static_cast<double>(nc));
  coo.entries().reserve(expected + 16);
  if (nr > 0 && nc > 0) {
    util::sample_bernoulli_indices(rng, checked_mul(nr, nc), density,
                                   [&](index_t t) {
                                     coo.push(t / nc, t % nc,
                                              rng.uniform(0.5, 9.5));
                                   });
  }
  return sparse::Csr<double>::from_coo(std::move(coo),
                                       sparse::DupPolicy::kKeepFirst);
}

/// Standard Graph500-flavored R-MAT instance used across the suites.
inline graph::Graph rmat_graph(int scale, index_t edge_factor,
                               std::uint64_t seed) {
  return graph::gen::rmat(scale, edge_factor, 0.57, 0.19, 0.19, seed);
}

}  // namespace i2a::bench
