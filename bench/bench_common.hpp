#pragma once
/// \file bench_common.hpp
/// \brief Shared workload builders for the google-benchmark suites, plus
///        the machine-readable perf plumbing: a JSON-reporting main
///        (`run_benchmarks_json`) and an opt-in global allocation counter
///        (`I2A_BENCH_COUNT_ALLOCS`) that turns heap traffic into a
///        benchmark counter — the allocs-per-row proxy the SpGEMM engine
///        work is measured by.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/generators.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/prng.hpp"

#ifdef I2A_BENCH_COUNT_ALLOCS
#include <atomic>
#include <cstdlib>
#include <new>

namespace i2a::bench {
inline std::atomic<std::uint64_t> g_alloc_count{0};

/// Number of global `operator new` calls so far; diff around a region to
/// count its allocations.
inline std::uint64_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}
}  // namespace i2a::bench

// Replaceable global allocation functions (one TU per bench binary, so
// defining them in this header is ODR-safe). Counting only — allocation
// itself stays malloc/free.
namespace i2a::bench::detail {
inline void* counted_malloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace i2a::bench::detail

namespace i2a::bench::detail {
inline void* counted_aligned_alloc(std::size_t size, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(al);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc();
}
}  // namespace i2a::bench::detail

void* operator new(std::size_t size) {
  return i2a::bench::detail::counted_malloc(size);
}
void* operator new[](std::size_t size) {
  return i2a::bench::detail::counted_malloc(size);
}
void* operator new(std::size_t size, std::align_val_t al) {
  return i2a::bench::detail::counted_aligned_alloc(size, al);
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return i2a::bench::detail::counted_aligned_alloc(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // I2A_BENCH_COUNT_ALLOCS

namespace i2a::bench {

/// Drop-in BENCHMARK_MAIN replacement that records the run to a JSON
/// file (`--benchmark_out` still wins if the caller passes one), so the
/// perf trajectory is machine-readable from every invocation:
///
///   int main(int argc, char** argv) {
///     return i2a::bench::run_benchmarks_json(argc, argv,
///                                            "BENCH_spgemm.json");
///   }
inline int run_benchmarks_json(int argc, char** argv,
                               const char* default_out) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_arg;
  std::string fmt_arg;
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out=")) {
      has_out = true;
    }
  }
  if (!has_out) {
    out_arg = std::string("--benchmark_out=") + default_out;
    fmt_arg = "--benchmark_out_format=json";
    args.push_back(out_arg.data());
    args.push_back(fmt_arg.data());
  }
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// Uniform random matrix with the given density and positive values.
/// Geometric gap skipping (util::sample_bernoulli_indices, shared with
/// graph::gen::erdos_renyi) makes this O(expected nnz) instead of
/// O(nr * nc) coin flips, so workload setup doesn't dwarf the kernels
/// being measured.
inline sparse::Csr<double> random_matrix(index_t nr, index_t nc,
                                         double density, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  sparse::Coo<double> coo(nr, nc);
  // The nnz estimate converts each factor to double *before* multiplying,
  // so the reserve hint can't overflow in index_t arithmetic. The sampler
  // below needs the exact int64 cell count; checked_mul turns the
  // unsupported >= 2^63-cell regime into a loud error instead of a
  // silently empty matrix.
  const auto expected = static_cast<std::size_t>(
      density * static_cast<double>(nr) * static_cast<double>(nc));
  coo.reserve(expected + 16);
  if (nr > 0 && nc > 0) {
    util::sample_bernoulli_indices(rng, checked_mul(nr, nc), density,
                                   [&](index_t t) {
                                     coo.push(t / nc, t % nc,
                                              rng.uniform(0.5, 9.5));
                                   });
  }
  return sparse::Csr<double>::from_coo(std::move(coo),
                                       sparse::DupPolicy::kKeepFirst);
}

/// Standard Graph500-flavored R-MAT instance used across the suites.
inline graph::Graph rmat_graph(int scale, index_t edge_factor,
                               std::uint64_t seed) {
  return graph::gen::rmat(scale, edge_factor, 0.57, 0.19, 0.19, seed);
}

}  // namespace i2a::bench
