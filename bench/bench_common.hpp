#pragma once
/// \file bench_common.hpp
/// \brief Shared workload builders for the google-benchmark suites.

#include <cstdint>

#include "graph/generators.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/prng.hpp"

namespace i2a::bench {

/// Uniform random matrix with the given density and positive values.
inline sparse::Csr<double> random_matrix(index_t nr, index_t nc,
                                         double density, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  sparse::Coo<double> coo(nr, nc);
  const auto expected =
      static_cast<std::size_t>(density * static_cast<double>(nr * nc));
  coo.entries().reserve(expected + 16);
  for (index_t i = 0; i < nr; ++i) {
    for (index_t j = 0; j < nc; ++j) {
      if (rng.chance(density)) coo.push(i, j, rng.uniform(0.5, 9.5));
    }
  }
  return sparse::Csr<double>::from_coo(std::move(coo),
                                       sparse::DupPolicy::kKeepFirst);
}

/// Standard Graph500-flavored R-MAT instance used across the suites.
inline graph::Graph rmat_graph(int scale, index_t edge_factor,
                               std::uint64_t seed) {
  return graph::gen::rmat(scale, edge_factor, 0.57, 0.19, 0.19, seed);
}

}  // namespace i2a::bench
