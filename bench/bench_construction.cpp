/// \file bench_construction.cpp
/// \brief PERF1: incidence→adjacency construction throughput (the paper's
///        central operation) across graph families, scales, and the seven
///        operator pairs.
///
/// The paper reports no timings; this suite characterizes the
/// implementation the way a GABB-venue artifact would: edges/second for
/// A = Eᵀout ⊕.⊗ Ein as a function of scale, skew, and algebra.

#include <benchmark/benchmark.h>

#include "algebra/pairs.hpp"
#include "bench_common.hpp"
#include "graph/incidence.hpp"
#include "sparse/spgemm.hpp"

namespace {

using namespace i2a;

template <typename P>
void construction_bench(benchmark::State& state, const P& p,
                        const graph::Graph& g) {
  const auto inc = graph::incidence_arrays(g, p);
  for (auto _ : state) {
    auto a = graph::adjacency_array(p, inc);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  state.counters["edges"] = static_cast<double>(g.num_edges());
  state.counters["vertices"] = static_cast<double>(g.num_vertices());
}

void BM_Construct_RMAT_PlusTimes(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 8, 7);
  construction_bench(state, algebra::PlusTimes<double>{}, g);
}
BENCHMARK(BM_Construct_RMAT_PlusTimes)->DenseRange(8, 14, 2);

void BM_Construct_RMAT_MinPlus(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 8, 7);
  construction_bench(state, algebra::MinPlus<double>{}, g);
}
BENCHMARK(BM_Construct_RMAT_MinPlus)->DenseRange(8, 14, 2);

void BM_Construct_RMAT_MaxMin(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 8, 7);
  construction_bench(state, algebra::MaxMin<double>{}, g);
}
BENCHMARK(BM_Construct_RMAT_MaxMin)->DenseRange(8, 14, 2);

void BM_Construct_ER_PlusTimes(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto g = graph::gen::erdos_renyi(n, 8.0 / static_cast<double>(n), 5);
  construction_bench(state, algebra::PlusTimes<double>{}, g);
}
BENCHMARK(BM_Construct_ER_PlusTimes)->RangeMultiplier(4)->Range(256, 16384);

void BM_Construct_Bipartite_PlusTimes(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto g = graph::gen::random_bipartite(n, n, 8, 11);
  construction_bench(state, algebra::PlusTimes<double>{}, g);
}
BENCHMARK(BM_Construct_Bipartite_PlusTimes)
    ->RangeMultiplier(4)
    ->Range(256, 16384);

// End-to-end: graph -> incidence arrays -> adjacency (includes the
// incidence-assembly cost a data pipeline pays).
void BM_Construct_EndToEnd(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 8, 7);
  const algebra::PlusTimes<double> p;
  for (auto _ : state) {
    auto a = graph::build_adjacency(g, p);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Construct_EndToEnd)->DenseRange(8, 14, 2);

}  // namespace

BENCHMARK_MAIN();
