/// \file bench_construction.cpp
/// \brief PERF1: incidence→adjacency construction throughput (the paper's
///        central operation) across graph families, scales, and the seven
///        operator pairs.
///
/// The paper reports no timings; this suite characterizes the
/// implementation the way a GABB-venue artifact would. Since PR 3 every
/// `BM_Construct_*` family point runs the **whole pipeline** per
/// iteration — sort-free incidence assembly plus the SpGEMM product —
/// and splits the two phases into `assembly_s` / `spgemm_s` counters
/// (average seconds per iteration). `edges_per_sec` (= items/s) is the
/// pipeline rate and `allocs_per_row` tracks heap traffic per adjacency
/// row. The pre-PR-3 assembly (COO staging + stable-sort
/// `from_coo_reference`) stays in-bench as `BM_ConstructLegacy_*` so the
/// sort-free engine's delta is measured, not remembered.

#define I2A_BENCH_COUNT_ALLOCS
#include "bench_common.hpp"

#include "algebra/pairs.hpp"
#include "graph/incidence.hpp"
#include "sparse/spgemm.hpp"
#include "util/timer.hpp"

namespace {

using namespace i2a;

/// The pre-PR-3 incidence assembly: stage every edge endpoint through a
/// COO buffer, then sort-group-compress with the reference engine. Kept
/// as the legacy baseline the sort-free path is measured against.
graph::IncidencePair<double> legacy_incidence_arrays(const graph::Graph& g) {
  sparse::Coo<double> out(g.num_edges(), g.num_vertices());
  sparse::Coo<double> in(g.num_edges(), g.num_vertices());
  const auto& edges = g.edges();
  for (index_t e = 0; e < g.num_edges(); ++e) {
    out.push(e, edges[static_cast<std::size_t>(e)].src, 1.0);
    in.push(e, edges[static_cast<std::size_t>(e)].dst, 1.0);
  }
  return graph::IncidencePair<double>{
      sparse::Csr<double>::from_coo_reference(std::move(out),
                                              sparse::DupPolicy::kKeepFirst),
      sparse::Csr<double>::from_coo_reference(std::move(in),
                                              sparse::DupPolicy::kKeepFirst)};
}

/// Full pipeline per iteration: assembly (graph → Eout/Ein) then product
/// (A = Eᵀout ⊕.⊗ Ein), with per-phase wall timings split into counters.
template <typename P, typename Assemble>
void pipeline_bench(benchmark::State& state, const P& p,
                    const graph::Graph& g, const Assemble& assemble) {
  std::uint64_t allocs = 0;
  double assembly_s = 0.0;
  double spgemm_s = 0.0;
  for (auto _ : state) {
    const auto before = bench::alloc_count();
    util::Timer phase;
    const auto inc = assemble(g);
    assembly_s += phase.seconds();
    phase.reset();
    auto a = graph::adjacency_array(p, inc);
    spgemm_s += phase.seconds();
    benchmark::DoNotOptimize(a);
    allocs += bench::alloc_count() - before;
  }
  const auto iters = static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  state.counters["edges"] = static_cast<double>(g.num_edges());
  state.counters["vertices"] = static_cast<double>(g.num_vertices());
  state.counters["edges_per_sec"] = benchmark::Counter(
      iters * static_cast<double>(g.num_edges()), benchmark::Counter::kIsRate);
  state.counters["assembly_s"] =
      benchmark::Counter(assembly_s, benchmark::Counter::kAvgIterations);
  state.counters["spgemm_s"] =
      benchmark::Counter(spgemm_s, benchmark::Counter::kAvgIterations);
  state.counters["allocs_per_row"] =
      static_cast<double>(allocs) /
      (iters * static_cast<double>(g.num_vertices() > 0 ? g.num_vertices()
                                                        : 1));
}

template <typename P>
void construction_bench(benchmark::State& state, const P& p,
                        const graph::Graph& g) {
  pipeline_bench(state, p, g, [&p](const graph::Graph& gr) {
    return graph::incidence_arrays(gr, p);
  });
}

void legacy_construction_bench(benchmark::State& state,
                               const graph::Graph& g) {
  pipeline_bench(state, algebra::PlusTimes<double>{}, g,
                 [](const graph::Graph& gr) {
                   return legacy_incidence_arrays(gr);
                 });
}

void BM_Construct_RMAT_PlusTimes(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 8, 7);
  construction_bench(state, algebra::PlusTimes<double>{}, g);
}
BENCHMARK(BM_Construct_RMAT_PlusTimes)->DenseRange(8, 14, 2);

void BM_ConstructLegacy_RMAT_PlusTimes(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 8, 7);
  legacy_construction_bench(state, g);
}
BENCHMARK(BM_ConstructLegacy_RMAT_PlusTimes)->DenseRange(8, 14, 2);

void BM_Construct_RMAT_MinPlus(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 8, 7);
  construction_bench(state, algebra::MinPlus<double>{}, g);
}
BENCHMARK(BM_Construct_RMAT_MinPlus)->DenseRange(8, 14, 2);

void BM_Construct_RMAT_MaxMin(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 8, 7);
  construction_bench(state, algebra::MaxMin<double>{}, g);
}
BENCHMARK(BM_Construct_RMAT_MaxMin)->DenseRange(8, 14, 2);

void BM_Construct_ER_PlusTimes(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto g = graph::gen::erdos_renyi(n, 8.0 / static_cast<double>(n), 5);
  construction_bench(state, algebra::PlusTimes<double>{}, g);
}
BENCHMARK(BM_Construct_ER_PlusTimes)->RangeMultiplier(4)->Range(256, 16384);

void BM_ConstructLegacy_ER_PlusTimes(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto g = graph::gen::erdos_renyi(n, 8.0 / static_cast<double>(n), 5);
  legacy_construction_bench(state, g);
}
BENCHMARK(BM_ConstructLegacy_ER_PlusTimes)
    ->RangeMultiplier(4)
    ->Range(256, 16384);

void BM_Construct_Bipartite_PlusTimes(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto g = graph::gen::random_bipartite(n, n, 8, 11);
  construction_bench(state, algebra::PlusTimes<double>{}, g);
}
BENCHMARK(BM_Construct_Bipartite_PlusTimes)
    ->RangeMultiplier(4)
    ->Range(256, 16384);

void BM_ConstructLegacy_Bipartite_PlusTimes(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto g = graph::gen::random_bipartite(n, n, 8, 11);
  legacy_construction_bench(state, g);
}
BENCHMARK(BM_ConstructLegacy_Bipartite_PlusTimes)
    ->RangeMultiplier(4)
    ->Range(256, 16384);

// Assembly only: graph → incidence arrays, no product. The point where
// the sort-free identity-ramp build shows undiluted against the COO +
// stable-sort path.
void BM_Construct_Assembly_RMAT(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 8, 7);
  const algebra::PlusTimes<double> p;
  for (auto _ : state) {
    auto inc = graph::incidence_arrays(g, p);
    benchmark::DoNotOptimize(inc);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  state.counters["edges_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(g.num_edges()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Construct_Assembly_RMAT)->DenseRange(8, 14, 2);

void BM_ConstructLegacy_Assembly_RMAT(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 8, 7);
  for (auto _ : state) {
    auto inc = legacy_incidence_arrays(g);
    benchmark::DoNotOptimize(inc);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  state.counters["edges_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(g.num_edges()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConstructLegacy_Assembly_RMAT)->DenseRange(8, 14, 2);

// General COO→CSR assembly on a duplicate-heavy, shuffled buffer — the
// worst case for the two-pass engine (nothing is pre-grouped, every row
// needs the sort + fold pass) against the worst case for the reference
// (one big comparison sort). Entries/s in items/s; the per-iteration
// buffer copy is identical in both variants.
sparse::Coo<double> shuffled_dup_coo(index_t entries) {
  util::Xoshiro256 rng(29);
  const index_t nrows = entries / 8 > 0 ? entries / 8 : 1;
  sparse::Coo<double> coo(nrows, 256);
  coo.reserve(static_cast<std::size_t>(entries));
  for (index_t k = 0; k < entries; ++k) {
    coo.push(rng.between(0, nrows - 1), rng.between(0, 255),
             rng.uniform(0.1, 9.9));
  }
  return coo;
}

void BM_Construct_FromCoo(benchmark::State& state) {
  const auto master = shuffled_dup_coo(state.range(0));
  for (auto _ : state) {
    auto coo = master;
    auto m = sparse::Csr<double>::from_coo(std::move(coo),
                                           sparse::DupPolicy::kSum);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<index_t>(master.nnz()));
}
BENCHMARK(BM_Construct_FromCoo)->RangeMultiplier(4)->Range(16384, 262144);

void BM_ConstructLegacy_FromCoo(benchmark::State& state) {
  const auto master = shuffled_dup_coo(state.range(0));
  for (auto _ : state) {
    auto coo = master;
    auto m = sparse::Csr<double>::from_coo_reference(std::move(coo),
                                                     sparse::DupPolicy::kSum);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<index_t>(master.nnz()));
}
BENCHMARK(BM_ConstructLegacy_FromCoo)
    ->RangeMultiplier(4)
    ->Range(16384, 262144);

// End-to-end: graph -> incidence arrays -> adjacency (includes the
// incidence-assembly cost a data pipeline pays). Same measurement as the
// pre-PR-3 suite, so this point is comparable across committed
// BENCH_construction.json revisions.
void BM_Construct_EndToEnd(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 8, 7);
  const algebra::PlusTimes<double> p;
  for (auto _ : state) {
    auto a = graph::build_adjacency(g, p);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  state.counters["edges_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(g.num_edges()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Construct_EndToEnd)->DenseRange(8, 14, 2);

void BM_ConstructLegacy_EndToEnd(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 8, 7);
  const algebra::PlusTimes<double> p;
  for (auto _ : state) {
    auto a = graph::adjacency_array(p, legacy_incidence_arrays(g));
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  state.counters["edges_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(g.num_edges()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConstructLegacy_EndToEnd)->DenseRange(8, 14, 2);

// Repeated-product form: forward + reverse adjacency from one incidence
// pair with the CSC views prebuilt once — the shape a serving layer that
// answers both directions amortizes.
void BM_Construct_PrebuiltViews(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 8, 7);
  const algebra::PlusTimes<double> p;
  const auto inc = graph::incidence_arrays(g, p);
  const graph::IncidenceViews<double> views(inc);
  for (auto _ : state) {
    auto fwd = graph::adjacency_array(p, views, inc);
    auto rev = graph::reverse_adjacency_array(p, views, inc);
    benchmark::DoNotOptimize(fwd);
    benchmark::DoNotOptimize(rev);
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
  state.counters["edges_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 *
          static_cast<double>(g.num_edges()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Construct_PrebuiltViews)->DenseRange(8, 14, 2);

}  // namespace

int main(int argc, char** argv) {
  return i2a::bench::run_benchmarks_json(argc, argv,
                                         "BENCH_construction.json");
}
