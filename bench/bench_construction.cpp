/// \file bench_construction.cpp
/// \brief PERF1: incidence→adjacency construction throughput (the paper's
///        central operation) across graph families, scales, and the seven
///        operator pairs.
///
/// The paper reports no timings; this suite characterizes the
/// implementation the way a GABB-venue artifact would: edges/second for
/// A = Eᵀout ⊕.⊗ Ein as a function of scale, skew, and algebra — items/s
/// in the JSON (BENCH_construction.json by default) *is* edges/s, and
/// `allocs_per_row` tracks heap traffic per adjacency row.

#define I2A_BENCH_COUNT_ALLOCS
#include "bench_common.hpp"

#include "algebra/pairs.hpp"
#include "graph/incidence.hpp"
#include "sparse/spgemm.hpp"

namespace {

using namespace i2a;

template <typename P>
void construction_bench(benchmark::State& state, const P& p,
                        const graph::Graph& g) {
  const auto inc = graph::incidence_arrays(g, p);
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const auto before = bench::alloc_count();
    auto a = graph::adjacency_array(p, inc);
    benchmark::DoNotOptimize(a);
    allocs += bench::alloc_count() - before;
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  state.counters["edges"] = static_cast<double>(g.num_edges());
  state.counters["vertices"] = static_cast<double>(g.num_vertices());
  state.counters["allocs_per_row"] =
      static_cast<double>(allocs) /
      (static_cast<double>(state.iterations()) *
       static_cast<double>(g.num_vertices() > 0 ? g.num_vertices() : 1));
}

void BM_Construct_RMAT_PlusTimes(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 8, 7);
  construction_bench(state, algebra::PlusTimes<double>{}, g);
}
BENCHMARK(BM_Construct_RMAT_PlusTimes)->DenseRange(8, 14, 2);

void BM_Construct_RMAT_MinPlus(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 8, 7);
  construction_bench(state, algebra::MinPlus<double>{}, g);
}
BENCHMARK(BM_Construct_RMAT_MinPlus)->DenseRange(8, 14, 2);

void BM_Construct_RMAT_MaxMin(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 8, 7);
  construction_bench(state, algebra::MaxMin<double>{}, g);
}
BENCHMARK(BM_Construct_RMAT_MaxMin)->DenseRange(8, 14, 2);

void BM_Construct_ER_PlusTimes(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto g = graph::gen::erdos_renyi(n, 8.0 / static_cast<double>(n), 5);
  construction_bench(state, algebra::PlusTimes<double>{}, g);
}
BENCHMARK(BM_Construct_ER_PlusTimes)->RangeMultiplier(4)->Range(256, 16384);

void BM_Construct_Bipartite_PlusTimes(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto g = graph::gen::random_bipartite(n, n, 8, 11);
  construction_bench(state, algebra::PlusTimes<double>{}, g);
}
BENCHMARK(BM_Construct_Bipartite_PlusTimes)
    ->RangeMultiplier(4)
    ->Range(256, 16384);

// End-to-end: graph -> incidence arrays -> adjacency (includes the
// incidence-assembly cost a data pipeline pays).
void BM_Construct_EndToEnd(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 8, 7);
  const algebra::PlusTimes<double> p;
  for (auto _ : state) {
    auto a = graph::build_adjacency(g, p);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Construct_EndToEnd)->DenseRange(8, 14, 2);

// Repeated-product form: forward + reverse adjacency from one incidence
// pair with the CSC views prebuilt once — the shape a serving layer that
// answers both directions amortizes.
void BM_Construct_PrebuiltViews(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 8, 7);
  const algebra::PlusTimes<double> p;
  const auto inc = graph::incidence_arrays(g, p);
  const graph::IncidenceViews<double> views(inc);
  for (auto _ : state) {
    auto fwd = graph::adjacency_array(p, views, inc);
    auto rev = graph::reverse_adjacency_array(p, views, inc);
    benchmark::DoNotOptimize(fwd);
    benchmark::DoNotOptimize(rev);
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_Construct_PrebuiltViews)->DenseRange(8, 14, 2);

}  // namespace

int main(int argc, char** argv) {
  return i2a::bench::run_benchmarks_json(argc, argv,
                                         "BENCH_construction.json");
}
