/// \file bench_serve.cpp
/// \brief PERF7: the concurrent serving core. Two questions, numbers
///        committed as BENCH_serve.json:
///
///   1. `BM_ServeIngestThroughput` — pure ingest rate (edges/s) through
///      `stream::ShardedBuilder` with background compaction, vs shard
///      count (1 = the degenerate single-builder fuse). Shards share
///      nothing on the hot path, so on multi-core hardware the staging +
///      compaction work spreads; on a single hardware thread the curve
///      is expected roughly flat (the CI/container runner is 1-core —
///      read the committed numbers with that in mind, DESIGN.md §9).
///
///   2. `BM_ServeMixed` — the serving mix: this thread streams every
///      batch while two query threads continuously pin snapshots and run
///      a `fold_row` BFS against them, no locks between the sides.
///      Counters report query latency percentiles (q_p50_ms / q_p99_ms,
///      measured per pin+traverse round on the reader threads) next to
///      writer throughput — the "queries while ingesting" deliverable.
///
///   3. `BM_ServeDegraded` — the same mix with a bounded
///      `max_pending_merges` (DESIGN.md §10): over budget, the writer
///      stalls until the compaction chain catches up (settling inline if
///      it cannot), trading ingest throughput for a bounded run list.
///      Two budget points: 1 (tolerates the in-flight merge — the bound
///      rarely bites, pure bookkeeping overhead) and 0 (every pending
///      merge stalls the writer — backpressure continuously active).
///      backpressure_events counts how often the bound bit; compare
///      items/s and q_p99_ms against BM_ServeMixed to read the price.

#include "bench_common.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <span>
#include <thread>

#include "algebra/pairs.hpp"
#include "graph/algorithms/bfs.hpp"
#include "graph/incidence.hpp"
#include "stream/sharded_builder.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace i2a;

constexpr int kScale = 12;          // 4096 vertices
constexpr index_t kEdgeFactor = 8;  // 32768 edges
constexpr index_t kBatches = 64;
constexpr std::size_t kQueryThreads = 2;

std::vector<std::span<const graph::Edge>> split_batches(
    const std::vector<graph::Edge>& edges, index_t nbatches) {
  std::vector<std::span<const graph::Edge>> out;
  const std::size_t per =
      (edges.size() + static_cast<std::size_t>(nbatches) - 1) /
      static_cast<std::size_t>(nbatches);
  for (std::size_t lo = 0; lo < edges.size(); lo += per) {
    const std::size_t hi = std::min(edges.size(), lo + per);
    out.emplace_back(edges.data() + lo, hi - lo);
  }
  return out;
}

double percentile_ms(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  const auto idx =
      static_cast<std::ptrdiff_t>(q * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + idx, v.end());
  return v[static_cast<std::size_t>(idx)];
}

/// Ingest the whole stream (background compaction on a shared pool),
/// drain, one final snapshot. Arg = shard count.
void BM_ServeIngestThroughput(benchmark::State& state) {
  const auto g = bench::rmat_graph(kScale, kEdgeFactor, 42);
  const auto batches = split_batches(g.edges(), kBatches);
  const algebra::PlusTimes<double> p;
  const auto shards = static_cast<std::size_t>(state.range(0));
  util::ThreadPool pool(4);
  std::uint64_t final_nnz = 0;
  for (auto _ : state) {
    stream::ShardedBuilder<algebra::PlusTimes<double>> b(
        g.num_vertices(), shards, p, stream::Weighting::kUnweighted,
        sparse::SpGemmAlgo::kAuto, &pool, stream::Compaction::kBackground);
    for (const auto& batch : batches) b.ingest(batch);
    b.drain();
    const auto a = b.adjacency();
    benchmark::DoNotOptimize(a.nnz());
    final_nnz = static_cast<std::uint64_t>(a.nnz());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.edges().size()));
  state.counters["final_nnz"] = static_cast<double>(final_nnz);
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_ServeIngestThroughput)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Writer streams all batches while kQueryThreads readers pin + BFS
/// continuously. Items processed = edges ingested (writer throughput);
/// the latency counters come from the reader-side clock.
void BM_ServeMixed(benchmark::State& state) {
  const auto g = bench::rmat_graph(kScale, kEdgeFactor, 42);
  const auto batches = split_batches(g.edges(), kBatches);
  const algebra::PlusTimes<double> p;
  const auto shards = static_cast<std::size_t>(state.range(0));
  util::ThreadPool pool(4);
  std::vector<double> latencies_ms;
  for (auto _ : state) {
    stream::ShardedBuilder<algebra::PlusTimes<double>> b(
        g.num_vertices(), shards, p, stream::Weighting::kUnweighted,
        sparse::SpGemmAlgo::kAuto, &pool, stream::Compaction::kBackground);
    std::atomic<bool> done{false};
    std::vector<std::vector<double>> per_reader(kQueryThreads);
    std::vector<std::thread> readers;
    readers.reserve(kQueryThreads);
    for (std::size_t t = 0; t < kQueryThreads; ++t) {
      readers.emplace_back([&, t] {
        std::uint64_t src = 0x9e3779b9u + t;
        do {
          const auto t0 = std::chrono::steady_clock::now();
          const auto snap = b.snapshot();
          const auto levels = graph::bfs_levels(
              snap, static_cast<index_t>(
                        src % static_cast<std::uint64_t>(g.num_vertices())));
          benchmark::DoNotOptimize(levels.size());
          const auto t1 = std::chrono::steady_clock::now();
          per_reader[t].push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
          src = src * 6364136223846793005ULL + 1442695040888963407ULL;
        } while (!done.load());
      });
    }
    for (const auto& batch : batches) b.ingest(batch);
    b.drain();
    done.store(true);
    for (auto& r : readers) r.join();
    for (auto& v : per_reader) {
      latencies_ms.insert(latencies_ms.end(), v.begin(), v.end());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.edges().size()));
  state.counters["queries"] = static_cast<double>(latencies_ms.size());
  state.counters["q_p50_ms"] = percentile_ms(latencies_ms, 0.50);
  state.counters["q_p99_ms"] = percentile_ms(latencies_ms, 0.99);
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_ServeMixed)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

/// BM_ServeMixed under backpressure: background compaction with the
/// merge debt bounded, so the writer stalls (and settles inline when the
/// chain cannot catch up) whenever it runs ahead of the pool.
/// Args = {shard count, max_pending_merges budget}.
void BM_ServeDegraded(benchmark::State& state) {
  const auto g = bench::rmat_graph(kScale, kEdgeFactor, 42);
  const auto batches = split_batches(g.edges(), kBatches);
  const algebra::PlusTimes<double> p;
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto kMaxPendingMerges = static_cast<std::size_t>(state.range(1));
  util::ThreadPool pool(4);
  std::vector<double> latencies_ms;
  std::uint64_t backpressure_events = 0;
  for (auto _ : state) {
    stream::ShardedBuilder<algebra::PlusTimes<double>> b(
        g.num_vertices(), shards, p, stream::Weighting::kUnweighted,
        sparse::SpGemmAlgo::kAuto, &pool, stream::Compaction::kBackground,
        kMaxPendingMerges);
    std::atomic<bool> done{false};
    std::vector<std::vector<double>> per_reader(kQueryThreads);
    std::vector<std::thread> readers;
    readers.reserve(kQueryThreads);
    for (std::size_t t = 0; t < kQueryThreads; ++t) {
      readers.emplace_back([&, t] {
        std::uint64_t src = 0x9e3779b9u + t;
        do {
          const auto t0 = std::chrono::steady_clock::now();
          const auto snap = b.snapshot();
          const auto levels = graph::bfs_levels(
              snap, static_cast<index_t>(
                        src % static_cast<std::uint64_t>(g.num_vertices())));
          benchmark::DoNotOptimize(levels.size());
          const auto t1 = std::chrono::steady_clock::now();
          per_reader[t].push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
          src = src * 6364136223846793005ULL + 1442695040888963407ULL;
        } while (!done.load());
      });
    }
    for (const auto& batch : batches) b.ingest(batch);
    b.drain();
    done.store(true);
    for (auto& r : readers) r.join();
    for (auto& v : per_reader) {
      latencies_ms.insert(latencies_ms.end(), v.begin(), v.end());
    }
    backpressure_events = b.stats().backpressure_events;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.edges().size()));
  state.counters["queries"] = static_cast<double>(latencies_ms.size());
  state.counters["q_p50_ms"] = percentile_ms(latencies_ms, 0.50);
  state.counters["q_p99_ms"] = percentile_ms(latencies_ms, 0.99);
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["max_pending_merges"] =
      static_cast<double>(kMaxPendingMerges);
  state.counters["backpressure_events"] =
      static_cast<double>(backpressure_events);
}
BENCHMARK(BM_ServeDegraded)
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({1, 0})
    ->Args({4, 0})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return i2a::bench::run_benchmarks_json(argc, argv, "BENCH_serve.json");
}
