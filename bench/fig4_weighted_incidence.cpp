/// \file fig4_weighted_incidence.cpp
/// \brief Regenerate Figure 4: E1 re-weighted so Genre|Pop entries carry 2
///        and Genre|Rock entries carry 3 (E2 unchanged), verified
///        entry-by-entry.

#include <iostream>

#include "fig_common.hpp"
#include "core/printing.hpp"
#include "d4m/goldens.hpp"
#include "d4m/music_dataset.hpp"

int main() {
  using namespace i2a;
  const auto e1w = d4m::music_e1_weighted();
  const auto e2 = d4m::music_e2();

  std::cout << "Figure 4 — E1 with Pop→2, Rock→3:\n\n"
            << core::figure_string(e1w) << '\n';
  std::cout << "Figure 4 — E2 (unchanged):\n\n"
            << core::figure_string(e2) << '\n';

  bool ok = bench::verify_triples("Figure 4 E1", e1w.triples(),
                                  d4m::golden::fig4_e1_triples());
  ok &= bench::verify_triples("Figure 4 E2", e2.triples(),
                              d4m::golden::fig2_e2_triples());
  return ok ? 0 : 1;
}
