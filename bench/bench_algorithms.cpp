/// \file bench_algorithms.cpp
/// \brief PERF5: downstream algorithm suite on constructed adjacency
///        arrays — the consumers that justify building A in the first
///        place — plus the masked-SpGEMM ablation.
///
/// Includes the masked vs unmasked triangle ablation (the masked kernel
/// avoids materializing A·A), semiring closures (APSP / reachability), and
/// BFS/PageRank end-to-end on R-MAT inputs.

#include <benchmark/benchmark.h>

#include "algebra/pairs.hpp"
#include "bench_common.hpp"
#include "graph/algorithms/apsp.hpp"
#include "graph/algorithms/bfs.hpp"
#include "graph/algorithms/pagerank.hpp"
#include "graph/algorithms/sssp.hpp"
#include "graph/algorithms/triangles.hpp"
#include "graph/incidence.hpp"

namespace {

using namespace i2a;

sparse::Csr<double> symmetric_rmat_adjacency(int scale, index_t ef) {
  const auto base = bench::rmat_graph(scale, ef, 7);
  graph::Graph sym(base.num_vertices());
  for (const auto& e : base.edges()) {
    if (e.src == e.dst) continue;
    sym.add_edge(e.src, e.dst);
    sym.add_edge(e.dst, e.src);
  }
  return graph::build_adjacency(sym, algebra::MaxTimes<double>{});
}

void BM_Triangles_Unmasked(benchmark::State& state) {
  const auto a = symmetric_rmat_adjacency(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::count_triangles(a));
  }
  state.counters["nnz"] = static_cast<double>(a.nnz());
}
BENCHMARK(BM_Triangles_Unmasked)->DenseRange(8, 12, 2);

void BM_Triangles_Masked(benchmark::State& state) {
  const auto a = symmetric_rmat_adjacency(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::count_triangles_masked(a));
  }
  state.counters["nnz"] = static_cast<double>(a.nnz());
}
BENCHMARK(BM_Triangles_Masked)->DenseRange(8, 12, 2);

void BM_Apsp_MinPlusClosure(benchmark::State& state) {
  const index_t n = state.range(0);
  graph::Graph g = graph::gen::erdos_renyi(n, 4.0 / static_cast<double>(n), 3);
  graph::gen::randomize_weights(g, 0.5, 4.0, 11);
  const algebra::MinPlus<double> p;
  const auto a =
      graph::adjacency_array(p, graph::weighted_incidence_arrays(g, p));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::apsp(a));
  }
}
BENCHMARK(BM_Apsp_MinPlusClosure)->Arg(64)->Arg(128)->Arg(256);

void BM_TransitiveClosure_OrAnd(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto g = graph::gen::erdos_renyi(n, 2.0 / static_cast<double>(n), 5);
  const auto a = graph::build_adjacency(g, algebra::PlusTimes<double>{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::transitive_closure(a, 0.0));
  }
}
BENCHMARK(BM_TransitiveClosure_OrAnd)->Arg(64)->Arg(128)->Arg(256);

void BM_Bfs(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 16, 7);
  const auto a = graph::build_adjacency(g, algebra::PlusTimes<double>{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::bfs_levels(a, 0, 0.0));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Bfs)->DenseRange(10, 16, 2);

void BM_PageRank(benchmark::State& state) {
  const auto g = bench::rmat_graph(static_cast<int>(state.range(0)), 16, 7);
  const auto a = graph::build_adjacency(g, algebra::PlusTimes<double>{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::pagerank(a, 0.85, 1e-8, 50));
  }
}
BENCHMARK(BM_PageRank)->DenseRange(10, 14, 2);

void BM_Sssp_BellmanFord(benchmark::State& state) {
  const index_t n = state.range(0);
  graph::Graph g = graph::gen::erdos_renyi(n, 8.0 / static_cast<double>(n), 9);
  graph::gen::randomize_weights(g, 0.1, 2.0, 13);
  const algebra::MinPlus<double> p;
  const auto a =
      graph::adjacency_array(p, graph::weighted_incidence_arrays(g, p));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::sssp_bellman_ford(a, 0));
  }
}
BENCHMARK(BM_Sssp_BellmanFord)->RangeMultiplier(4)->Range(256, 4096);

}  // namespace

BENCHMARK_MAIN();
