/// \file fig1_incidence_array.cpp
/// \brief Regenerate Figure 1: the D4M sparse associative array E for the
///        Kitten music database — 22 tracks × 31 `field|value` columns.
///
/// Verification is structural (DESIGN.md §3.1): exact row/column key sets
/// and exact per-row nonzero counts; the figure's dot pattern for the
/// non-Genre/Writer columns is not fully recoverable from the paper text.

#include <iostream>

#include "core/printing.hpp"
#include "d4m/goldens.hpp"
#include "d4m/music_dataset.hpp"

int main() {
  using namespace i2a;
  const auto e = d4m::music_incidence_array();

  std::cout << "Figure 1 — E = explode(music table): " << e.nrows() << " x "
            << e.ncols() << ", " << e.nnz() << " nonzeros\n\n";
  std::cout << core::figure_string(e) << '\n';

  bool ok = true;
  if (e.row_keys() != d4m::golden::fig1_row_keys()) {
    std::cout << "[MISMATCH] row key set\n";
    ok = false;
  }
  if (e.col_keys() != d4m::golden::fig1_col_keys()) {
    std::cout << "[MISMATCH] column key set\n";
    ok = false;
  }
  const auto want_nnz = d4m::golden::fig1_row_nnz();
  for (index_t i = 0; i < e.nrows(); ++i) {
    if (e.data().row_nnz(i) != want_nnz[static_cast<std::size_t>(i)]) {
      std::cout << "[MISMATCH] row "
                << e.row_keys()[static_cast<std::size_t>(i)] << " has "
                << e.data().row_nnz(i) << " nonzeros, paper shows "
                << want_nnz[static_cast<std::size_t>(i)] << '\n';
      ok = false;
    }
  }
  if (ok) {
    std::cout << "[VERIFIED] Figure 1 structure (22 row keys, 31 column "
                 "keys, per-row nonzero counts) matches the paper\n";
  }
  return ok ? 0 : 1;
}
