/// \file fig3_semiring_products.cpp
/// \brief Regenerate Figure 3: the genre×writer adjacency arrays
///        E1ᵀ ⊕.⊗ E2 under the paper's seven operator pairs (all-ones
///        incidence values), verified entry-by-entry against the published
///        arrays.

#include <iostream>

#include "algebra/any_pair.hpp"
#include "fig_common.hpp"
#include "core/multiply.hpp"
#include "core/printing.hpp"
#include "d4m/goldens.hpp"
#include "d4m/music_dataset.hpp"

int main() {
  using namespace i2a;
  const auto e1 = d4m::music_e1();
  const auto e2 = d4m::music_e2();

  std::cout << "Figure 3 — E1' (+.x) E2 under seven operator pairs\n\n";
  bool ok = true;
  for (const auto& pair : algebra::paper_pairs()) {
    const auto a = core::multiply_at_b(pair, e1, e2);
    std::cout << "--- E1' " << pair.name() << " E2 ---\n"
              << core::figure_string(a) << '\n';
    ok &= bench::verify_triples(
        std::string("Figure 3 ") + std::string(pair.name()), a.triples(),
        d4m::golden::product_triples(d4m::golden::ProductFigure::kFig3,
                                     std::string(pair.name())));
  }
  return ok ? 0 : 1;
}
