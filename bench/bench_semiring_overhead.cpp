/// \file bench_semiring_overhead.cpp
/// \brief PERF4: what does algebra generality cost?
///
/// Three ablations on a fixed SpGEMM workload:
///   * operator pair sweep — the seven paper pairs as compile-time
///     functors (they should be within noise of each other);
///   * type erasure — AnyPairD's std::function indirection vs the
///     templated fast path (the price the runtime-swappable figure
///     binaries pay);
///   * value-type width — double vs uint8 Boolean patterns.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "algebra/any_pair.hpp"
#include "algebra/pairs.hpp"
#include "bench_common.hpp"
#include "sparse/spgemm.hpp"

namespace {

using namespace i2a;

constexpr index_t kN = 1024;
constexpr double kDensity = 0.01;

template <typename P>
void pair_bench(benchmark::State& state, const P& p) {
  const auto a = bench::random_matrix(kN, kN, kDensity, 1);
  const auto b = bench::random_matrix(kN, kN, kDensity, 2);
  for (auto _ : state) {
    auto c = sparse::spgemm(p, a, b);
    benchmark::DoNotOptimize(c);
  }
}

void BM_Pair_PlusTimes(benchmark::State& state) {
  pair_bench(state, algebra::PlusTimes<double>{});
}
void BM_Pair_MaxTimes(benchmark::State& state) {
  pair_bench(state, algebra::MaxTimes<double>{});
}
void BM_Pair_MinTimes(benchmark::State& state) {
  pair_bench(state, algebra::MinTimes<double>{});
}
void BM_Pair_MaxPlus(benchmark::State& state) {
  pair_bench(state, algebra::MaxPlus<double>{});
}
void BM_Pair_MinPlus(benchmark::State& state) {
  pair_bench(state, algebra::MinPlus<double>{});
}
void BM_Pair_MaxMin(benchmark::State& state) {
  pair_bench(state, algebra::MaxMin<double>{});
}
void BM_Pair_MinMax(benchmark::State& state) {
  pair_bench(state, algebra::MinMax<double>{});
}
BENCHMARK(BM_Pair_PlusTimes);
BENCHMARK(BM_Pair_MaxTimes);
BENCHMARK(BM_Pair_MinTimes);
BENCHMARK(BM_Pair_MaxPlus);
BENCHMARK(BM_Pair_MinPlus);
BENCHMARK(BM_Pair_MaxMin);
BENCHMARK(BM_Pair_MinMax);

// Type-erased vs templated +.x.
void BM_Erasure_Static(benchmark::State& state) {
  pair_bench(state, algebra::PlusTimes<double>{});
}
void BM_Erasure_AnyPairD(benchmark::State& state) {
  pair_bench(state, algebra::AnyPairD::from(algebra::PlusTimes<double>{}));
}
BENCHMARK(BM_Erasure_Static);
BENCHMARK(BM_Erasure_AnyPairD);

// Boolean pattern multiply on uint8 values.
void BM_ValueWidth_BooleanU8(benchmark::State& state) {
  util::Xoshiro256 rng(3);
  sparse::Coo<std::uint8_t> ca(kN, kN), cb(kN, kN);
  for (index_t i = 0; i < kN; ++i) {
    for (index_t j = 0; j < kN; ++j) {
      if (rng.chance(kDensity)) ca.push(i, j, 1);
      if (rng.chance(kDensity)) cb.push(i, j, 1);
    }
  }
  const auto a = sparse::Csr<std::uint8_t>::from_coo(std::move(ca));
  const auto b = sparse::Csr<std::uint8_t>::from_coo(std::move(cb));
  const algebra::OrAndU8 p;
  for (auto _ : state) {
    auto c = sparse::spgemm(p, a, b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ValueWidth_BooleanU8);

}  // namespace

BENCHMARK_MAIN();
